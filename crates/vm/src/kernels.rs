//! Native bulk-kernel tier (`--opt=3` / `Backend::Native`).
//!
//! The bytecode interpreter at `--opt=2` already fuses and
//! type-specialises the NPB inner loops, but every iteration still
//! pays instruction dispatch and `Value` boxing per element. This
//! module closes the rest of the gap to hand-written Rust for the
//! hottest loop *shapes*: after every other pass has run, the
//! installer pattern-matches single-block loops in the final
//! instruction stream and replaces the loop-head instruction with
//! [`Insn::BulkLoop`], whose descriptor names a precompiled Rust loop
//! over the raw `f64`/`i64` element storage of the involved arrays
//! (borrowed via `ArrF::cells`/`ArrI::cells`, no copies). Because
//! only the per-chunk inner loops are replaced, the surrounding
//! work-sharing protocol (`omp.internal.ws_*`), schedules, reductions
//! and tracing all keep working unchanged.
//!
//! Correctness contract, mirroring runtime quickening:
//!
//! - A kernel only runs while its type/bounds prechecks hold. On
//!   *any* violation — wrong runtime types, index out of bounds,
//!   division by zero — it writes back the loop-carried registers it
//!   has updated (induction variable, accumulators) and deopts: the
//!   dispatch loop re-quickens the `BulkLoop` back to the original
//!   head instruction and resumes interpretation at the loop head, so
//!   the failing iteration replays in the interpreter and raises the
//!   exact same error text at the exact same point (or simply keeps
//!   running interpreted if the shape was merely untypical).
//! - On normal exit every register the loop body defines is written
//!   back with its final-iteration value, so code after the loop
//!   observes the same frame state as interpretation.
//! - Loads and stores happen in interpreter order within an
//!   iteration (re-loading after potentially aliasing stores), so
//!   kernels are exact even when two names refer to one array.
//!
//! Matchers run on the *final* stream (constant folding, fusion and
//! static specialization have already happened), which is what makes
//! the shapes short and stable enough to match insn-by-insn.

use crate::bytecode::{ArithOp, CmpOp, CompiledFn, Image, Insn, PreOpt, Reg};
use crate::optimize::verify_fn;
use crate::value::{ArrF, ArrI, Value};
use std::sync::Arc;

/// Descriptor for one installed kernel, stored in
/// [`CompiledFn::kernels`] and referenced by [`Insn::BulkLoop`].
#[derive(Debug, Clone, Copy)]
pub struct KernelDesc {
    /// The loop-head instruction the `BulkLoop` replaced; deopt
    /// target (the dispatch loop re-quickens to this and replays).
    pub orig: Insn,
    /// pc to resume at after a normal kernel exit.
    pub exit: u32,
    pub kind: KernelKind,
    /// Pragma `unit:line` label of the nearest enclosing worksharing
    /// loop (resolved at install from the preceding `ws_begin` call's
    /// string constant), or `""` when the unit was compiled unnamed.
    /// Rides into `BulkLoop` trace spans and `--remarks` output.
    pub label: &'static str,
}

/// The recognised loop shapes. Register fields are bound by the
/// matcher; `visit_regs` reports all of them for verification.
#[derive(Debug, Clone, Copy)]
pub enum KernelKind {
    /// CG sparse matvec over a whole worksharing chunk of rows:
    /// `do { s = 0.0; k = rowstr[j]; while (k < rowstr[j+1]) {
    /// s += a[k] * p[colidx[k]]; k += 1 } q[j] = s; j += 1 }
    /// while (j < ub)`. Subsumes [`KernelKind::MatvecGather`]: one
    /// dispatch amortises the slot locks and descriptor decode over
    /// the entire chunk.
    MatvecRows {
        rowcell: Reg,
        j: Reg,
        k: Reg,
        bound: Reg,
        acc: Reg,
        xcell: Reg,
        acell: Reg,
        icell: Reg,
        qcell: Reg,
        ub: Reg,
        /// const-pool index of the accumulator seed (Float).
        sk: u16,
    },
    /// CG sparse matvec inner loop:
    /// `while (k < rowstr[j+1]) { s += a[k] * p[colidx[k]]; k += 1 }`
    /// (`DerefIndexOff` / `CmpJumpFalse` / `FmaGather` / `IncJump`).
    MatvecGather {
        rowcell: Reg,
        j: Reg,
        k: Reg,
        bound: Reg,
        acc: Reg,
        xcell: Reg,
        acell: Reg,
        icell: Reg,
    },
    /// IS bucket-count loop:
    /// `do { b = keys[i] / sd; local[b] += c; i += 1 } while (i < ub)`.
    Histogram {
        keys: Reg,
        i: Reg,
        t: Reg,
        b: Reg,
        sd: Reg,
        local: Reg,
        ub: Reg,
        /// const-pool index of the increment (Int).
        k: u16,
    },
    /// Constant fill: `do { a[i] = k; i += 1 } while (i < lim)`.
    FillConst {
        arr: Reg,
        i: Reg,
        c: Reg,
        lim: Reg,
        k: u16,
    },
    /// Integer prefix sum:
    /// `do { acc += a[i]; a[i] = acc; i += 1 } while (i < lim)`.
    PrefixSum {
        arr: Reg,
        i: Reg,
        t: Reg,
        acc: Reg,
        lim: Reg,
    },
    /// IS rank-increment: `do { rk[b[q]] += c; q += 1 } while (q < lim)`
    /// with the cell-held `rk` dereferenced twice per iteration.
    RankInc {
        rkcell: Reg,
        bcell: Reg,
        q: Reg,
        ra: Reg,
        v: Reg,
        x: Reg,
        y: Reg,
        rb: Reg,
        v2: Reg,
        lim: Reg,
        k: u16,
    },
    /// IS permutation scatter:
    /// `do { t = keys[i]; d = t/sd; out[cur[d]] = t; cur[d] += c; i += 1 }
    ///  while (i < lim)`.
    Scatter {
        keys: Reg,
        i: Reg,
        t: Reg,
        t2: Reg,
        sd: Reg,
        bcell: Reg,
        b2: Reg,
        cur: Reg,
        c: Reg,
        lim: Reg,
        k: u16,
    },
}

impl KernelKind {
    /// The register the kernel advances every iteration. Written back
    /// on both success and bail, so the dispatcher can derive the
    /// native iteration count as the before/after delta without the
    /// individual kernels carrying counters.
    pub fn induction(&self) -> Reg {
        match *self {
            KernelKind::MatvecRows { j, .. } => j,
            KernelKind::MatvecGather { k, .. } => k,
            KernelKind::Histogram { i, .. } => i,
            KernelKind::FillConst { i, .. } => i,
            KernelKind::PrefixSum { i, .. } => i,
            KernelKind::RankInc { q, .. } => q,
            KernelKind::Scatter { i, .. } => i,
        }
    }

    /// Short stable name for disassembly (`bulkloop kernel0 (matvec)`).
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::MatvecRows { .. } => "matvec-rows",
            KernelKind::MatvecGather { .. } => "matvec-gather",
            KernelKind::Histogram { .. } => "histogram",
            KernelKind::FillConst { .. } => "fill-const",
            KernelKind::PrefixSum { .. } => "prefix-sum",
            KernelKind::RankInc { .. } => "rank-inc",
            KernelKind::Scatter { .. } => "scatter",
        }
    }
}

impl KernelDesc {
    /// Report every register the kernel touches (for `verify_fn`).
    pub fn visit_regs(&self, mut f: impl FnMut(Reg)) {
        match self.kind {
            KernelKind::MatvecRows {
                rowcell,
                j,
                k,
                bound,
                acc,
                xcell,
                acell,
                icell,
                qcell,
                ub,
                sk: _,
            } => {
                for r in [rowcell, j, k, bound, acc, xcell, acell, icell, qcell, ub] {
                    f(r);
                }
            }
            KernelKind::MatvecGather {
                rowcell,
                j,
                k,
                bound,
                acc,
                xcell,
                acell,
                icell,
            } => {
                for r in [rowcell, j, k, bound, acc, xcell, acell, icell] {
                    f(r);
                }
            }
            KernelKind::Histogram {
                keys,
                i,
                t,
                b,
                sd,
                local,
                ub,
                k: _,
            } => {
                for r in [keys, i, t, b, sd, local, ub] {
                    f(r);
                }
            }
            KernelKind::FillConst {
                arr,
                i,
                c,
                lim,
                k: _,
            } => {
                for r in [arr, i, c, lim] {
                    f(r);
                }
            }
            KernelKind::PrefixSum {
                arr,
                i,
                t,
                acc,
                lim,
            } => {
                for r in [arr, i, t, acc, lim] {
                    f(r);
                }
            }
            KernelKind::RankInc {
                rkcell,
                bcell,
                q,
                ra,
                v,
                x,
                y,
                rb,
                v2,
                lim,
                k: _,
            } => {
                for r in [rkcell, bcell, q, ra, v, x, y, rb, v2, lim] {
                    f(r);
                }
            }
            KernelKind::Scatter {
                keys,
                i,
                t,
                t2,
                sd,
                bcell,
                b2,
                cur,
                c,
                lim,
                k: _,
            } => {
                for r in [keys, i, t, t2, sd, bcell, b2, cur, c, lim] {
                    f(r);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Installation (pattern matching on the final instruction stream)
// ---------------------------------------------------------------------------

/// Install bulk kernels in every function (`--opt=3` only; runs after
/// optimization and static specialization).
pub fn install_image(image: &mut Image) {
    let nfuncs = image.funcs.len();
    for f in &mut image.funcs {
        install_fn(f, nfuncs);
    }
}

fn install_fn(f: &mut CompiledFn, nfuncs: usize) {
    let orig = if f.pre_opt.is_none() {
        Some(f.code.clone())
    } else {
        None
    };
    let mut installed = false;
    for pc in 0..f.code.len() {
        if f.kernels.len() >= u16::MAX as usize {
            break;
        }
        let Some((kind, exit)) = match_at(f, pc) else {
            continue;
        };
        let kidx = f.kernels.len() as u16;
        f.kernels.push(KernelDesc {
            orig: f.code[pc],
            exit,
            kind,
            label: loop_label(f, pc),
        });
        f.code[pc] = Insn::BulkLoop { kidx };
        installed = true;
    }
    if installed {
        if let Some(code) = orig {
            f.pre_opt = Some(PreOpt {
                code,
                nconsts: f.consts.len(),
            });
        }
        if let Err(e) = verify_fn(f, nfuncs) {
            panic!("kernel installation produced invalid bytecode: {e}");
        }
    }
}

/// Resolve the pragma label of the worksharing loop enclosing the
/// kernel at `pc`: the nearest preceding `omp.internal.ws_begin` call
/// whose first argument is a string constant (the preprocessor only
/// emits that argument for named units). `""` when absent.
pub(crate) fn loop_label(f: &CompiledFn, pc: usize) -> &'static str {
    for i in (0..pc).rev() {
        let Insn::OmpCall { sym, base, .. } = f.code[i] else {
            continue;
        };
        let path = &f.omp_syms[sym as usize];
        if path.last().map(String::as_str) != Some("ws_begin") {
            continue;
        }
        // The label argument is materialised by a `const` into the
        // call's first argument register somewhere before the call.
        for j in (0..i).rev() {
            let Insn::Const { dst, k } = f.code[j] else {
                continue;
            };
            if dst != base {
                continue;
            }
            if let Some(Value::Str(s)) = f.consts.get(k as usize) {
                return zomp::trace::intern(s);
            }
            break;
        }
        break;
    }
    ""
}

fn all_distinct(rs: &[Reg]) -> bool {
    for (i, a) in rs.iter().enumerate() {
        if rs[i + 1..].contains(a) {
            return false;
        }
    }
    true
}

/// The loop must only write `writes`; every other bound register has
/// to stay loop-invariant for the cached-operand kernel to be exact.
fn disciplined(writes: &[Reg], invariant: &[Reg]) -> bool {
    all_distinct(writes) && invariant.iter().all(|r| !writes.contains(r))
}

fn const_int(f: &CompiledFn, k: u16) -> Option<i64> {
    match f.consts.get(k as usize)? {
        Value::Int(v) => Some(*v),
        _ => None,
    }
}

fn match_at(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    match_matvec_rows(f, pc)
        .or_else(|| match_matvec(f, pc))
        .or_else(|| match_histogram(f, pc))
        .or_else(|| match_fill(f, pc))
        .or_else(|| match_prefix(f, pc))
        .or_else(|| match_rank_inc(f, pc))
        .or_else(|| match_scatter(f, pc))
}

fn match_matvec_rows(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let (acc, sk) = match *code.get(pc)? {
        Insn::Const { dst, k } => {
            // The seed must be a Float constant (the `s = 0.0` reset).
            match f.consts.get(k as usize)? {
                Value::Float(_) => (dst, k),
                _ => return None,
            }
        }
        _ => return None,
    };
    let (k, rowcell, j) = match *code.get(pc + 1)? {
        Insn::DerefIndex { dst, cell, idx } => (dst, cell, idx),
        _ => return None,
    };
    let bound = match *code.get(pc + 2)? {
        Insn::DerefIndexOff {
            dst,
            cell,
            idx,
            off: 1,
        } if cell == rowcell && idx == j => dst,
        _ => return None,
    };
    match *code.get(pc + 3)? {
        Insn::CmpJumpFalse {
            op: CmpOp::Lt,
            a,
            b,
            to,
        } if a == k && b == bound && to as usize == pc + 6 => {}
        _ => return None,
    }
    let (xcell, acell, icell) = match *code.get(pc + 4)? {
        Insn::FmaGather {
            dst,
            xcell,
            acell,
            icell,
            idx,
        } if dst == acc && idx == k => (xcell, acell, icell),
        _ => return None,
    };
    match *code.get(pc + 5)? {
        Insn::IncJump { var, step: 1, to } if var == k && to as usize == pc + 2 => {}
        _ => return None,
    }
    let qcell = match *code.get(pc + 6)? {
        Insn::DerefIndexSet { cell, idx, src } if idx == j && src == acc => cell,
        _ => return None,
    };
    let (ub, exit) = match *code.get(pc + 7)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == j && to as usize == pc => (limit, pc as u32 + 8),
        _ => return None,
    };
    if !disciplined(
        &[acc, k, bound, j],
        &[rowcell, xcell, acell, icell, qcell, ub],
    ) {
        return None;
    }
    Some((
        KernelKind::MatvecRows {
            rowcell,
            j,
            k,
            bound,
            acc,
            xcell,
            acell,
            icell,
            qcell,
            ub,
            sk,
        },
        exit,
    ))
}

fn match_matvec(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let (bound, rowcell, j) = match *code.get(pc)? {
        Insn::DerefIndexOff {
            dst,
            cell,
            idx,
            off: 1,
        } => (dst, cell, idx),
        _ => return None,
    };
    let (k, exit) = match *code.get(pc + 1)? {
        Insn::CmpJumpFalse {
            op: CmpOp::Lt,
            a,
            b,
            to,
        } if b == bound => (a, to),
        _ => return None,
    };
    let (acc, xcell, acell, icell) = match *code.get(pc + 2)? {
        Insn::FmaGather {
            dst,
            xcell,
            acell,
            icell,
            idx,
        } if idx == k => (dst, xcell, acell, icell),
        _ => return None,
    };
    match *code.get(pc + 3)? {
        Insn::IncJump { var, step: 1, to } if var == k && to as usize == pc => {}
        _ => return None,
    }
    if !disciplined(&[bound, k, acc], &[j, rowcell, xcell, acell, icell]) {
        return None;
    }
    Some((
        KernelKind::MatvecGather {
            rowcell,
            j,
            k,
            bound,
            acc,
            xcell,
            acell,
            icell,
        },
        exit,
    ))
}

fn match_histogram(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let (t, keys, i) = match *code.get(pc)? {
        Insn::DerefIndex { dst, cell, idx } => (dst, cell, idx),
        _ => return None,
    };
    let (b, sd) = match *code.get(pc + 1)? {
        Insn::Arith {
            op: ArithOp::Div,
            dst,
            a,
            b,
        } if a == t => (dst, b),
        _ => return None,
    };
    let (local, kidx) = match *code.get(pc + 2)? {
        Insn::IncElemK {
            op: ArithOp::Add,
            arr,
            idx,
            k,
        } if idx == b => {
            const_int(f, k)?;
            (arr, k)
        }
        _ => return None,
    };
    let (ub, exit) = match *code.get(pc + 3)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == i && to as usize == pc => (limit, pc as u32 + 4),
        _ => return None,
    };
    if !disciplined(&[t, b, i], &[keys, sd, local, ub]) {
        return None;
    }
    Some((
        KernelKind::Histogram {
            keys,
            i,
            t,
            b,
            sd,
            local,
            ub,
            k: kidx,
        },
        exit,
    ))
}

fn match_fill(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let (c, k) = match *code.get(pc)? {
        Insn::Const { dst, k } => (dst, k),
        _ => return None,
    };
    let (arr, i) = match *code.get(pc + 1)? {
        Insn::DerefIndexSet { cell, idx, src } if src == c => (cell, idx),
        _ => return None,
    };
    let (lim, exit) = match *code.get(pc + 2)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == i && to as usize == pc => (limit, pc as u32 + 3),
        _ => return None,
    };
    if !disciplined(&[c, i], &[arr, lim]) {
        return None;
    }
    Some((KernelKind::FillConst { arr, i, c, lim, k }, exit))
}

fn match_prefix(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let (t, arr, i) = match *code.get(pc)? {
        Insn::DerefIndex { dst, cell, idx } => (dst, cell, idx),
        _ => return None,
    };
    let acc = match *code.get(pc + 1)? {
        Insn::Arith {
            op: ArithOp::Add,
            dst,
            a,
            b,
        } if a == dst && b == t => dst,
        _ => return None,
    };
    match *code.get(pc + 2)? {
        Insn::DerefIndexSet { cell, idx, src } if cell == arr && idx == i && src == acc => {}
        _ => return None,
    }
    let (lim, exit) = match *code.get(pc + 3)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == i && to as usize == pc => (limit, pc as u32 + 4),
        _ => return None,
    };
    if !disciplined(&[t, acc, i], &[arr, lim]) {
        return None;
    }
    Some((
        KernelKind::PrefixSum {
            arr,
            i,
            t,
            acc,
            lim,
        },
        exit,
    ))
}

fn match_rank_inc(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let (ra, rkcell) = match *code.get(pc)? {
        Insn::Deref { dst, ptr } => (dst, ptr),
        _ => return None,
    };
    let (v, bcell, q) = match *code.get(pc + 1)? {
        Insn::DerefIndex { dst, cell, idx } => (dst, cell, idx),
        _ => return None,
    };
    let x = match *code.get(pc + 2)? {
        Insn::Index { dst, arr, idx } if arr == ra && idx == v => dst,
        _ => return None,
    };
    let (y, k) = match *code.get(pc + 3)? {
        Insn::ArithK {
            op: ArithOp::Add,
            dst,
            a,
            k,
        } if a == x => {
            const_int(f, k)?;
            (dst, k)
        }
        _ => return None,
    };
    let rb = match *code.get(pc + 4)? {
        Insn::Deref { dst, ptr } if ptr == rkcell => dst,
        _ => return None,
    };
    let v2 = match *code.get(pc + 5)? {
        Insn::DerefIndex { dst, cell, idx } if cell == bcell && idx == q => dst,
        _ => return None,
    };
    match *code.get(pc + 6)? {
        Insn::IndexSet { arr, idx, src } if arr == rb && idx == v2 && src == y => {}
        _ => return None,
    }
    let (lim, exit) = match *code.get(pc + 7)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == q && to as usize == pc => (limit, pc as u32 + 8),
        _ => return None,
    };
    if !disciplined(&[ra, v, x, y, rb, v2, q], &[rkcell, bcell, lim]) {
        return None;
    }
    Some((
        KernelKind::RankInc {
            rkcell,
            bcell,
            q,
            ra,
            v,
            x,
            y,
            rb,
            v2,
            lim,
            k,
        },
        exit,
    ))
}

fn match_scatter(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let (t, keys, i) = match *code.get(pc)? {
        Insn::DerefIndex { dst, cell, idx } => (dst, cell, idx),
        _ => return None,
    };
    let t2 = match *code.get(pc + 1)? {
        Insn::Move { dst, src } if src == t => dst,
        _ => return None,
    };
    let sd = match *code.get(pc + 2)? {
        Insn::Arith {
            op: ArithOp::Div,
            dst,
            a,
            b,
        } if dst == t && a == t => b,
        _ => return None,
    };
    let (b2, bcell) = match *code.get(pc + 3)? {
        Insn::Deref { dst, ptr } => (dst, ptr),
        _ => return None,
    };
    let (c, cur) = match *code.get(pc + 4)? {
        Insn::Index { dst, arr, idx } if idx == t => (dst, arr),
        _ => return None,
    };
    match *code.get(pc + 5)? {
        Insn::IndexSet { arr, idx, src } if arr == b2 && idx == c && src == t2 => {}
        _ => return None,
    }
    let k = match *code.get(pc + 6)? {
        Insn::IncElemK {
            op: ArithOp::Add,
            arr,
            idx,
            k,
        } if arr == cur && idx == t => {
            const_int(f, k)?;
            k
        }
        _ => return None,
    };
    let (lim, exit) = match *code.get(pc + 7)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == i && to as usize == pc => (limit, pc as u32 + 8),
        _ => return None,
    };
    if !disciplined(&[t, t2, b2, c, i], &[keys, sd, bcell, cur, lim]) {
        return None;
    }
    Some((
        KernelKind::Scatter {
            keys,
            i,
            t,
            t2,
            sd,
            bcell,
            b2,
            cur,
            c,
            lim,
            k,
        },
        exit,
    ))
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// Run one kernel against the current frame. `true` = the loop
/// completed and all defined registers were written back (jump to
/// `desc.exit`); `false` = deopt (replay `desc.orig` interpreted).
///
/// `pc` is the `BulkLoop` instruction's own address, for telemetry.
/// When tracing is active the dispatcher records a `BulkLoop` span
/// (native iterations derived from the induction register's
/// before/after delta) and, on a bail, a `KernelBail` event carrying
/// the machine-readable reason; the disabled-tracing cost is one
/// relaxed atomic load.
pub(crate) fn run(desc: &KernelDesc, pc: u32, regs: &mut [Value], consts: &[Value]) -> bool {
    if !zomp::trace::active() {
        return run_inner(desc, regs, consts).is_ok();
    }
    let t0 = zomp::trace::kernel_begin_ts();
    let ind = desc.kind.induction() as usize;
    let before = match regs[ind] {
        Value::Int(v) => v,
        _ => 0,
    };
    let r = run_inner(desc, regs, consts);
    let after = match regs[ind] {
        Value::Int(v) => v,
        _ => before,
    };
    let iters = after.wrapping_sub(before).max(0) as u64;
    zomp::trace::kernel_end(kernel_span_label(desc), pc, iters, r.err(), t0);
    r.is_ok()
}

/// Span label: the pragma `unit:line` label when known, else the
/// kernel shape name so unlabelled spans still identify the loop.
fn kernel_span_label(desc: &KernelDesc) -> &'static str {
    if desc.label.is_empty() {
        desc.kind.name()
    } else {
        desc.label
    }
}

/// Machine-readable bail reasons (also the `KernelBail` event labels).
/// `type`: a bound register or constant did not hold the matched
/// Int/Float/array shape. `bounds`: an index left its array. `div`:
/// division by zero or `i64::MIN / -1`. `overflow`: induction
/// arithmetic overflowed.
type Bail = &'static str;
const BAIL_TYPE: Bail = "type";
const BAIL_BOUNDS: Bail = "bounds";
const BAIL_DIV: Bail = "div";
const BAIL_OVERFLOW: Bail = "overflow";

fn run_inner(desc: &KernelDesc, regs: &mut [Value], consts: &[Value]) -> Result<(), Bail> {
    match desc.kind {
        KernelKind::MatvecRows { .. } => run_matvec_rows(&desc.kind, regs, consts),
        KernelKind::MatvecGather { .. } => run_matvec(&desc.kind, regs),
        KernelKind::Histogram { .. } => run_histogram(&desc.kind, regs, consts),
        KernelKind::FillConst { .. } => run_fill(&desc.kind, regs, consts),
        KernelKind::PrefixSum { .. } => run_prefix(&desc.kind, regs),
        KernelKind::RankInc { .. } => run_rank_inc(&desc.kind, regs, consts),
        KernelKind::Scatter { .. } => run_scatter(&desc.kind, regs, consts),
    }
}

fn cell_arrf(regs: &[Value], r: Reg) -> Option<Arc<ArrF>> {
    match &regs[r as usize] {
        Value::Ptr(slot) => match &*slot.lock() {
            Value::ArrF(a) => Some(a.clone()),
            _ => None,
        },
        _ => None,
    }
}

fn cell_arri(regs: &[Value], r: Reg) -> Option<Arc<ArrI>> {
    match &regs[r as usize] {
        Value::Ptr(slot) => match &*slot.lock() {
            Value::ArrI(a) => Some(a.clone()),
            _ => None,
        },
        _ => None,
    }
}

fn reg_arri(regs: &[Value], r: Reg) -> Option<Arc<ArrI>> {
    match &regs[r as usize] {
        Value::ArrI(a) => Some(a.clone()),
        _ => None,
    }
}

fn reg_int(regs: &[Value], r: Reg) -> Option<i64> {
    match regs[r as usize] {
        Value::Int(v) => Some(v),
        _ => None,
    }
}

fn reg_float(regs: &[Value], r: Reg) -> Option<f64> {
    match regs[r as usize] {
        Value::Float(v) => Some(v),
        _ => None,
    }
}

/// `i64::MIN / -1` overflows (a panic in the interpreter's checked
/// division as well); treat it as a deopt so the interpreter owns it.
fn div_ok(x: i64, y: i64) -> bool {
    y != 0 && !(y == -1 && x == i64::MIN)
}

fn run_matvec_rows(kind: &KernelKind, regs: &mut [Value], consts: &[Value]) -> Result<(), Bail> {
    let KernelKind::MatvecRows {
        rowcell,
        j,
        k,
        bound,
        acc,
        xcell,
        acell,
        icell,
        qcell,
        ub,
        sk,
    } = *kind
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(rows), Some(xv), Some(av), Some(ic), Some(qv)) = (
        cell_arri(regs, rowcell),
        cell_arrf(regs, xcell),
        cell_arrf(regs, acell),
        cell_arri(regs, icell),
        cell_arrf(regs, qcell),
    ) else {
        return Err(BAIL_TYPE);
    };
    let (Some(mut jv), Some(ubv)) = (reg_int(regs, j), reg_int(regs, ub)) else {
        return Err(BAIL_TYPE);
    };
    let Some(Value::Float(seed)) = consts.get(sk as usize) else {
        return Err(BAIL_TYPE);
    };
    let seed = *seed;
    let rc = rows.cells();
    let xc = xv.cells();
    let ac = av.cells();
    let icc = ic.cells();
    let qc = qv.cells();
    let xn = xc.len() as i64;
    let an = ac.len() as i64;
    let icn = icc.len() as i64;
    let qn = qc.len() as i64;
    // Final inner-loop state of the last *completed* row: on a mid-row
    // bail the interpreter replays the failing row from the head, so the
    // registers must look exactly as they did when that row started.
    let mut last: Option<(i64, i64, f64)> = None;
    let bail = |regs: &mut [Value], jv: i64, last: Option<(i64, i64, f64)>, why: Bail| {
        regs[j as usize] = Value::Int(jv);
        if let Some((kv, bv, s)) = last {
            regs[k as usize] = Value::Int(kv);
            regs[bound as usize] = Value::Int(bv);
            regs[acc as usize] = Value::Float(s);
        }
        Err(why)
    };
    // do-while: any jump to the head runs at least one row.
    loop {
        let Some(jo) = jv.checked_add(1) else {
            return bail(regs, jv, last, BAIL_OVERFLOW);
        };
        if jv < 0 || jo as usize >= rc.len() {
            return bail(regs, jv, last, BAIL_BOUNDS);
        }
        // SAFETY: jv and jo bounds-checked just above; OpenMP
        // no-data-race contract for the elements themselves.
        let mut kv = unsafe { *rc.get_unchecked(jv as usize).get() };
        let bv = unsafe { *rc.get_unchecked(jo as usize).get() };
        let mut s = seed;
        if kv >= 0 && bv <= xn && bv <= icn {
            // Hot path: the k-range is provably in bounds, only the
            // gathered index needs a per-element check.
            while kv < bv {
                // SAFETY: 0 <= kv < bv <= len for both arrays.
                let xe = unsafe { *xc.get_unchecked(kv as usize).get() };
                let ie = unsafe { *icc.get_unchecked(kv as usize).get() };
                if ie < 0 || ie >= an {
                    return bail(regs, jv, last, BAIL_BOUNDS);
                }
                // SAFETY: ie bounds-checked just above.
                let ae = unsafe { *ac.get_unchecked(ie as usize).get() };
                // Mul then add, matching the interpreter's FmaGather
                // exactly (no fused multiply-add: rounding must agree).
                s += xe * ae;
                kv = kv.wrapping_add(1);
            }
        } else {
            while kv < bv {
                if kv < 0 || kv >= xn || kv >= icn {
                    return bail(regs, jv, last, BAIL_BOUNDS);
                }
                // SAFETY: kv bounds-checked just above.
                let xe = unsafe { *xc.get_unchecked(kv as usize).get() };
                let ie = unsafe { *icc.get_unchecked(kv as usize).get() };
                if ie < 0 || ie >= an {
                    return bail(regs, jv, last, BAIL_BOUNDS);
                }
                // SAFETY: ie bounds-checked just above.
                let ae = unsafe { *ac.get_unchecked(ie as usize).get() };
                s += xe * ae;
                kv = kv.wrapping_add(1);
            }
        }
        if jv >= qn {
            // `q[j] = s` would be out of bounds (jv >= 0 held above).
            return bail(regs, jv, last, BAIL_BOUNDS);
        }
        // SAFETY: jv bounds-checked against qn just above.
        unsafe { *qc.get_unchecked(jv as usize).get() = s };
        last = Some((kv, bv, s));
        jv = jv.wrapping_add(1);
        if jv >= ubv {
            regs[j as usize] = Value::Int(jv);
            regs[k as usize] = Value::Int(kv);
            regs[bound as usize] = Value::Int(bv);
            regs[acc as usize] = Value::Float(s);
            return Ok(());
        }
    }
}

fn run_matvec(kind: &KernelKind, regs: &mut [Value]) -> Result<(), Bail> {
    let KernelKind::MatvecGather {
        rowcell,
        j,
        k,
        bound,
        acc,
        xcell,
        acell,
        icell,
    } = *kind
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(rows), Some(xv), Some(av), Some(ic)) = (
        cell_arri(regs, rowcell),
        cell_arrf(regs, xcell),
        cell_arrf(regs, acell),
        cell_arri(regs, icell),
    ) else {
        return Err(BAIL_TYPE);
    };
    let (Some(jv), Some(mut kv), Some(mut s)) =
        (reg_int(regs, j), reg_int(regs, k), reg_float(regs, acc))
    else {
        return Err(BAIL_TYPE);
    };
    let rc = rows.cells();
    let Some(jo) = jv.checked_add(1) else {
        return Err(BAIL_OVERFLOW);
    };
    if jv < 0 || jo as usize >= rc.len() {
        // The head load itself would be out of bounds (or the row
        // array is checked and rejects it) — replay with no effects.
        return Err(BAIL_BOUNDS);
    }
    // SAFETY: jo bounds-checked just above; OpenMP no-data-race
    // contract for the element itself.
    let lt = unsafe { *rc.get_unchecked(jo as usize).get() };
    let xc = xv.cells();
    let ac = av.cells();
    let icc = ic.cells();
    let xn = xc.len() as i64;
    let an = ac.len() as i64;
    let icn = icc.len() as i64;
    let writeback = |regs: &mut [Value], kv: i64, s: f64| {
        regs[k as usize] = Value::Int(kv);
        regs[acc as usize] = Value::Float(s);
        regs[bound as usize] = Value::Int(lt);
    };
    if kv >= 0 && lt <= xn && lt <= icn {
        // Hot path: the k-range is provably in bounds, only the
        // gathered index needs a per-element check.
        while kv < lt {
            // SAFETY: 0 <= kv < lt <= len for both arrays.
            let xe = unsafe { *xc.get_unchecked(kv as usize).get() };
            let ie = unsafe { *icc.get_unchecked(kv as usize).get() };
            if ie < 0 || ie >= an {
                writeback(regs, kv, s);
                return Err(BAIL_BOUNDS);
            }
            // SAFETY: ie bounds-checked just above.
            let ae = unsafe { *ac.get_unchecked(ie as usize).get() };
            // Mul then add, matching the interpreter's FmaGather
            // exactly (no fused multiply-add: rounding must agree).
            s += xe * ae;
            kv = kv.wrapping_add(1);
        }
    } else {
        while kv < lt {
            if kv < 0 || kv >= xn || kv >= icn {
                writeback(regs, kv, s);
                return Err(BAIL_BOUNDS);
            }
            // SAFETY: kv bounds-checked just above.
            let xe = unsafe { *xc.get_unchecked(kv as usize).get() };
            let ie = unsafe { *icc.get_unchecked(kv as usize).get() };
            if ie < 0 || ie >= an {
                writeback(regs, kv, s);
                return Err(BAIL_BOUNDS);
            }
            // SAFETY: ie bounds-checked just above.
            let ae = unsafe { *ac.get_unchecked(ie as usize).get() };
            // Mul then add, matching the interpreter's FmaGather
            // exactly (no fused multiply-add: rounding must agree).
            s += xe * ae;
            kv = kv.wrapping_add(1);
        }
    }
    writeback(regs, kv, s);
    Ok(())
}

fn run_histogram(kind: &KernelKind, regs: &mut [Value], consts: &[Value]) -> Result<(), Bail> {
    let KernelKind::Histogram {
        keys,
        i,
        t,
        b,
        sd,
        local,
        ub,
        k,
    } = *kind
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(ka), Some(la)) = (cell_arri(regs, keys), reg_arri(regs, local)) else {
        return Err(BAIL_TYPE);
    };
    let (Some(mut iv), Some(sdv), Some(ubv)) =
        (reg_int(regs, i), reg_int(regs, sd), reg_int(regs, ub))
    else {
        return Err(BAIL_TYPE);
    };
    let Some(Value::Int(c)) = consts.get(k as usize) else {
        return Err(BAIL_TYPE);
    };
    let c = *c;
    let kc = ka.cells();
    let lc = la.cells();
    let kn = kc.len() as i64;
    let ln = lc.len() as i64;
    // do-while: the body always runs at least once.
    loop {
        if iv < 0 || iv >= kn {
            regs[i as usize] = Value::Int(iv);
            return Err(BAIL_BOUNDS);
        }
        // SAFETY: iv bounds-checked just above.
        let tv = unsafe { *kc.get_unchecked(iv as usize).get() };
        if !div_ok(tv, sdv) {
            regs[i as usize] = Value::Int(iv);
            return Err(BAIL_DIV);
        }
        let bv = tv / sdv;
        if bv < 0 || bv >= ln {
            regs[i as usize] = Value::Int(iv);
            return Err(BAIL_BOUNDS);
        }
        // SAFETY: bv bounds-checked just above.
        unsafe {
            let p = lc.get_unchecked(bv as usize).get();
            *p = (*p).wrapping_add(c);
        }
        iv = iv.wrapping_add(1);
        if iv >= ubv {
            regs[i as usize] = Value::Int(iv);
            regs[t as usize] = Value::Int(tv);
            regs[b as usize] = Value::Int(bv);
            return Ok(());
        }
    }
}

/// Shared fill body: do-while stores of `v` at `i0..max(i0+1, lim)`.
/// `true` = completed with final induction value in `*iv_out`;
/// `false` = some store would be out of bounds (deopt; `*iv_out`
/// holds the failing index for write-back).
fn fill_elems<T: Copy>(
    cells: &[std::cell::UnsafeCell<T>],
    iv_out: &mut i64,
    lim: i64,
    v: T,
) -> bool {
    let n = cells.len() as i64;
    let i0 = *iv_out;
    // do-while: the final induction value is max(i0 + 1, lim).
    let end = if lim > i0 { lim } else { i0.wrapping_add(1) };
    if i0 >= 0 && i0 < end && end <= n {
        // SAFETY: the whole store range was bounds-checked above;
        // this is the tight loop LLVM turns into a memset/vector fill.
        for idx in i0..end {
            unsafe { *cells.get_unchecked(idx as usize).get() = v };
        }
        *iv_out = end;
        return true;
    }
    // Degenerate ranges (overflowing induction, oversized limit):
    // replicate the do-while store by store until the bounds break.
    let mut iv = i0;
    loop {
        if iv < 0 || iv >= n {
            *iv_out = iv;
            return false;
        }
        // SAFETY: iv bounds-checked just above.
        unsafe { *cells.get_unchecked(iv as usize).get() = v };
        iv = iv.wrapping_add(1);
        if iv >= lim {
            *iv_out = iv;
            return true;
        }
    }
}

fn run_fill(kind: &KernelKind, regs: &mut [Value], consts: &[Value]) -> Result<(), Bail> {
    let KernelKind::FillConst { arr, i, c, lim, k } = *kind else {
        return Err(BAIL_TYPE);
    };
    let (Some(mut iv), Some(limv)) = (reg_int(regs, i), reg_int(regs, lim)) else {
        return Err(BAIL_TYPE);
    };
    let done = match consts.get(k as usize) {
        Some(Value::Int(v)) => {
            let Some(a) = cell_arri(regs, arr) else {
                return Err(BAIL_TYPE);
            };
            let done = fill_elems(a.cells(), &mut iv, limv, *v);
            if done {
                regs[c as usize] = Value::Int(*v);
            }
            done
        }
        Some(Value::Float(v)) => {
            let Some(a) = cell_arrf(regs, arr) else {
                return Err(BAIL_TYPE);
            };
            let done = fill_elems(a.cells(), &mut iv, limv, *v);
            if done {
                regs[c as usize] = Value::Float(*v);
            }
            done
        }
        _ => return Err(BAIL_TYPE),
    };
    regs[i as usize] = Value::Int(iv);
    if done {
        Ok(())
    } else {
        Err(BAIL_BOUNDS)
    }
}

fn run_prefix(kind: &KernelKind, regs: &mut [Value]) -> Result<(), Bail> {
    let KernelKind::PrefixSum {
        arr,
        i,
        t,
        acc,
        lim,
    } = *kind
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(mut iv), Some(limv)) = (reg_int(regs, i), reg_int(regs, lim)) else {
        return Err(BAIL_TYPE);
    };
    if let Some(a) = cell_arri(regs, arr) {
        let Some(mut accv) = reg_int(regs, acc) else {
            return Err(BAIL_TYPE);
        };
        let cells = a.cells();
        let n = cells.len() as i64;
        let mut tv;
        loop {
            if iv < 0 || iv >= n {
                regs[i as usize] = Value::Int(iv);
                regs[acc as usize] = Value::Int(accv);
                return Err(BAIL_BOUNDS);
            }
            // SAFETY: iv bounds-checked just above.
            unsafe {
                let p = cells.get_unchecked(iv as usize).get();
                tv = *p;
                accv = accv.wrapping_add(tv);
                *p = accv;
            }
            iv = iv.wrapping_add(1);
            if iv >= limv {
                regs[i as usize] = Value::Int(iv);
                regs[acc as usize] = Value::Int(accv);
                regs[t as usize] = Value::Int(tv);
                return Ok(());
            }
        }
    }
    if let Some(a) = cell_arrf(regs, arr) {
        let Some(mut accv) = reg_float(regs, acc) else {
            return Err(BAIL_TYPE);
        };
        let cells = a.cells();
        let n = cells.len() as i64;
        let mut tv;
        loop {
            if iv < 0 || iv >= n {
                regs[i as usize] = Value::Int(iv);
                regs[acc as usize] = Value::Float(accv);
                return Err(BAIL_BOUNDS);
            }
            // SAFETY: iv bounds-checked just above.
            unsafe {
                let p = cells.get_unchecked(iv as usize).get();
                tv = *p;
                accv += tv;
                *p = accv;
            }
            iv = iv.wrapping_add(1);
            if iv >= limv {
                regs[i as usize] = Value::Int(iv);
                regs[acc as usize] = Value::Float(accv);
                regs[t as usize] = Value::Float(tv);
                return Ok(());
            }
        }
    }
    Err(BAIL_TYPE)
}

fn run_rank_inc(kind: &KernelKind, regs: &mut [Value], consts: &[Value]) -> Result<(), Bail> {
    let KernelKind::RankInc {
        rkcell,
        bcell,
        q,
        ra,
        v,
        x,
        y,
        rb,
        v2,
        lim,
        k,
    } = *kind
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(rk), Some(ba)) = (cell_arri(regs, rkcell), cell_arri(regs, bcell)) else {
        return Err(BAIL_TYPE);
    };
    let (Some(mut qv), Some(limv)) = (reg_int(regs, q), reg_int(regs, lim)) else {
        return Err(BAIL_TYPE);
    };
    let Some(Value::Int(c)) = consts.get(k as usize) else {
        return Err(BAIL_TYPE);
    };
    let c = *c;
    let bc = ba.cells();
    let rc = rk.cells();
    let bn = bc.len() as i64;
    let rn = rc.len() as i64;
    loop {
        if qv < 0 || qv >= bn {
            regs[q as usize] = Value::Int(qv);
            return Err(BAIL_BOUNDS);
        }
        // SAFETY: qv bounds-checked just above.
        let vv = unsafe { *bc.get_unchecked(qv as usize).get() };
        if vv < 0 || vv >= rn {
            regs[q as usize] = Value::Int(qv);
            return Err(BAIL_BOUNDS);
        }
        // SAFETY: vv bounds-checked just above. The second b[q] load
        // of the interpreted body reads the same element before any
        // store this iteration, so reusing `vv` is exact even if the
        // arrays alias.
        let (xv, yv) = unsafe {
            let p = rc.get_unchecked(vv as usize).get();
            let xv = *p;
            let yv = xv.wrapping_add(c);
            *p = yv;
            (xv, yv)
        };
        qv = qv.wrapping_add(1);
        if qv >= limv {
            regs[q as usize] = Value::Int(qv);
            regs[ra as usize] = Value::ArrI(rk.clone());
            regs[rb as usize] = Value::ArrI(rk.clone());
            regs[v as usize] = Value::Int(vv);
            regs[v2 as usize] = Value::Int(vv);
            regs[x as usize] = Value::Int(xv);
            regs[y as usize] = Value::Int(yv);
            return Ok(());
        }
    }
}

fn run_scatter(kind: &KernelKind, regs: &mut [Value], consts: &[Value]) -> Result<(), Bail> {
    let KernelKind::Scatter {
        keys,
        i,
        t,
        t2,
        sd,
        bcell,
        b2,
        cur,
        c,
        lim,
        k,
    } = *kind
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(ka), Some(ba), Some(ca)) = (
        cell_arri(regs, keys),
        cell_arri(regs, bcell),
        reg_arri(regs, cur),
    ) else {
        return Err(BAIL_TYPE);
    };
    let (Some(mut iv), Some(sdv), Some(limv)) =
        (reg_int(regs, i), reg_int(regs, sd), reg_int(regs, lim))
    else {
        return Err(BAIL_TYPE);
    };
    let Some(Value::Int(inc)) = consts.get(k as usize) else {
        return Err(BAIL_TYPE);
    };
    let inc = *inc;
    let kc = ka.cells();
    let bc = ba.cells();
    let cc = ca.cells();
    let kn = kc.len() as i64;
    let bn = bc.len() as i64;
    let cn = cc.len() as i64;
    loop {
        if iv < 0 || iv >= kn {
            regs[i as usize] = Value::Int(iv);
            return Err(BAIL_BOUNDS);
        }
        // SAFETY: iv bounds-checked just above.
        let tv = unsafe { *kc.get_unchecked(iv as usize).get() };
        if !div_ok(tv, sdv) {
            regs[i as usize] = Value::Int(iv);
            return Err(BAIL_DIV);
        }
        let dv = tv / sdv;
        if dv < 0 || dv >= cn {
            regs[i as usize] = Value::Int(iv);
            return Err(BAIL_BOUNDS);
        }
        // SAFETY: dv bounds-checked just above.
        let cv = unsafe { *cc.get_unchecked(dv as usize).get() };
        if cv < 0 || cv >= bn {
            regs[i as usize] = Value::Int(iv);
            return Err(BAIL_BOUNDS);
        }
        // SAFETY: cv bounds-checked just above.
        unsafe { *bc.get_unchecked(cv as usize).get() = tv };
        // Interpreter order: the cursor increment re-loads cur[dv]
        // after the store above (exact under aliasing).
        // SAFETY: dv bounds-checked above.
        unsafe {
            let p = cc.get_unchecked(dv as usize).get();
            *p = (*p).wrapping_add(inc);
        }
        iv = iv.wrapping_add(1);
        if iv >= limv {
            regs[i as usize] = Value::Int(iv);
            regs[t as usize] = Value::Int(dv);
            regs[t2 as usize] = Value::Int(tv);
            regs[b2 as usize] = Value::ArrI(ba.clone());
            regs[c as usize] = Value::Int(cv);
            return Ok(());
        }
    }
}
