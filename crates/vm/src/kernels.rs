//! Native bulk-kernel tier (`--opt=3` / `Backend::Native`).
//!
//! The bytecode interpreter at `--opt=2` already fuses and
//! type-specialises the NPB inner loops, but every iteration still
//! pays instruction dispatch and `Value` boxing per element. This
//! module closes the rest of the gap to hand-written Rust for the
//! hottest loop *shapes*: after every other pass has run, the
//! installer pattern-matches single-block loops in the final
//! instruction stream and replaces the loop-head instruction with
//! [`Insn::BulkLoop`], whose descriptor names a precompiled Rust loop
//! over the raw `f64`/`i64` element storage of the involved arrays
//! (borrowed via `ArrF::cells`/`ArrI::cells`, no copies). Because
//! only the per-chunk inner loops are replaced, the surrounding
//! work-sharing protocol (`omp.internal.ws_*`), schedules, reductions
//! and tracing all keep working unchanged.
//!
//! Correctness contract, mirroring runtime quickening:
//!
//! - A kernel only runs while its type/bounds prechecks hold. On
//!   *any* violation — wrong runtime types, index out of bounds,
//!   division by zero — it writes back the loop-carried registers it
//!   has updated (induction variable, accumulators) and deopts: the
//!   dispatch loop re-quickens the `BulkLoop` back to the original
//!   head instruction and resumes interpretation at the loop head, so
//!   the failing iteration replays in the interpreter and raises the
//!   exact same error text at the exact same point (or simply keeps
//!   running interpreted if the shape was merely untypical).
//! - On normal exit every register the loop body defines is written
//!   back with its final-iteration value, so code after the loop
//!   observes the same frame state as interpretation.
//! - Loads and stores happen in interpreter order within an
//!   iteration (re-loading after potentially aliasing stores), so
//!   kernels are exact even when two names refer to one array.
//!
//! Matchers run on the *final* stream (constant folding, fusion and
//! static specialization have already happened), which is what makes
//! the shapes short and stable enough to match insn-by-insn.

use crate::bytecode::{ArithOp, BuiltinOp, CmpOp, CompiledFn, Image, Insn, PreOpt, Reg};
use crate::optimize::verify_fn;
use crate::value::{ArrF, ArrI, Value};
use std::sync::Arc;

/// Descriptor for one installed kernel, stored in
/// [`CompiledFn::kernels`] and referenced by [`Insn::BulkLoop`].
#[derive(Debug, Clone, Copy)]
pub struct KernelDesc {
    /// The loop-head instruction the `BulkLoop` replaced; deopt
    /// target (the dispatch loop re-quickens to this and replays).
    pub orig: Insn,
    /// pc to resume at after a normal kernel exit.
    pub exit: u32,
    pub kind: KernelKind,
    /// Pragma `unit:line` label of the nearest enclosing worksharing
    /// loop (resolved at install from the preceding `ws_begin` call's
    /// string constant), or `""` when the unit was compiled unnamed.
    /// Rides into `BulkLoop` trace spans and `--remarks` output.
    pub label: &'static str,
}

/// The recognised loop shapes. Register fields are bound by the
/// matcher; `visit_regs` reports all of them for verification.
#[derive(Debug, Clone, Copy)]
pub enum KernelKind {
    /// CG sparse matvec over a whole worksharing chunk of rows:
    /// `do { s = 0.0; k = rowstr[j]; while (k < rowstr[j+1]) {
    /// s += a[k] * p[colidx[k]]; k += 1 } q[j] = s; j += 1 }
    /// while (j < ub)`. Subsumes [`KernelKind::MatvecGather`]: one
    /// dispatch amortises the slot locks and descriptor decode over
    /// the entire chunk.
    MatvecRows {
        rowcell: Reg,
        j: Reg,
        k: Reg,
        bound: Reg,
        acc: Reg,
        xcell: Reg,
        acell: Reg,
        icell: Reg,
        qcell: Reg,
        ub: Reg,
        /// const-pool index of the accumulator seed (Float).
        sk: u16,
    },
    /// CG sparse matvec inner loop:
    /// `while (k < rowstr[j+1]) { s += a[k] * p[colidx[k]]; k += 1 }`
    /// (`DerefIndexOff` / `CmpJumpFalse` / `FmaGather` / `IncJump`).
    MatvecGather {
        rowcell: Reg,
        j: Reg,
        k: Reg,
        bound: Reg,
        acc: Reg,
        xcell: Reg,
        acell: Reg,
        icell: Reg,
    },
    /// IS bucket-count loop:
    /// `do { b = keys[i] / sd; local[b] += c; i += 1 } while (i < ub)`.
    Histogram {
        keys: Reg,
        i: Reg,
        t: Reg,
        b: Reg,
        sd: Reg,
        local: Reg,
        ub: Reg,
        /// const-pool index of the increment (Int).
        k: u16,
    },
    /// Constant fill: `do { a[i] = k; i += 1 } while (i < lim)`.
    FillConst {
        arr: Reg,
        i: Reg,
        c: Reg,
        lim: Reg,
        k: u16,
    },
    /// Integer prefix sum:
    /// `do { acc += a[i]; a[i] = acc; i += 1 } while (i < lim)`.
    PrefixSum {
        arr: Reg,
        i: Reg,
        t: Reg,
        acc: Reg,
        lim: Reg,
    },
    /// IS rank-increment: `do { rk[b[q]] += c; q += 1 } while (q < lim)`
    /// with the cell-held `rk` dereferenced twice per iteration.
    RankInc {
        rkcell: Reg,
        bcell: Reg,
        q: Reg,
        ra: Reg,
        v: Reg,
        x: Reg,
        y: Reg,
        rb: Reg,
        v2: Reg,
        lim: Reg,
        k: u16,
    },
    /// IS permutation scatter:
    /// `do { t = keys[i]; d = t/sd; out[cur[d]] = t; cur[d] += c; i += 1 }
    ///  while (i < lim)`.
    Scatter {
        keys: Reg,
        i: Reg,
        t: Reg,
        t2: Reg,
        sd: Reg,
        bcell: Reg,
        b2: Reg,
        cur: Reg,
        c: Reg,
        lim: Reg,
        k: u16,
    },
    /// IS fused rank pipeline — one bucket-partitioned outer loop whose
    /// body chains the three rank phases over the bucket's key range:
    /// ```text
    /// do { keylo = b4*sd; keyhi = (b4+1)*sd;
    ///      st = starts[b4]; en = starts[b4+1];
    ///      while (k < keyhi)  ranks[k] = 0;          // fill
    ///      while (p < en)     ranks[buff2[p]] += 1;  // rank-inc
    ///      while (k2 < keyhi) { acc += ranks[k2]; ranks[k2] = acc }
    ///      b4 += 1 } while (b4 < ub)
    /// ```
    /// The private count range stays hot across all three phases and the
    /// per-bucket precheck (key range, scatter range, and the `buff2`
    /// range hint) hoists every per-element bounds check, so a bail can
    /// only happen *before* a bucket's first store — the interpreter
    /// replays the whole bucket with identical effects.
    RankPipeline {
        /// Cells: bucket boundaries, the ranks output, scattered keys.
        scell: Reg,
        rcell: Reg,
        bcell: Reg,
        b4: Reg,
        sd: Reg,
        ub: Reg,
        // Per-bucket scalars, in program order (several share physical
        // registers in the IS stream; the runner writes them back in
        // this order so aliases land exactly as the bytecode would).
        keylo: Reg,
        th: Reg,
        kh0: Reg,
        keyhi: Reg,
        st0: Reg,
        st: Reg,
        en0: Reg,
        en: Reg,
        /// Fill-loop induction and const registers.
        kf: Reg,
        fc: Reg,
        /// Rank-inc loop induction and temporaries.
        p: Reg,
        ra: Reg,
        v: Reg,
        x: Reg,
        y: Reg,
        rb: Reg,
        v2: Reg,
        /// Prefix loop accumulator, induction, and load temp.
        acc: Reg,
        k2: Reg,
        t3: Reg,
        /// Const-pool indices: the `b4 + 1` offset, the fill value, and
        /// the rank increment (all Int).
        kone: u16,
        kfill: u16,
        kinc: u16,
    },
    /// EP batched deviate fill — the first cross-call kernel:
    /// `while (j < c * nk) { x[j] = randlc(&t, a); j += 1 }` where the
    /// called function was verified *symbolically* (see [`lcg_callee`])
    /// to compute exactly the NPB 46-bit LCG step, so the kernel runs a
    /// `vranlc`-style batch against a local copy of the seed cell.
    /// `targ`/`aarg` are the call's argument window (left `Undefined`
    /// by the interpreter's arg-stealing calls, reproduced on exit).
    LcgFill {
        /// Cell register holding `Ptr` to the seed (`&t`).
        tcell: Reg,
        /// Call argument window: `targ` receives the cell, `aarg` the
        /// multiplier (`aarg == targ + 1`).
        targ: Reg,
        aarg: Reg,
        /// Loop-invariant multiplier register (`a`).
        areg: Reg,
        /// Call result register (last deviate after a full batch).
        res: Reg,
        /// Output array (`ArrF`, plain register).
        arr: Reg,
        j: Reg,
        /// Trip-limit register, recomputed `c * nk` at the loop head.
        lim: Reg,
        nk: Reg,
        /// Const-pool index of the Int factor `c`.
        k: u16,
    },
    /// EP acceptance tail over Gaussian pair candidates:
    /// `do { x1 = 2x[2i]-1; x2 = 2x[2i+1]-1; tt = x1²+x2²;
    /// if (tt <= 1) { t2 = sqrt(-2 ln tt / tt); q[max(|x1 t2|,|x2 t2|)] += 1;
    /// sx += x1 t2; sy += x2 t2 } i += 1 } while (i < nk)`.
    /// The eleven temporaries (`ra..rl`) are tracked so every register
    /// the body defines is written back with its exact final-iteration
    /// value (reject- and accept-path values differ; see the runner).
    EpPairs {
        i: Reg,
        nk: Reg,
        x: Reg,
        q: Reg,
        sx: Reg,
        sy: Reg,
        ra: Reg,
        rb: Reg,
        rc: Reg,
        rd: Reg,
        re: Reg,
        rf: Reg,
        rg: Reg,
        rh: Reg,
        ri: Reg,
        rj: Reg,
        rl: Reg,
    },
}

impl KernelKind {
    /// The register the kernel advances every iteration. Written back
    /// on both success and bail, so the dispatcher can derive the
    /// native iteration count as the before/after delta without the
    /// individual kernels carrying counters.
    pub fn induction(&self) -> Reg {
        match *self {
            KernelKind::MatvecRows { j, .. } => j,
            KernelKind::MatvecGather { k, .. } => k,
            KernelKind::Histogram { i, .. } => i,
            KernelKind::FillConst { i, .. } => i,
            KernelKind::PrefixSum { i, .. } => i,
            KernelKind::RankInc { q, .. } => q,
            KernelKind::RankPipeline { b4, .. } => b4,
            KernelKind::Scatter { i, .. } => i,
            KernelKind::LcgFill { j, .. } => j,
            KernelKind::EpPairs { i, .. } => i,
        }
    }

    /// Short stable name for disassembly (`bulkloop kernel0 (matvec)`).
    pub fn name(&self) -> &'static str {
        match self {
            KernelKind::MatvecRows { .. } => "matvec-rows",
            KernelKind::MatvecGather { .. } => "matvec-gather",
            KernelKind::Histogram { .. } => "histogram",
            KernelKind::FillConst { .. } => "fill-const",
            KernelKind::PrefixSum { .. } => "prefix-sum",
            KernelKind::RankInc { .. } => "rank-inc",
            KernelKind::RankPipeline { .. } => "rank-pipeline",
            KernelKind::Scatter { .. } => "scatter",
            KernelKind::LcgFill { .. } => "lcg-fill",
            KernelKind::EpPairs { .. } => "ep-pairs",
        }
    }
}

impl KernelDesc {
    /// Report every register the kernel touches (for `verify_fn`).
    pub fn visit_regs(&self, mut f: impl FnMut(Reg)) {
        match self.kind {
            KernelKind::MatvecRows {
                rowcell,
                j,
                k,
                bound,
                acc,
                xcell,
                acell,
                icell,
                qcell,
                ub,
                sk: _,
            } => {
                for r in [rowcell, j, k, bound, acc, xcell, acell, icell, qcell, ub] {
                    f(r);
                }
            }
            KernelKind::MatvecGather {
                rowcell,
                j,
                k,
                bound,
                acc,
                xcell,
                acell,
                icell,
            } => {
                for r in [rowcell, j, k, bound, acc, xcell, acell, icell] {
                    f(r);
                }
            }
            KernelKind::Histogram {
                keys,
                i,
                t,
                b,
                sd,
                local,
                ub,
                k: _,
            } => {
                for r in [keys, i, t, b, sd, local, ub] {
                    f(r);
                }
            }
            KernelKind::FillConst {
                arr,
                i,
                c,
                lim,
                k: _,
            } => {
                for r in [arr, i, c, lim] {
                    f(r);
                }
            }
            KernelKind::PrefixSum {
                arr,
                i,
                t,
                acc,
                lim,
            } => {
                for r in [arr, i, t, acc, lim] {
                    f(r);
                }
            }
            KernelKind::RankInc {
                rkcell,
                bcell,
                q,
                ra,
                v,
                x,
                y,
                rb,
                v2,
                lim,
                k: _,
            } => {
                for r in [rkcell, bcell, q, ra, v, x, y, rb, v2, lim] {
                    f(r);
                }
            }
            KernelKind::RankPipeline {
                scell,
                rcell,
                bcell,
                b4,
                sd,
                ub,
                keylo,
                th,
                kh0,
                keyhi,
                st0,
                st,
                en0,
                en,
                kf,
                fc,
                p,
                ra,
                v,
                x,
                y,
                rb,
                v2,
                acc,
                k2,
                t3,
                ..
            } => {
                for r in [
                    scell, rcell, bcell, b4, sd, ub, keylo, th, kh0, keyhi, st0, st, en0, en, kf,
                    fc, p, ra, v, x, y, rb, v2, acc, k2, t3,
                ] {
                    f(r);
                }
            }
            KernelKind::Scatter {
                keys,
                i,
                t,
                t2,
                sd,
                bcell,
                b2,
                cur,
                c,
                lim,
                k: _,
            } => {
                for r in [keys, i, t, t2, sd, bcell, b2, cur, c, lim] {
                    f(r);
                }
            }
            KernelKind::LcgFill {
                tcell,
                targ,
                aarg,
                areg,
                res,
                arr,
                j,
                lim,
                nk,
                k: _,
            } => {
                for r in [tcell, targ, aarg, areg, res, arr, j, lim, nk] {
                    f(r);
                }
            }
            KernelKind::EpPairs {
                i,
                nk,
                x,
                q,
                sx,
                sy,
                ra,
                rb,
                rc,
                rd,
                re,
                rf,
                rg,
                rh,
                ri,
                rj,
                rl,
            } => {
                for r in [
                    i, nk, x, q, sx, sy, ra, rb, rc, rd, re, rf, rg, rh, ri, rj, rl,
                ] {
                    f(r);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-call matching: symbolic verification of small pure callees
// ---------------------------------------------------------------------------

/// Symbolic value over a two-parameter `(ptr, scalar)` callee. `Trunc`
/// is the NPB truncation idiom `@intToFloat(@floatToInt(v))`; `FtoI`
/// is its half-finished intermediate (an `i64`-typed node that is only
/// legal as the immediate operand of `IntToFloat`).
#[derive(Clone)]
enum Sym {
    /// The pointer parameter itself (only dereferenced/stored through).
    Ptr,
    /// The scalar (`f64`) parameter.
    A,
    /// The pointee's value on entry.
    X,
    /// A float constant, by exact bit pattern.
    C(u64),
    FtoI(std::rc::Rc<Sym>),
    Trunc(std::rc::Rc<Sym>),
    Add(std::rc::Rc<Sym>, std::rc::Rc<Sym>),
    Sub(std::rc::Rc<Sym>, std::rc::Rc<Sym>),
    Mul(std::rc::Rc<Sym>, std::rc::Rc<Sym>),
}

/// Canonical key: a string rendering with the operands of the
/// commutative nodes (`Add`, `Mul`) sorted, so two trees are
/// semantically identical LCG dataflow iff their keys match. Trees are
/// a few hundred expanded nodes at most, so the quadratic string
/// building is irrelevant.
fn sym_key(s: &Sym, out: &mut String) {
    match s {
        Sym::Ptr => out.push('p'),
        Sym::A => out.push('a'),
        Sym::X => out.push('x'),
        Sym::C(bits) => {
            out.push('c');
            out.push_str(&bits.to_string());
        }
        Sym::FtoI(v) => {
            out.push_str("i(");
            sym_key(v, out);
            out.push(')');
        }
        Sym::Trunc(v) => {
            out.push_str("t(");
            sym_key(v, out);
            out.push(')');
        }
        Sym::Sub(l, r) => {
            out.push_str("-(");
            sym_key(l, out);
            out.push(',');
            sym_key(r, out);
            out.push(')');
        }
        Sym::Add(l, r) | Sym::Mul(l, r) => {
            out.push(if matches!(s, Sym::Add(..)) { '+' } else { '*' });
            let (mut a, mut b) = (String::new(), String::new());
            sym_key(l, &mut a);
            sym_key(r, &mut b);
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            out.push('(');
            out.push_str(&a);
            out.push(',');
            out.push_str(&b);
            out.push(')');
        }
    }
}

/// The NPB 46-bit LCG step (`randlc`), as the canonical symbolic pair
/// `(return value, final pointee)`. Exact constants: the kernel is only
/// bit-identical to the callee when the callee uses these very values.
fn lcg_canonical() -> (String, String) {
    use std::rc::Rc;
    const R23: f64 = 0.000_000_119_209_289_550_781_25;
    const T23: f64 = 8_388_608.0;
    const R46: f64 = R23 * R23;
    const T46: f64 = T23 * T23;
    let c = |v: f64| Rc::new(Sym::C(v.to_bits()));
    let mul = |l: &Rc<Sym>, r: &Rc<Sym>| Rc::new(Sym::Mul(l.clone(), r.clone()));
    let add = |l: &Rc<Sym>, r: &Rc<Sym>| Rc::new(Sym::Add(l.clone(), r.clone()));
    let sub = |l: &Rc<Sym>, r: &Rc<Sym>| Rc::new(Sym::Sub(l.clone(), r.clone()));
    let trunc = |v: &Rc<Sym>| Rc::new(Sym::Trunc(v.clone()));
    let (r23, t23, r46, t46) = (c(R23), c(T23), c(R46), c(T46));
    let (a, x) = (Rc::new(Sym::A), Rc::new(Sym::X));
    let a1 = trunc(&mul(&r23, &a));
    let a2 = sub(&a, &mul(&t23, &a1));
    let x1 = trunc(&mul(&r23, &x));
    let x2 = sub(&x, &mul(&t23, &x1));
    let t1 = add(&mul(&a1, &x2), &mul(&a2, &x1));
    let t2 = trunc(&mul(&r23, &t1));
    let z = sub(&t1, &mul(&t23, &t2));
    let t3 = add(&mul(&t23, &z), &mul(&a2, &x2));
    let t4 = trunc(&mul(&r46, &t3));
    let xp = sub(&t3, &mul(&t46, &t4));
    let ret = mul(&r46, &xp);
    let (mut rk, mut mk) = (String::new(), String::new());
    sym_key(&ret, &mut rk);
    sym_key(&xp, &mut mk);
    (rk, mk)
}

/// `true` iff `f` is a two-parameter `(ptr, f64)` function whose body
/// is straight-line float dataflow computing *exactly* the NPB 46-bit
/// LCG step: return value `r46 * x'`, pointee updated to `x'`. The
/// whole body is abstractly interpreted over [`Sym`]; any instruction
/// outside the tiny pure-dataflow subset (a jump, a call, an index)
/// rejects. Tree equality (commutative in `Add`/`Mul`, exact in
/// constants) implies the kernel's hardcoded step reproduces the
/// callee bit-for-bit — float addition and multiplication are
/// deterministic, so equal dataflow means equal bits.
fn lcg_callee(f: &CompiledFn) -> bool {
    use std::rc::Rc;
    if f.nparams != 2 {
        return false;
    }
    let mut env: Vec<Option<Rc<Sym>>> = vec![None; f.nregs.max(2)];
    env[0] = Some(Rc::new(Sym::Ptr));
    env[1] = Some(Rc::new(Sym::A));
    let mut mem: Rc<Sym> = Rc::new(Sym::X);
    let get = |env: &[Option<Rc<Sym>>], r: Reg| env.get(r as usize).cloned().flatten();
    let is_ptr = |env: &[Option<Rc<Sym>>], r: Reg| matches!(get(env, r).as_deref(), Some(Sym::Ptr));
    for insn in &f.code {
        match *insn {
            Insn::Const { dst, k } => {
                env[dst as usize] = match f.consts.get(k as usize) {
                    Some(Value::Float(v)) => Some(Rc::new(Sym::C(v.to_bits()))),
                    _ => None,
                };
            }
            Insn::Move { dst, src } => env[dst as usize] = get(&env, src),
            Insn::Arith { op, dst, a, b } | Insn::ArithFF { op, dst, a, b } => {
                let (Some(l), Some(r)) = (get(&env, a), get(&env, b)) else {
                    return false;
                };
                env[dst as usize] = Some(Rc::new(match op {
                    ArithOp::Add => Sym::Add(l, r),
                    ArithOp::Sub => Sym::Sub(l, r),
                    ArithOp::Mul => Sym::Mul(l, r),
                    _ => return false,
                }));
            }
            Insn::ArithK { op, dst, a, k } => {
                let (Some(l), Some(Value::Float(v))) = (get(&env, a), f.consts.get(k as usize))
                else {
                    return false;
                };
                let r = Rc::new(Sym::C(v.to_bits()));
                env[dst as usize] = Some(Rc::new(match op {
                    ArithOp::Add => Sym::Add(l, r),
                    ArithOp::Sub => Sym::Sub(l, r),
                    ArithOp::Mul => Sym::Mul(l, r),
                    _ => return false,
                }));
            }
            Insn::ArithKL { op, dst, k, b } => {
                let (Some(Value::Float(v)), Some(r)) = (f.consts.get(k as usize), get(&env, b))
                else {
                    return false;
                };
                let l = Rc::new(Sym::C(v.to_bits()));
                env[dst as usize] = Some(Rc::new(match op {
                    ArithOp::Add => Sym::Add(l, r),
                    ArithOp::Sub => Sym::Sub(l, r),
                    ArithOp::Mul => Sym::Mul(l, r),
                    _ => return false,
                }));
            }
            Insn::Builtin {
                dst,
                op: BuiltinOp::FloatToInt,
                base,
                n: 1,
                ..
            } => {
                let Some(v) = get(&env, base) else {
                    return false;
                };
                env[dst as usize] = Some(Rc::new(Sym::FtoI(v)));
            }
            Insn::Builtin {
                dst,
                op: BuiltinOp::IntToFloat,
                base,
                n: 1,
                ..
            } => {
                let Some(v) = get(&env, base) else {
                    return false;
                };
                let Sym::FtoI(inner) = &*v else { return false };
                env[dst as usize] = Some(Rc::new(Sym::Trunc(inner.clone())));
            }
            Insn::Deref { dst, ptr } => {
                if !is_ptr(&env, ptr) {
                    return false;
                }
                env[dst as usize] = Some(mem.clone());
            }
            Insn::StorePtr { ptr, src } => {
                if !is_ptr(&env, ptr) {
                    return false;
                }
                let Some(v) = get(&env, src) else {
                    return false;
                };
                mem = v;
            }
            Insn::Ret { src } => {
                let Some(ret) = get(&env, src) else {
                    return false;
                };
                let (mut rk, mut mk) = (String::new(), String::new());
                sym_key(&ret, &mut rk);
                sym_key(&mem, &mut mk);
                let (crk, cmk) = lcg_canonical();
                return rk == crk && mk == cmk;
            }
            _ => return false,
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Installation (pattern matching on the final instruction stream)
// ---------------------------------------------------------------------------

/// Install bulk kernels in every function (`--opt=3` only; runs after
/// optimization and static specialization). A pre-pass classifies
/// every function as LCG-shaped or not so the loop matchers can see
/// *through* `Call` boundaries without borrowing the image twice.
pub fn install_image(image: &mut Image) {
    let nfuncs = image.funcs.len();
    let lcg: Vec<bool> = image.funcs.iter().map(lcg_callee).collect();
    for f in &mut image.funcs {
        install_fn(f, nfuncs, &lcg);
    }
}

fn install_fn(f: &mut CompiledFn, nfuncs: usize, lcg: &[bool]) {
    let orig = if f.pre_opt.is_none() {
        Some(f.code.clone())
    } else {
        None
    };
    let mut installed = false;
    for pc in 0..f.code.len() {
        if f.kernels.len() >= u16::MAX as usize {
            break;
        }
        let Some((kind, exit)) = match_at(f, pc, lcg) else {
            continue;
        };
        let kidx = f.kernels.len() as u16;
        f.kernels.push(KernelDesc {
            orig: f.code[pc],
            exit,
            kind,
            label: loop_label(f, pc),
        });
        f.code[pc] = Insn::BulkLoop { kidx };
        installed = true;
    }
    // Typed-template tier: generic loops that missed every fixed
    // kernel shape (runs second so the specialised kernels win the
    // overlap; skips pcs covered by an installed kernel span).
    installed |= crate::templates::install_fn(f);
    if installed {
        rewrite_ws_begin_bulk(f);
        if let Some(code) = orig {
            f.pre_opt = Some(PreOpt {
                code,
                nconsts: f.consts.len(),
            });
        }
        if let Err(e) = verify_fn(f, nfuncs) {
            panic!("kernel installation produced invalid bytecode: {e}");
        }
    }
}

/// Retarget the `omp.internal.ws_begin` call enclosing each installed
/// kernel or template to `ws_begin_bulk`: the chunk body is (dominated
/// by) a native loop, which handles any chunk length, so the dynamic dispatcher
/// may claim whole owner batches while its deck is uncontended instead of
/// paying the claim protocol and kernel entry per clause-sized chunk. The
/// schedule's *mapping* semantics are untouched — static chunking and
/// contended dynamic dispatch behave exactly as before (see
/// `zomp::schedule::DynamicDispatch::next_bulk_with_origin`).
fn rewrite_ws_begin_bulk(f: &mut CompiledFn) {
    let heads: Vec<usize> = (0..f.code.len())
        .filter(|&pc| {
            matches!(
                f.code[pc],
                Insn::BulkLoop { .. } | Insn::TemplateLoop { .. }
            )
        })
        .collect();
    for pc in heads {
        // Nearest preceding worksharing begin, the same resolution rule
        // as `loop_label`. A `ws_begin_bulk` hit means another kernel in
        // the same loop already retargeted it.
        let mut target = None;
        for i in (0..pc).rev() {
            let Insn::OmpCall { sym, .. } = f.code[i] else {
                continue;
            };
            match f.omp_syms[sym as usize].last().map(String::as_str) {
                Some("ws_begin") => target = Some((i, sym)),
                Some("ws_begin_bulk") => {}
                _ => continue,
            }
            break;
        }
        let Some((i, sym)) = target else {
            continue;
        };
        let mut path = f.omp_syms[sym as usize].clone();
        *path.last_mut().unwrap() = "ws_begin_bulk".to_string();
        let idx = f
            .omp_syms
            .iter()
            .position(|p| *p == path)
            .unwrap_or_else(|| {
                f.omp_syms.push(path);
                f.omp_syms.len() - 1
            });
        if idx > u16::MAX as usize {
            continue;
        }
        if let Insn::OmpCall { sym, .. } = &mut f.code[i] {
            *sym = idx as u16;
        }
    }
}

/// Resolve the pragma label of the worksharing loop enclosing the
/// kernel at `pc`: the nearest preceding `omp.internal.ws_begin` call
/// whose first argument is a string constant (the preprocessor only
/// emits that argument for named units). `""` when absent.
pub(crate) fn loop_label(f: &CompiledFn, pc: usize) -> &'static str {
    for i in (0..pc).rev() {
        let Insn::OmpCall { sym, base, .. } = f.code[i] else {
            continue;
        };
        let path = &f.omp_syms[sym as usize];
        // `starts_with`: kernel installation may have retargeted the call
        // to `ws_begin_bulk`, and remarks resolve labels post-install.
        if !path.last().is_some_and(|s| s.starts_with("ws_begin")) {
            continue;
        }
        // The label argument is materialised by a `const` into the
        // call's first argument register somewhere before the call.
        for j in (0..i).rev() {
            let Insn::Const { dst, k } = f.code[j] else {
                continue;
            };
            if dst != base {
                continue;
            }
            if let Some(Value::Str(s)) = f.consts.get(k as usize) {
                return zomp::trace::intern(s);
            }
            break;
        }
        break;
    }
    ""
}

fn all_distinct(rs: &[Reg]) -> bool {
    for (i, a) in rs.iter().enumerate() {
        if rs[i + 1..].contains(a) {
            return false;
        }
    }
    true
}

/// The loop must only write `writes`; every other bound register has
/// to stay loop-invariant for the cached-operand kernel to be exact.
fn disciplined(writes: &[Reg], invariant: &[Reg]) -> bool {
    all_distinct(writes) && invariant.iter().all(|r| !writes.contains(r))
}

fn const_int(f: &CompiledFn, k: u16) -> Option<i64> {
    match f.consts.get(k as usize)? {
        Value::Int(v) => Some(*v),
        _ => None,
    }
}

// Generic-or-specialized views. Static specialization (`--opt>=2`)
// rewrites `Arith`→`ArithII`/`ArithFF`, `Index`→`IndexI`/`IndexF`,
// `IndexSet`→`IndexSetI`/`IndexSetF` and `CmpJumpFalse`→`..II`/`..FF`
// wherever inference proves the operand types; the kernel semantics
// are identical either way (the specialized opcodes deopt on a type
// mismatch exactly where the generic ones would re-quicken), so the
// matchers accept both forms.
fn as_arith(insn: Insn) -> Option<(ArithOp, Reg, Reg, Reg)> {
    match insn {
        Insn::Arith { op, dst, a, b }
        | Insn::ArithII { op, dst, a, b }
        | Insn::ArithFF { op, dst, a, b } => Some((op, dst, a, b)),
        _ => None,
    }
}

fn as_index(insn: Insn) -> Option<(Reg, Reg, Reg)> {
    match insn {
        Insn::Index { dst, arr, idx }
        | Insn::IndexI { dst, arr, idx }
        | Insn::IndexF { dst, arr, idx } => Some((dst, arr, idx)),
        _ => None,
    }
}

fn as_index_set(insn: Insn) -> Option<(Reg, Reg, Reg)> {
    match insn {
        Insn::IndexSet { arr, idx, src }
        | Insn::IndexSetI { arr, idx, src }
        | Insn::IndexSetF { arr, idx, src } => Some((arr, idx, src)),
        _ => None,
    }
}

fn as_cmp_jf(insn: Insn) -> Option<(CmpOp, Reg, Reg, u32)> {
    match insn {
        Insn::CmpJumpFalse { op, a, b, to }
        | Insn::CmpJumpFalseII { op, a, b, to }
        | Insn::CmpJumpFalseFF { op, a, b, to } => Some((op, a, b, to)),
        _ => None,
    }
}

fn match_at(f: &CompiledFn, pc: usize, lcg: &[bool]) -> Option<(KernelKind, u32)> {
    match_matvec_rows(f, pc)
        .or_else(|| match_matvec(f, pc))
        .or_else(|| match_histogram(f, pc))
        .or_else(|| match_fill(f, pc))
        .or_else(|| match_prefix(f, pc))
        .or_else(|| match_rank_inc(f, pc))
        .or_else(|| match_rank_pipeline(f, pc))
        .or_else(|| match_scatter(f, pc))
        .or_else(|| match_lcg_fill(f, pc, lcg))
        .or_else(|| match_ep_pairs(f, pc))
}

fn match_matvec_rows(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let (acc, sk) = match *code.get(pc)? {
        Insn::Const { dst, k } => {
            // The seed must be a Float constant (the `s = 0.0` reset).
            match f.consts.get(k as usize)? {
                Value::Float(_) => (dst, k),
                _ => return None,
            }
        }
        _ => return None,
    };
    let (k, rowcell, j) = match *code.get(pc + 1)? {
        Insn::DerefIndex { dst, cell, idx } => (dst, cell, idx),
        _ => return None,
    };
    let bound = match *code.get(pc + 2)? {
        Insn::DerefIndexOff {
            dst,
            cell,
            idx,
            off: 1,
        } if cell == rowcell && idx == j => dst,
        _ => return None,
    };
    match as_cmp_jf(*code.get(pc + 3)?)? {
        (CmpOp::Lt, a, b, to) if a == k && b == bound && to as usize == pc + 6 => {}
        _ => return None,
    }
    let (xcell, acell, icell) = match *code.get(pc + 4)? {
        Insn::FmaGather {
            dst,
            xcell,
            acell,
            icell,
            idx,
        } if dst == acc && idx == k => (xcell, acell, icell),
        _ => return None,
    };
    match *code.get(pc + 5)? {
        Insn::IncJump { var, step: 1, to } if var == k && to as usize == pc + 2 => {}
        _ => return None,
    }
    let qcell = match *code.get(pc + 6)? {
        Insn::DerefIndexSet { cell, idx, src } if idx == j && src == acc => cell,
        _ => return None,
    };
    let (ub, exit) = match *code.get(pc + 7)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == j && to as usize == pc => (limit, pc as u32 + 8),
        _ => return None,
    };
    if !disciplined(
        &[acc, k, bound, j],
        &[rowcell, xcell, acell, icell, qcell, ub],
    ) {
        return None;
    }
    Some((
        KernelKind::MatvecRows {
            rowcell,
            j,
            k,
            bound,
            acc,
            xcell,
            acell,
            icell,
            qcell,
            ub,
            sk,
        },
        exit,
    ))
}

fn match_matvec(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let (bound, rowcell, j) = match *code.get(pc)? {
        Insn::DerefIndexOff {
            dst,
            cell,
            idx,
            off: 1,
        } => (dst, cell, idx),
        _ => return None,
    };
    let (k, exit) = match as_cmp_jf(*code.get(pc + 1)?)? {
        (CmpOp::Lt, a, b, to) if b == bound => (a, to),
        _ => return None,
    };
    let (acc, xcell, acell, icell) = match *code.get(pc + 2)? {
        Insn::FmaGather {
            dst,
            xcell,
            acell,
            icell,
            idx,
        } if idx == k => (dst, xcell, acell, icell),
        _ => return None,
    };
    match *code.get(pc + 3)? {
        Insn::IncJump { var, step: 1, to } if var == k && to as usize == pc => {}
        _ => return None,
    }
    if !disciplined(&[bound, k, acc], &[j, rowcell, xcell, acell, icell]) {
        return None;
    }
    Some((
        KernelKind::MatvecGather {
            rowcell,
            j,
            k,
            bound,
            acc,
            xcell,
            acell,
            icell,
        },
        exit,
    ))
}

fn match_histogram(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let (t, keys, i) = match *code.get(pc)? {
        Insn::DerefIndex { dst, cell, idx } => (dst, cell, idx),
        _ => return None,
    };
    let (b, sd) = match as_arith(*code.get(pc + 1)?)? {
        (ArithOp::Div, dst, a, b) if a == t => (dst, b),
        _ => return None,
    };
    let (local, kidx) = match *code.get(pc + 2)? {
        Insn::IncElemK {
            op: ArithOp::Add,
            arr,
            idx,
            k,
        } if idx == b => {
            const_int(f, k)?;
            (arr, k)
        }
        _ => return None,
    };
    let (ub, exit) = match *code.get(pc + 3)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == i && to as usize == pc => (limit, pc as u32 + 4),
        _ => return None,
    };
    if !disciplined(&[t, b, i], &[keys, sd, local, ub]) {
        return None;
    }
    Some((
        KernelKind::Histogram {
            keys,
            i,
            t,
            b,
            sd,
            local,
            ub,
            k: kidx,
        },
        exit,
    ))
}

fn match_fill(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let (c, k) = match *code.get(pc)? {
        Insn::Const { dst, k } => (dst, k),
        _ => return None,
    };
    let (arr, i) = match *code.get(pc + 1)? {
        Insn::DerefIndexSet { cell, idx, src } if src == c => (cell, idx),
        _ => return None,
    };
    let (lim, exit) = match *code.get(pc + 2)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == i && to as usize == pc => (limit, pc as u32 + 3),
        _ => return None,
    };
    if !disciplined(&[c, i], &[arr, lim]) {
        return None;
    }
    Some((KernelKind::FillConst { arr, i, c, lim, k }, exit))
}

fn match_prefix(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let (t, arr, i) = match *code.get(pc)? {
        Insn::DerefIndex { dst, cell, idx } => (dst, cell, idx),
        _ => return None,
    };
    let acc = match as_arith(*code.get(pc + 1)?)? {
        (ArithOp::Add, dst, a, b) if a == dst && b == t => dst,
        _ => return None,
    };
    match *code.get(pc + 2)? {
        Insn::DerefIndexSet { cell, idx, src } if cell == arr && idx == i && src == acc => {}
        _ => return None,
    }
    let (lim, exit) = match *code.get(pc + 3)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == i && to as usize == pc => (limit, pc as u32 + 4),
        _ => return None,
    };
    if !disciplined(&[t, acc, i], &[arr, lim]) {
        return None;
    }
    Some((
        KernelKind::PrefixSum {
            arr,
            i,
            t,
            acc,
            lim,
        },
        exit,
    ))
}

fn match_rank_inc(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let (ra, rkcell) = match *code.get(pc)? {
        Insn::Deref { dst, ptr } => (dst, ptr),
        _ => return None,
    };
    let (v, bcell, q) = match *code.get(pc + 1)? {
        Insn::DerefIndex { dst, cell, idx } => (dst, cell, idx),
        _ => return None,
    };
    let x = match as_index(*code.get(pc + 2)?)? {
        (dst, arr, idx) if arr == ra && idx == v => dst,
        _ => return None,
    };
    let (y, k) = match *code.get(pc + 3)? {
        Insn::ArithK {
            op: ArithOp::Add,
            dst,
            a,
            k,
        } if a == x => {
            const_int(f, k)?;
            (dst, k)
        }
        _ => return None,
    };
    let rb = match *code.get(pc + 4)? {
        Insn::Deref { dst, ptr } if ptr == rkcell => dst,
        _ => return None,
    };
    let v2 = match *code.get(pc + 5)? {
        Insn::DerefIndex { dst, cell, idx } if cell == bcell && idx == q => dst,
        _ => return None,
    };
    match as_index_set(*code.get(pc + 6)?)? {
        (arr, idx, src) if arr == rb && idx == v2 && src == y => {}
        _ => return None,
    }
    let (lim, exit) = match *code.get(pc + 7)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == q && to as usize == pc => (limit, pc as u32 + 8),
        _ => return None,
    };
    if !disciplined(&[ra, v, x, y, rb, v2, q], &[rkcell, bcell, lim]) {
        return None;
    }
    Some((
        KernelKind::RankInc {
            rkcell,
            bcell,
            q,
            ra,
            v,
            x,
            y,
            rb,
            v2,
            lim,
            k,
        },
        exit,
    ))
}

fn match_scatter(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let (t, keys, i) = match *code.get(pc)? {
        Insn::DerefIndex { dst, cell, idx } => (dst, cell, idx),
        _ => return None,
    };
    let t2 = match *code.get(pc + 1)? {
        Insn::Move { dst, src } if src == t => dst,
        _ => return None,
    };
    let sd = match as_arith(*code.get(pc + 2)?)? {
        (ArithOp::Div, dst, a, b) if dst == t && a == t => b,
        _ => return None,
    };
    let (b2, bcell) = match *code.get(pc + 3)? {
        Insn::Deref { dst, ptr } => (dst, ptr),
        _ => return None,
    };
    let (c, cur) = match as_index(*code.get(pc + 4)?)? {
        (dst, arr, idx) if idx == t => (dst, arr),
        _ => return None,
    };
    match as_index_set(*code.get(pc + 5)?)? {
        (arr, idx, src) if arr == b2 && idx == c && src == t2 => {}
        _ => return None,
    }
    let k = match *code.get(pc + 6)? {
        Insn::IncElemK {
            op: ArithOp::Add,
            arr,
            idx,
            k,
        } if arr == cur && idx == t => {
            const_int(f, k)?;
            k
        }
        _ => return None,
    };
    let (lim, exit) = match *code.get(pc + 7)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == i && to as usize == pc => (limit, pc as u32 + 8),
        _ => return None,
    };
    if !disciplined(&[t, t2, b2, c, i], &[keys, sd, bcell, cur, lim]) {
        return None;
    }
    Some((
        KernelKind::Scatter {
            keys,
            i,
            t,
            t2,
            sd,
            bcell,
            b2,
            cur,
            c,
            lim,
            k,
        },
        exit,
    ))
}

/// The IS phase-4 bucket loop, fused across the adjacent
/// fill → rank-inc → prefix-sum triple (31 instructions; see
/// [`KernelKind::RankPipeline`]). The shape is the optimizer's
/// canonical output for the source idiom, the same bet
/// [`match_ep_pairs`] makes on its 32-instruction body:
/// ```text
/// pc+0   keylo = b4 * sd               pc+13  p = st
/// pc+1   th = b4 + 1                   pc+14  if !(st < en) -> +23
/// pc+2   kh0 = th * sd                 pc+15  ra = *rcell
/// pc+3   keyhi = kh0                   pc+16  v = (*bcell)[p]
/// pc+4   st0 = (*scell)[b4]            pc+17  x = ra[v]
/// pc+5   st = st0                      pc+18  y = x + kinc
/// pc+6   en0 = (*scell)[b4+1]          pc+19  rb = *rcell
/// pc+7   en = en0                      pc+20  v2 = (*bcell)[p]
/// pc+8   k = keylo                     pc+21  rb[v2] = y
/// pc+9   if !(keylo < keyhi) -> +13    pc+22  p += 1; p < en -> +15
/// pc+10  fc = kfill                    pc+23  acc = st
/// pc+11  (*rcell)[k] = fc              pc+24  k2 = keylo
/// pc+12  k += 1; k < keyhi -> +10      pc+25  if !(keylo < keyhi) -> +30
///                                      pc+26  t3 = (*rcell)[k2]
///                                      pc+27  acc = acc + t3
///                                      pc+28  (*rcell)[k2] = acc
///                                      pc+29  k2 += 1; k2 < keyhi -> +26
///                                      pc+30  b4 += 1; b4 < ub -> pc
/// ```
fn match_rank_pipeline(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let (keylo, b4, sd) = match as_arith(*code.get(pc)?)? {
        (ArithOp::Mul, dst, a, b) => (dst, a, b),
        _ => return None,
    };
    let (th, kone) = match *code.get(pc + 1)? {
        Insn::ArithK {
            op: ArithOp::Add,
            dst,
            a,
            k,
        } if a == b4 => {
            const_int(f, k)?;
            (dst, k)
        }
        _ => return None,
    };
    let kh0 = match as_arith(*code.get(pc + 2)?)? {
        (ArithOp::Mul, dst, a, b) if a == th && b == sd => dst,
        _ => return None,
    };
    let keyhi = match *code.get(pc + 3)? {
        Insn::Move { dst, src } if src == kh0 => dst,
        _ => return None,
    };
    let (st0, scell) = match *code.get(pc + 4)? {
        Insn::DerefIndex { dst, cell, idx } if idx == b4 => (dst, cell),
        _ => return None,
    };
    let st = match *code.get(pc + 5)? {
        Insn::Move { dst, src } if src == st0 => dst,
        _ => return None,
    };
    let en0 = match *code.get(pc + 6)? {
        Insn::DerefIndexOff {
            dst,
            cell,
            idx,
            off: 1,
        } if cell == scell && idx == b4 => dst,
        _ => return None,
    };
    let en = match *code.get(pc + 7)? {
        Insn::Move { dst, src } if src == en0 => dst,
        _ => return None,
    };
    let kf = match *code.get(pc + 8)? {
        Insn::Move { dst, src } if src == keylo => dst,
        _ => return None,
    };
    match as_cmp_jf(*code.get(pc + 9)?)? {
        (CmpOp::Lt, a, b, to) if a == keylo && b == keyhi && to as usize == pc + 13 => {}
        _ => return None,
    }
    let (fc, kfill) = match *code.get(pc + 10)? {
        Insn::Const { dst, k } => {
            const_int(f, k)?;
            (dst, k)
        }
        _ => return None,
    };
    let rcell = match *code.get(pc + 11)? {
        Insn::DerefIndexSet { cell, idx, src } if idx == kf && src == fc => cell,
        _ => return None,
    };
    match *code.get(pc + 12)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == kf && limit == keyhi && to as usize == pc + 10 => {}
        _ => return None,
    }
    let p = match *code.get(pc + 13)? {
        Insn::Move { dst, src } if src == st => dst,
        _ => return None,
    };
    match as_cmp_jf(*code.get(pc + 14)?)? {
        (CmpOp::Lt, a, b, to) if a == st && b == en && to as usize == pc + 23 => {}
        _ => return None,
    }
    let ra = match *code.get(pc + 15)? {
        Insn::Deref { dst, ptr } if ptr == rcell => dst,
        _ => return None,
    };
    let (v, bcell) = match *code.get(pc + 16)? {
        Insn::DerefIndex { dst, cell, idx } if idx == p => (dst, cell),
        _ => return None,
    };
    let x = match as_index(*code.get(pc + 17)?)? {
        (dst, arr, idx) if arr == ra && idx == v => dst,
        _ => return None,
    };
    let (y, kinc) = match *code.get(pc + 18)? {
        Insn::ArithK {
            op: ArithOp::Add,
            dst,
            a,
            k,
        } if a == x => {
            const_int(f, k)?;
            (dst, k)
        }
        _ => return None,
    };
    let rb = match *code.get(pc + 19)? {
        Insn::Deref { dst, ptr } if ptr == rcell => dst,
        _ => return None,
    };
    let v2 = match *code.get(pc + 20)? {
        Insn::DerefIndex { dst, cell, idx } if cell == bcell && idx == p => dst,
        _ => return None,
    };
    match as_index_set(*code.get(pc + 21)?)? {
        (arr, idx, src) if arr == rb && idx == v2 && src == y => {}
        _ => return None,
    }
    match *code.get(pc + 22)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == p && limit == en && to as usize == pc + 15 => {}
        _ => return None,
    }
    let acc = match *code.get(pc + 23)? {
        Insn::Move { dst, src } if src == st => dst,
        _ => return None,
    };
    let k2 = match *code.get(pc + 24)? {
        Insn::Move { dst, src } if src == keylo => dst,
        _ => return None,
    };
    match as_cmp_jf(*code.get(pc + 25)?)? {
        (CmpOp::Lt, a, b, to) if a == keylo && b == keyhi && to as usize == pc + 30 => {}
        _ => return None,
    }
    let t3 = match *code.get(pc + 26)? {
        Insn::DerefIndex { dst, cell, idx } if cell == rcell && idx == k2 => dst,
        _ => return None,
    };
    match as_arith(*code.get(pc + 27)?)? {
        (ArithOp::Add, dst, a, b) if dst == acc && a == acc && b == t3 => {}
        _ => return None,
    }
    match *code.get(pc + 28)? {
        Insn::DerefIndexSet { cell, idx, src } if cell == rcell && idx == k2 && src == acc => {}
        _ => return None,
    }
    match *code.get(pc + 29)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == k2 && limit == keyhi && to as usize == pc + 26 => {}
        _ => return None,
    }
    let ub = match *code.get(pc + 30)? {
        Insn::IncCmpJump {
            var,
            step: 1,
            limit,
            op: CmpOp::Lt,
            to,
        } if var == b4 && to as usize == pc => limit,
        _ => return None,
    };
    // Alias discipline. Several per-bucket temporaries share physical
    // registers by design (the runner writes them back in program
    // order), so instead of `all_distinct` over everything, require
    // exactly the invariances the runner leans on: the cells, divisor
    // and bound are never written; the outer induction and the scalars
    // re-read *after* an inner loop (`keylo`/`keyhi`/`st`/`en`) are not
    // clobbered by any inner-loop write; and each inner loop keeps its
    // own discipline (mirroring the standalone kernels').
    let writes = [
        keylo, th, kh0, keyhi, st0, st, en0, en, kf, fc, p, ra, v, x, y, rb, v2, acc, k2, t3, b4,
    ];
    if [scell, rcell, bcell, sd, ub]
        .iter()
        .any(|r| writes.contains(r))
    {
        return None;
    }
    let inner_writes = [fc, kf, p, ra, v, x, y, rb, v2, acc, k2, t3];
    if [b4, keylo, keyhi, st, en]
        .iter()
        .any(|r| inner_writes.contains(r))
    {
        return None;
    }
    if !all_distinct(&[fc, kf]) || !all_distinct(&[ra, v, x, y, rb, v2, p]) || !all_distinct(&[t3, acc, k2]) {
        return None;
    }
    Some((
        KernelKind::RankPipeline {
            scell,
            rcell,
            bcell,
            b4,
            sd,
            ub,
            keylo,
            th,
            kh0,
            keyhi,
            st0,
            st,
            en0,
            en,
            kf,
            fc,
            p,
            ra,
            v,
            x,
            y,
            rb,
            v2,
            acc,
            k2,
            t3,
            kone,
            kfill,
            kinc,
        },
        pc as u32 + 31,
    ))
}

/// EP deviate fill, matched *through* the call boundary:
/// ```text
/// pc+0  kmul   lim, k, nk          ; lim = c * nk (head, re-executed)
/// pc+1  cjfii  j < lim -> pc+7     ; while-loop guard
/// pc+2  move   targ, tcell         ; arg 0: the seed cell (&t)
/// pc+3  move   aarg, areg          ; arg 1: the multiplier
/// pc+4  call   res, f, targ..2     ; f verified LCG-shaped
/// pc+5  indexsetf arr[j], res
/// pc+6  incjump j += 1 -> pc+0
/// ```
/// Only installs when `lcg[f]` held for the callee, i.e. the call is
/// *provably* the NPB 46-bit LCG step; the kernel then runs the whole
/// batch against a local copy of the seed without frame setup per
/// element.
fn match_lcg_fill(f: &CompiledFn, pc: usize, lcg: &[bool]) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let Insn::ArithKL {
        op: ArithOp::Mul,
        dst: lim,
        k,
        b: nk,
    } = *code.get(pc)?
    else {
        return None;
    };
    const_int(f, k)?;
    let Insn::CmpJumpFalseII {
        op: CmpOp::Lt,
        a: j,
        b: lim2,
        to,
    } = *code.get(pc + 1)?
    else {
        return None;
    };
    if lim2 != lim || to as usize != pc + 7 {
        return None;
    }
    let Insn::Move {
        dst: targ,
        src: tcell,
    } = *code.get(pc + 2)?
    else {
        return None;
    };
    let Insn::Move {
        dst: aarg,
        src: areg,
    } = *code.get(pc + 3)?
    else {
        return None;
    };
    if aarg != targ + 1 {
        return None;
    }
    let Insn::Call {
        dst: res,
        func,
        base,
        n: 2,
    } = *code.get(pc + 4)?
    else {
        return None;
    };
    if base != targ || !lcg.get(func as usize).copied().unwrap_or(false) {
        return None;
    }
    let Insn::IndexSetF { arr, idx, src } = *code.get(pc + 5)? else {
        return None;
    };
    if idx != j || src != res {
        return None;
    }
    let Insn::IncJump {
        var,
        step: 1,
        to: to2,
    } = *code.get(pc + 6)?
    else {
        return None;
    };
    if var != j || to2 as usize != pc {
        return None;
    }
    // `lim` may alias `targ`/`aarg`/`res` (the head recomputes it before
    // the guard reads it), but the induction variable and the
    // loop-invariant operands must be untouched by every write.
    let writes = [lim, targ, aarg, res, j];
    if !all_distinct(&[j, lim]) || [targ, aarg, res].contains(&j) {
        return None;
    }
    if [nk, tcell, areg, arr].iter().any(|r| writes.contains(r)) {
        return None;
    }
    Some((
        KernelKind::LcgFill {
            tcell,
            targ,
            aarg,
            areg,
            res,
            arr,
            j,
            lim,
            nk,
            k,
        },
        (pc + 7) as u32,
    ))
}

fn const_float_is(f: &CompiledFn, k: u16, want: f64) -> bool {
    matches!(f.consts.get(k as usize), Some(Value::Float(v)) if v.to_bits() == want.to_bits())
}

/// EP Gaussian-acceptance tail (do-while body at `pc..pc+31`,
/// back-edge at `pc+31`, exit `pc+32`): candidate pair from `x[2i]`,
/// `x[2i+1]`, radius test `tt <= 1.0`, Box–Muller transform,
/// histogram bump `q[l] += 1.0` and the two reduction accumulators.
/// All arithmetic in the body is total under the interpreter (wrapping
/// int ops, IEEE float ops, saturating `@floatToInt`), so the only
/// bail sources are the three array accesses.
#[rustfmt::skip]
fn match_ep_pairs(f: &CompiledFn, pc: usize) -> Option<(KernelKind, u32)> {
    let code = &f.code;
    let at = |o: usize| code.get(pc + o).copied();
    // pc+0: x1' = 2.0 (candidate scale)
    let Insn::Const { dst: ra, k: k2f } = at(0)? else { return None };
    if !const_float_is(f, k2f, 2.0) { return None; }
    // pc+1: rc = 2 * i
    let Insn::ArithKL { op: ArithOp::Mul, dst: rc, k: k2i, b: i } = at(1)? else { return None };
    if const_int(f, k2i)? != 2 { return None; }
    // pc+2: rd = x[rc]
    let Insn::IndexF { dst: rd, arr: x, idx } = at(2)? else { return None };
    if idx != rc { return None; }
    // pc+3..5: x1 = 2.0 * x[2i] - 1.0
    let Insn::ArithFF { op: ArithOp::Mul, dst: re, a, b } = at(3)? else { return None };
    if a != ra || b != rd { return None; }
    let Insn::ArithK { op: ArithOp::Sub, dst: rg, a, k: k1f } = at(4)? else { return None };
    if a != re || !const_float_is(f, k1f, 1.0) { return None; }
    let Insn::Move { dst, src } = at(5)? else { return None };
    if dst != ra || src != rg { return None; }
    // pc+6..10: x2 = 2.0 * x[2i+1] - 1.0
    let Insn::Const { dst: rb, k } = at(6)? else { return None };
    if !const_float_is(f, k, 2.0) { return None; }
    let Insn::IndexOff { dst, arr, idx, off: 1 } = at(7)? else { return None };
    if dst != rg || arr != x || idx != rc { return None; }
    let Insn::ArithFF { op: ArithOp::Mul, dst: rh, a, b } = at(8)? else { return None };
    if a != rb || b != rg { return None; }
    let Insn::ArithK { op: ArithOp::Sub, dst: rj, a, k } = at(9)? else { return None };
    if a != rh || !const_float_is(f, k, 1.0) { return None; }
    let Insn::Move { dst, src } = at(10)? else { return None };
    if dst != rb || src != rj { return None; }
    // pc+11..14: tt = x1*x1 + x2*x2
    let Insn::ArithFF { op: ArithOp::Mul, dst, a, b } = at(11)? else { return None };
    if dst != rc || a != ra || b != ra { return None; }
    let Insn::ArithFF { op: ArithOp::Mul, dst, a, b } = at(12)? else { return None };
    if dst != rd || a != rj || b != rj { return None; }
    let Insn::ArithFF { op: ArithOp::Add, dst, a, b } = at(13)? else { return None };
    if dst != re || a != rc || b != rd { return None; }
    let Insn::Move { dst, src } = at(14)? else { return None };
    if dst != rc || src != re { return None; }
    // pc+15..16: if !(tt <= 1.0) skip the transform
    let Insn::Const { dst, k } = at(15)? else { return None };
    if dst != rd || !const_float_is(f, k, 1.0) { return None; }
    let Insn::CmpJumpFalseFF { op: CmpOp::Le, a, b, to } = at(16)? else { return None };
    if a != re || b != rd || to as usize != pc + 31 { return None; }
    // pc+17..21: t2 = sqrt(-2.0 * ln(tt) / tt)
    let Insn::Const { dst: rf, k } = at(17)? else { return None };
    if !const_float_is(f, k, -2.0) { return None; }
    let Insn::Builtin { dst, op: BuiltinOp::Log, base, n: 1, .. } = at(18)? else { return None };
    if dst != rh || base != rc { return None; }
    let Insn::ArithFF { op: ArithOp::Mul, dst: ri, a, b } = at(19)? else { return None };
    if a != rf || b != rh { return None; }
    let Insn::ArithFF { op: ArithOp::Div, dst, a, b } = at(20)? else { return None };
    if dst != rd || a != ri || b != rc { return None; }
    let Insn::Builtin { dst, op: BuiltinOp::Sqrt, base, n: 1, .. } = at(21)? else { return None };
    if dst != rj || base != rd { return None; }
    // pc+22..23: t3 = x1 * t2; t4 = x2 * t2
    let Insn::ArithFF { op: ArithOp::Mul, dst, a, b } = at(22)? else { return None };
    if dst != re || a != ra || b != rj { return None; }
    let Insn::ArithFF { op: ArithOp::Mul, dst, a, b } = at(23)? else { return None };
    if dst != rf || a != rb || b != rj { return None; }
    // pc+24..27: l = floatToInt(max(|t3|, |t4|))
    let Insn::Builtin { dst, op: BuiltinOp::Abs, base, n: 1, .. } = at(24)? else { return None };
    if dst != rh || base != re { return None; }
    let Insn::Builtin { dst, op: BuiltinOp::Abs, base, n: 1, .. } = at(25)? else { return None };
    if dst != ri || base != rf { return None; }
    let Insn::Builtin { dst: rg2, op: BuiltinOp::Max, base, n: 2, .. } = at(26)? else { return None };
    if rg2 != rg || base != rh || ri != rh + 1 { return None; }
    let Insn::Builtin { dst: rl, op: BuiltinOp::FloatToInt, base, n: 1, .. } = at(27)? else { return None };
    if base != rg { return None; }
    // pc+28: q[l] += 1.0
    let Insn::IncElemK { op: ArithOp::Add, arr: q, idx, k } = at(28)? else { return None };
    if idx != rl || !const_float_is(f, k, 1.0) { return None; }
    // pc+29..30: sx += t3; sy += t4
    let Insn::ArithFF { op: ArithOp::Add, dst: sx, a, b } = at(29)? else { return None };
    if a != sx || b != re { return None; }
    let Insn::ArithFF { op: ArithOp::Add, dst: sy, a, b } = at(30)? else { return None };
    if a != sy || b != rf { return None; }
    // pc+31: i += 1; while (i < nk)
    let Insn::IncCmpJump { var, step: 1, limit: nk, op: CmpOp::Lt, to } = at(31)? else { return None };
    if var != i || to as usize != pc { return None; }
    let writes = [i, sx, sy, ra, rb, rc, rd, re, rf, rg, rh, ri, rj, rl];
    if !disciplined(&writes, &[nk, x, q]) {
        return None;
    }
    Some((
        KernelKind::EpPairs {
            i, nk, x, q, sx, sy, ra, rb, rc, rd, re, rf, rg, rh, ri, rj, rl,
        },
        (pc + 32) as u32,
    ))
}

// ---------------------------------------------------------------------------
// Runtime
// ---------------------------------------------------------------------------

/// Run one kernel against the current frame. `true` = the loop
/// completed and all defined registers were written back (jump to
/// `desc.exit`); `false` = deopt (replay `desc.orig` interpreted).
///
/// `pc` is the `BulkLoop` instruction's own address, for telemetry.
/// When tracing is active the dispatcher records a `BulkLoop` span
/// (native iterations derived from the induction register's
/// before/after delta) and, on a bail, a `KernelBail` event carrying
/// the machine-readable reason; the disabled-tracing cost is one
/// relaxed atomic load.
pub(crate) fn run(desc: &KernelDesc, pc: u32, regs: &mut [Value], consts: &[Value]) -> bool {
    if !zomp::trace::active() {
        return run_inner(desc, regs, consts).is_ok();
    }
    let t0 = zomp::trace::kernel_begin_ts();
    let ind = desc.kind.induction() as usize;
    let before = match regs[ind] {
        Value::Int(v) => v,
        _ => 0,
    };
    let r = run_inner(desc, regs, consts);
    let after = match regs[ind] {
        Value::Int(v) => v,
        _ => before,
    };
    let iters = after.wrapping_sub(before).max(0) as u64;
    zomp::trace::kernel_end(kernel_span_label(desc), pc, iters, r.err(), t0);
    r.is_ok()
}

/// Span label: the pragma `unit:line` label when known, else the
/// kernel shape name so unlabelled spans still identify the loop.
fn kernel_span_label(desc: &KernelDesc) -> &'static str {
    if desc.label.is_empty() {
        desc.kind.name()
    } else {
        desc.label
    }
}

/// Machine-readable bail reasons (also the `KernelBail` event labels).
/// `type`: a bound register or constant did not hold the matched
/// Int/Float/array shape. `bounds`: an index left its array. `div`:
/// division by zero or `i64::MIN / -1`. `overflow`: induction
/// arithmetic overflowed.
type Bail = &'static str;
const BAIL_TYPE: Bail = "type";
const BAIL_BOUNDS: Bail = "bounds";
const BAIL_DIV: Bail = "div";
const BAIL_OVERFLOW: Bail = "overflow";

/// An array a kernel is about to write through raw [`ArrF::cells`] /
/// [`ArrI::cells`] storage, held open for a seqlock write fence so
/// concurrent [`ArrI::range_hint`] scans can't cache a range the
/// kernel's stores invalidate.
enum FencedArr {
    F(Arc<ArrF>, bool),
    I(Arc<ArrI>, bool),
}

impl FencedArr {
    fn begin_f(a: Option<Arc<ArrF>>) -> Option<FencedArr> {
        a.map(|a| {
            let b = a.write_fence_begin();
            FencedArr::F(a, b)
        })
    }
    fn begin_i(a: Option<Arc<ArrI>>) -> Option<FencedArr> {
        a.map(|a| {
            let b = a.write_fence_begin();
            FencedArr::I(a, b)
        })
    }
    fn end(self) {
        match self {
            FencedArr::F(a, b) => a.write_fence_end(b),
            FencedArr::I(a, b) => a.write_fence_end(b),
        }
    }
}

/// Open write fences on every array the kernel stores into (resolved
/// best-effort: an unresolvable register means the kernel is about to
/// bail on its own type precheck without writing anything).
fn begin_fences(kind: &KernelKind, regs: &[Value]) -> [Option<FencedArr>; 2] {
    match *kind {
        KernelKind::MatvecRows { qcell, .. } => [FencedArr::begin_f(cell_arrf(regs, qcell)), None],
        KernelKind::MatvecGather { .. } => [None, None],
        KernelKind::Histogram { local, .. } => [FencedArr::begin_i(reg_arri(regs, local)), None],
        KernelKind::FillConst { arr, .. } => [
            FencedArr::begin_i(cell_arri(regs, arr))
                .or_else(|| FencedArr::begin_f(cell_arrf(regs, arr))),
            None,
        ],
        KernelKind::PrefixSum { arr, .. } => [
            FencedArr::begin_i(cell_arri(regs, arr))
                .or_else(|| FencedArr::begin_f(cell_arrf(regs, arr))),
            None,
        ],
        KernelKind::RankInc { rkcell, .. } => [FencedArr::begin_i(cell_arri(regs, rkcell)), None],
        KernelKind::RankPipeline { rcell, .. } => {
            [FencedArr::begin_i(cell_arri(regs, rcell)), None]
        }
        KernelKind::Scatter { bcell, cur, .. } => [
            FencedArr::begin_i(cell_arri(regs, bcell)),
            FencedArr::begin_i(reg_arri(regs, cur)),
        ],
        KernelKind::LcgFill { arr, .. } => [FencedArr::begin_f(reg_arrf(regs, arr)), None],
        KernelKind::EpPairs { q, .. } => [FencedArr::begin_f(reg_arrf(regs, q)), None],
    }
}

fn run_inner(desc: &KernelDesc, regs: &mut [Value], consts: &[Value]) -> Result<(), Bail> {
    let fences = begin_fences(&desc.kind, regs);
    let r = match desc.kind {
        KernelKind::MatvecRows { .. } => run_matvec_rows(&desc.kind, regs, consts),
        KernelKind::MatvecGather { .. } => run_matvec(&desc.kind, regs),
        KernelKind::Histogram { .. } => run_histogram(&desc.kind, regs, consts),
        KernelKind::FillConst { .. } => run_fill(&desc.kind, regs, consts),
        KernelKind::PrefixSum { .. } => run_prefix(&desc.kind, regs),
        KernelKind::RankInc { .. } => run_rank_inc(&desc.kind, regs, consts),
        KernelKind::RankPipeline { .. } => run_rank_pipeline(&desc.kind, regs, consts),
        KernelKind::Scatter { .. } => run_scatter(&desc.kind, regs, consts),
        KernelKind::LcgFill { .. } => run_lcg_fill(&desc.kind, regs, consts),
        KernelKind::EpPairs { .. } => run_ep_pairs(&desc.kind, regs),
    };
    for f in fences.into_iter().flatten() {
        f.end();
    }
    r
}

fn cell_arrf(regs: &[Value], r: Reg) -> Option<Arc<ArrF>> {
    match &regs[r as usize] {
        Value::Ptr(slot) => match &*slot.lock() {
            Value::ArrF(a) => Some(a.clone()),
            _ => None,
        },
        _ => None,
    }
}

fn cell_arri(regs: &[Value], r: Reg) -> Option<Arc<ArrI>> {
    match &regs[r as usize] {
        Value::Ptr(slot) => match &*slot.lock() {
            Value::ArrI(a) => Some(a.clone()),
            _ => None,
        },
        _ => None,
    }
}

fn reg_arri(regs: &[Value], r: Reg) -> Option<Arc<ArrI>> {
    match &regs[r as usize] {
        Value::ArrI(a) => Some(a.clone()),
        _ => None,
    }
}

fn reg_int(regs: &[Value], r: Reg) -> Option<i64> {
    match regs[r as usize] {
        Value::Int(v) => Some(v),
        _ => None,
    }
}

fn reg_float(regs: &[Value], r: Reg) -> Option<f64> {
    match regs[r as usize] {
        Value::Float(v) => Some(v),
        _ => None,
    }
}

/// `i64::MIN / -1` overflows (a panic in the interpreter's checked
/// division as well); treat it as a deopt so the interpreter owns it.
fn div_ok(x: i64, y: i64) -> bool {
    y != 0 && !(y == -1 && x == i64::MIN)
}

fn run_matvec_rows(kind: &KernelKind, regs: &mut [Value], consts: &[Value]) -> Result<(), Bail> {
    let KernelKind::MatvecRows {
        rowcell,
        j,
        k,
        bound,
        acc,
        xcell,
        acell,
        icell,
        qcell,
        ub,
        sk,
    } = *kind
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(rows), Some(xv), Some(av), Some(ic), Some(qv)) = (
        cell_arri(regs, rowcell),
        cell_arrf(regs, xcell),
        cell_arrf(regs, acell),
        cell_arri(regs, icell),
        cell_arrf(regs, qcell),
    ) else {
        return Err(BAIL_TYPE);
    };
    let (Some(mut jv), Some(ubv)) = (reg_int(regs, j), reg_int(regs, ub)) else {
        return Err(BAIL_TYPE);
    };
    let Some(Value::Float(seed)) = consts.get(sk as usize) else {
        return Err(BAIL_TYPE);
    };
    let seed = *seed;
    let rc = rows.cells();
    let xc = xv.cells();
    let ac = av.cells();
    let icc = ic.cells();
    let qc = qv.cells();
    let xn = xc.len() as i64;
    let an = ac.len() as i64;
    let icn = icc.len() as i64;
    let qn = qc.len() as i64;
    // Gather bounds check hoisted to kernel entry: when the cached
    // min/max of the index array proves every `colidx` element lands
    // inside `a`, the hot inner loop runs with no per-element check at
    // all. The hint is seqlock-validated against writes, and any array
    // this kernel doesn't prove stays on the checked paths below.
    let hoisted = ic.range_hint().is_some_and(|(lo, hi)| lo >= 0 && hi < an);
    // Final inner-loop state of the last *completed* row: on a mid-row
    // bail the interpreter replays the failing row from the head, so the
    // registers must look exactly as they did when that row started.
    let mut last: Option<(i64, i64, f64)> = None;
    let bail = |regs: &mut [Value], jv: i64, last: Option<(i64, i64, f64)>, why: Bail| {
        regs[j as usize] = Value::Int(jv);
        if let Some((kv, bv, s)) = last {
            regs[k as usize] = Value::Int(kv);
            regs[bound as usize] = Value::Int(bv);
            regs[acc as usize] = Value::Float(s);
        }
        Err(why)
    };
    // do-while: any jump to the head runs at least one row.
    loop {
        let Some(jo) = jv.checked_add(1) else {
            return bail(regs, jv, last, BAIL_OVERFLOW);
        };
        if jv < 0 || jo as usize >= rc.len() {
            return bail(regs, jv, last, BAIL_BOUNDS);
        }
        // SAFETY: jv and jo bounds-checked just above; OpenMP
        // no-data-race contract for the elements themselves.
        let mut kv = unsafe { *rc.get_unchecked(jv as usize).get() };
        let bv = unsafe { *rc.get_unchecked(jo as usize).get() };
        let mut s = seed;
        if hoisted && kv >= 0 && bv <= xn && bv <= icn {
            // Hottest path: k-range proven at row entry, gathered
            // indexes proven at kernel entry — zero checks per element.
            while kv < bv {
                // SAFETY: 0 <= kv < bv <= len for both arrays, and the
                // range hint proved 0 <= colidx[*] < an.
                let xe = unsafe { *xc.get_unchecked(kv as usize).get() };
                let ie = unsafe { *icc.get_unchecked(kv as usize).get() };
                let ae = unsafe { *ac.get_unchecked(ie as usize).get() };
                // Mul then add, matching the interpreter's FmaGather
                // exactly (no fused multiply-add: rounding must agree).
                s += xe * ae;
                kv = kv.wrapping_add(1);
            }
        } else if kv >= 0 && bv <= xn && bv <= icn {
            // Hot path: the k-range is provably in bounds, only the
            // gathered index needs a per-element check.
            while kv < bv {
                // SAFETY: 0 <= kv < bv <= len for both arrays.
                let xe = unsafe { *xc.get_unchecked(kv as usize).get() };
                let ie = unsafe { *icc.get_unchecked(kv as usize).get() };
                if ie < 0 || ie >= an {
                    return bail(regs, jv, last, BAIL_BOUNDS);
                }
                // SAFETY: ie bounds-checked just above.
                let ae = unsafe { *ac.get_unchecked(ie as usize).get() };
                s += xe * ae;
                kv = kv.wrapping_add(1);
            }
        } else {
            while kv < bv {
                if kv < 0 || kv >= xn || kv >= icn {
                    return bail(regs, jv, last, BAIL_BOUNDS);
                }
                // SAFETY: kv bounds-checked just above.
                let xe = unsafe { *xc.get_unchecked(kv as usize).get() };
                let ie = unsafe { *icc.get_unchecked(kv as usize).get() };
                if ie < 0 || ie >= an {
                    return bail(regs, jv, last, BAIL_BOUNDS);
                }
                // SAFETY: ie bounds-checked just above.
                let ae = unsafe { *ac.get_unchecked(ie as usize).get() };
                s += xe * ae;
                kv = kv.wrapping_add(1);
            }
        }
        if jv >= qn {
            // `q[j] = s` would be out of bounds (jv >= 0 held above).
            return bail(regs, jv, last, BAIL_BOUNDS);
        }
        // SAFETY: jv bounds-checked against qn just above.
        unsafe { *qc.get_unchecked(jv as usize).get() = s };
        last = Some((kv, bv, s));
        jv = jv.wrapping_add(1);
        if jv >= ubv {
            regs[j as usize] = Value::Int(jv);
            regs[k as usize] = Value::Int(kv);
            regs[bound as usize] = Value::Int(bv);
            regs[acc as usize] = Value::Float(s);
            return Ok(());
        }
    }
}

fn run_matvec(kind: &KernelKind, regs: &mut [Value]) -> Result<(), Bail> {
    let KernelKind::MatvecGather {
        rowcell,
        j,
        k,
        bound,
        acc,
        xcell,
        acell,
        icell,
    } = *kind
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(rows), Some(xv), Some(av), Some(ic)) = (
        cell_arri(regs, rowcell),
        cell_arrf(regs, xcell),
        cell_arrf(regs, acell),
        cell_arri(regs, icell),
    ) else {
        return Err(BAIL_TYPE);
    };
    let (Some(jv), Some(mut kv), Some(mut s)) =
        (reg_int(regs, j), reg_int(regs, k), reg_float(regs, acc))
    else {
        return Err(BAIL_TYPE);
    };
    let rc = rows.cells();
    let Some(jo) = jv.checked_add(1) else {
        return Err(BAIL_OVERFLOW);
    };
    if jv < 0 || jo as usize >= rc.len() {
        // The head load itself would be out of bounds (or the row
        // array is checked and rejects it) — replay with no effects.
        return Err(BAIL_BOUNDS);
    }
    // SAFETY: jo bounds-checked just above; OpenMP no-data-race
    // contract for the element itself.
    let lt = unsafe { *rc.get_unchecked(jo as usize).get() };
    let xc = xv.cells();
    let ac = av.cells();
    let icc = ic.cells();
    let xn = xc.len() as i64;
    let an = ac.len() as i64;
    let icn = icc.len() as i64;
    let writeback = |regs: &mut [Value], kv: i64, s: f64| {
        regs[k as usize] = Value::Int(kv);
        regs[acc as usize] = Value::Float(s);
        regs[bound as usize] = Value::Int(lt);
    };
    // Same hoisted gather proof as `run_matvec_rows`.
    let hoisted = ic.range_hint().is_some_and(|(lo, hi)| lo >= 0 && hi < an);
    if hoisted && kv >= 0 && lt <= xn && lt <= icn {
        while kv < lt {
            // SAFETY: 0 <= kv < lt <= len for both arrays, and the
            // range hint proved 0 <= colidx[*] < an.
            let xe = unsafe { *xc.get_unchecked(kv as usize).get() };
            let ie = unsafe { *icc.get_unchecked(kv as usize).get() };
            let ae = unsafe { *ac.get_unchecked(ie as usize).get() };
            // Mul then add, matching the interpreter's FmaGather
            // exactly (no fused multiply-add: rounding must agree).
            s += xe * ae;
            kv = kv.wrapping_add(1);
        }
    } else if kv >= 0 && lt <= xn && lt <= icn {
        // Hot path: the k-range is provably in bounds, only the
        // gathered index needs a per-element check.
        while kv < lt {
            // SAFETY: 0 <= kv < lt <= len for both arrays.
            let xe = unsafe { *xc.get_unchecked(kv as usize).get() };
            let ie = unsafe { *icc.get_unchecked(kv as usize).get() };
            if ie < 0 || ie >= an {
                writeback(regs, kv, s);
                return Err(BAIL_BOUNDS);
            }
            // SAFETY: ie bounds-checked just above.
            let ae = unsafe { *ac.get_unchecked(ie as usize).get() };
            s += xe * ae;
            kv = kv.wrapping_add(1);
        }
    } else {
        while kv < lt {
            if kv < 0 || kv >= xn || kv >= icn {
                writeback(regs, kv, s);
                return Err(BAIL_BOUNDS);
            }
            // SAFETY: kv bounds-checked just above.
            let xe = unsafe { *xc.get_unchecked(kv as usize).get() };
            let ie = unsafe { *icc.get_unchecked(kv as usize).get() };
            if ie < 0 || ie >= an {
                writeback(regs, kv, s);
                return Err(BAIL_BOUNDS);
            }
            // SAFETY: ie bounds-checked just above.
            let ae = unsafe { *ac.get_unchecked(ie as usize).get() };
            // Mul then add, matching the interpreter's FmaGather
            // exactly (no fused multiply-add: rounding must agree).
            s += xe * ae;
            kv = kv.wrapping_add(1);
        }
    }
    writeback(regs, kv, s);
    Ok(())
}

fn run_histogram(kind: &KernelKind, regs: &mut [Value], consts: &[Value]) -> Result<(), Bail> {
    let KernelKind::Histogram {
        keys,
        i,
        t,
        b,
        sd,
        local,
        ub,
        k,
    } = *kind
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(ka), Some(la)) = (cell_arri(regs, keys), reg_arri(regs, local)) else {
        return Err(BAIL_TYPE);
    };
    let (Some(mut iv), Some(sdv), Some(ubv)) =
        (reg_int(regs, i), reg_int(regs, sd), reg_int(regs, ub))
    else {
        return Err(BAIL_TYPE);
    };
    let Some(Value::Int(c)) = consts.get(k as usize) else {
        return Err(BAIL_TYPE);
    };
    let c = *c;
    let kc = ka.cells();
    let lc = la.cells();
    let kn = kc.len() as i64;
    let ln = lc.len() as i64;
    // Key-range bounds check hoisted to kernel entry, mirroring the CG
    // gather hoist: the cached min/max of the key array proves every
    // bucket index `key / sd` lands inside `local` (division by a
    // positive divisor is monotone, so the quotient range is
    // `[lo/sd, hi/sd]`), and the whole induction range is validated
    // up front — the hot loop then runs with zero per-element checks.
    // A power-of-two divisor further strength-reduces the division to
    // a shift, exact because the hint proves the keys nonnegative
    // (truncating and flooring division agree there).
    let end = if ubv > iv { ubv } else { iv.wrapping_add(1) };
    if iv >= 0
        && iv < end
        && end <= kn
        && sdv > 0
        && ka
            .range_hint()
            .is_some_and(|(lo, hi)| lo >= 0 && hi / sdv < ln)
    {
        let (mut tv, mut bv) = (0i64, 0i64);
        // A fresh local count buffer breaks the `UnsafeCell` aliasing
        // chain: without it LLVM must assume every count increment may
        // clobber the key array and re-load it each iteration. Copied
        // in and flushed out around the loop, so it pays off when the
        // buffer is small next to the claim; an aliased key/count pair
        // must observe its own stores, which only the direct loops
        // below reproduce.
        if ln <= end - iv && ln <= (1 << 16) && !Arc::ptr_eq(&ka, &la) {
            let mut buf: Vec<i64> = (0..ln as usize)
                .map(|j| unsafe { *lc.get_unchecked(j).get() })
                .collect();
            if sdv & (sdv - 1) == 0 {
                let s = sdv.trailing_zeros();
                for idx in iv..end {
                    // SAFETY: idx < end <= kn; the range hint proved
                    // 0 <= key >> s < ln. OpenMP no-data-race contract
                    // for the elements themselves.
                    tv = unsafe { *kc.get_unchecked(idx as usize).get() };
                    bv = tv >> s;
                    // SAFETY: bucket index proven by the hint.
                    unsafe {
                        let p = buf.get_unchecked_mut(bv as usize);
                        *p = p.wrapping_add(c);
                    }
                }
            } else {
                for idx in iv..end {
                    // SAFETY: as above, with the exact division.
                    tv = unsafe { *kc.get_unchecked(idx as usize).get() };
                    bv = tv / sdv;
                    // SAFETY: bucket index proven by the hint.
                    unsafe {
                        let p = buf.get_unchecked_mut(bv as usize);
                        *p = p.wrapping_add(c);
                    }
                }
            }
            for (j, v) in buf.iter().enumerate() {
                // SAFETY: j < ln by construction.
                unsafe { *lc.get_unchecked(j).get() = *v };
            }
        } else if sdv & (sdv - 1) == 0 {
            let s = sdv.trailing_zeros();
            for idx in iv..end {
                // SAFETY: idx < end <= kn; the range hint proved
                // 0 <= key >> s < ln. OpenMP no-data-race contract for
                // the elements themselves.
                tv = unsafe { *kc.get_unchecked(idx as usize).get() };
                bv = tv >> s;
                unsafe {
                    let p = lc.get_unchecked(bv as usize).get();
                    *p = (*p).wrapping_add(c);
                }
            }
        } else {
            for idx in iv..end {
                // SAFETY: as above, with the exact division.
                tv = unsafe { *kc.get_unchecked(idx as usize).get() };
                bv = tv / sdv;
                unsafe {
                    let p = lc.get_unchecked(bv as usize).get();
                    *p = (*p).wrapping_add(c);
                }
            }
        }
        regs[i as usize] = Value::Int(end);
        regs[t as usize] = Value::Int(tv);
        regs[b as usize] = Value::Int(bv);
        return Ok(());
    }
    // do-while: the body always runs at least once.
    loop {
        if iv < 0 || iv >= kn {
            regs[i as usize] = Value::Int(iv);
            return Err(BAIL_BOUNDS);
        }
        // SAFETY: iv bounds-checked just above.
        let tv = unsafe { *kc.get_unchecked(iv as usize).get() };
        if !div_ok(tv, sdv) {
            regs[i as usize] = Value::Int(iv);
            return Err(BAIL_DIV);
        }
        let bv = tv / sdv;
        if bv < 0 || bv >= ln {
            regs[i as usize] = Value::Int(iv);
            return Err(BAIL_BOUNDS);
        }
        // SAFETY: bv bounds-checked just above.
        unsafe {
            let p = lc.get_unchecked(bv as usize).get();
            *p = (*p).wrapping_add(c);
        }
        iv = iv.wrapping_add(1);
        if iv >= ubv {
            regs[i as usize] = Value::Int(iv);
            regs[t as usize] = Value::Int(tv);
            regs[b as usize] = Value::Int(bv);
            return Ok(());
        }
    }
}

/// Shared fill body: do-while stores of `v` at `i0..max(i0+1, lim)`.
/// `true` = completed with final induction value in `*iv_out`;
/// `false` = some store would be out of bounds (deopt; `*iv_out`
/// holds the failing index for write-back).
fn fill_elems<T: Copy>(
    cells: &[std::cell::UnsafeCell<T>],
    iv_out: &mut i64,
    lim: i64,
    v: T,
) -> bool {
    let n = cells.len() as i64;
    let i0 = *iv_out;
    // do-while: the final induction value is max(i0 + 1, lim).
    let end = if lim > i0 { lim } else { i0.wrapping_add(1) };
    if i0 >= 0 && i0 < end && end <= n {
        // SAFETY: the whole store range was bounds-checked above;
        // this is the tight loop LLVM turns into a memset/vector fill.
        for idx in i0..end {
            unsafe { *cells.get_unchecked(idx as usize).get() = v };
        }
        *iv_out = end;
        return true;
    }
    // Degenerate ranges (overflowing induction, oversized limit):
    // replicate the do-while store by store until the bounds break.
    let mut iv = i0;
    loop {
        if iv < 0 || iv >= n {
            *iv_out = iv;
            return false;
        }
        // SAFETY: iv bounds-checked just above.
        unsafe { *cells.get_unchecked(iv as usize).get() = v };
        iv = iv.wrapping_add(1);
        if iv >= lim {
            *iv_out = iv;
            return true;
        }
    }
}

fn run_fill(kind: &KernelKind, regs: &mut [Value], consts: &[Value]) -> Result<(), Bail> {
    let KernelKind::FillConst { arr, i, c, lim, k } = *kind else {
        return Err(BAIL_TYPE);
    };
    let (Some(mut iv), Some(limv)) = (reg_int(regs, i), reg_int(regs, lim)) else {
        return Err(BAIL_TYPE);
    };
    let done = match consts.get(k as usize) {
        Some(Value::Int(v)) => {
            let Some(a) = cell_arri(regs, arr) else {
                return Err(BAIL_TYPE);
            };
            let done = fill_elems(a.cells(), &mut iv, limv, *v);
            if done {
                regs[c as usize] = Value::Int(*v);
            }
            done
        }
        Some(Value::Float(v)) => {
            let Some(a) = cell_arrf(regs, arr) else {
                return Err(BAIL_TYPE);
            };
            let done = fill_elems(a.cells(), &mut iv, limv, *v);
            if done {
                regs[c as usize] = Value::Float(*v);
            }
            done
        }
        _ => return Err(BAIL_TYPE),
    };
    regs[i as usize] = Value::Int(iv);
    if done {
        Ok(())
    } else {
        Err(BAIL_BOUNDS)
    }
}

fn run_prefix(kind: &KernelKind, regs: &mut [Value]) -> Result<(), Bail> {
    let KernelKind::PrefixSum {
        arr,
        i,
        t,
        acc,
        lim,
    } = *kind
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(mut iv), Some(limv)) = (reg_int(regs, i), reg_int(regs, lim)) else {
        return Err(BAIL_TYPE);
    };
    if let Some(a) = cell_arri(regs, arr) {
        let Some(mut accv) = reg_int(regs, acc) else {
            return Err(BAIL_TYPE);
        };
        let cells = a.cells();
        let n = cells.len() as i64;
        let mut tv;
        loop {
            if iv < 0 || iv >= n {
                regs[i as usize] = Value::Int(iv);
                regs[acc as usize] = Value::Int(accv);
                return Err(BAIL_BOUNDS);
            }
            // SAFETY: iv bounds-checked just above.
            unsafe {
                let p = cells.get_unchecked(iv as usize).get();
                tv = *p;
                accv = accv.wrapping_add(tv);
                *p = accv;
            }
            iv = iv.wrapping_add(1);
            if iv >= limv {
                regs[i as usize] = Value::Int(iv);
                regs[acc as usize] = Value::Int(accv);
                regs[t as usize] = Value::Int(tv);
                return Ok(());
            }
        }
    }
    if let Some(a) = cell_arrf(regs, arr) {
        let Some(mut accv) = reg_float(regs, acc) else {
            return Err(BAIL_TYPE);
        };
        let cells = a.cells();
        let n = cells.len() as i64;
        let mut tv;
        loop {
            if iv < 0 || iv >= n {
                regs[i as usize] = Value::Int(iv);
                regs[acc as usize] = Value::Float(accv);
                return Err(BAIL_BOUNDS);
            }
            // SAFETY: iv bounds-checked just above.
            unsafe {
                let p = cells.get_unchecked(iv as usize).get();
                tv = *p;
                accv += tv;
                *p = accv;
            }
            iv = iv.wrapping_add(1);
            if iv >= limv {
                regs[i as usize] = Value::Int(iv);
                regs[acc as usize] = Value::Float(accv);
                regs[t as usize] = Value::Float(tv);
                return Ok(());
            }
        }
    }
    Err(BAIL_TYPE)
}

fn run_rank_inc(kind: &KernelKind, regs: &mut [Value], consts: &[Value]) -> Result<(), Bail> {
    let KernelKind::RankInc {
        rkcell,
        bcell,
        q,
        ra,
        v,
        x,
        y,
        rb,
        v2,
        lim,
        k,
    } = *kind
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(rk), Some(ba)) = (cell_arri(regs, rkcell), cell_arri(regs, bcell)) else {
        return Err(BAIL_TYPE);
    };
    let (Some(mut qv), Some(limv)) = (reg_int(regs, q), reg_int(regs, lim)) else {
        return Err(BAIL_TYPE);
    };
    let Some(Value::Int(c)) = consts.get(k as usize) else {
        return Err(BAIL_TYPE);
    };
    let c = *c;
    let bc = ba.cells();
    let rc = rk.cells();
    let bn = bc.len() as i64;
    let rn = rc.len() as i64;
    // Hoisted path: the scattered-key range hint proves every gathered
    // index lands inside `rk`, and the induction range is validated up
    // front — zero per-element checks in the increment loop.
    let end = if limv > qv { limv } else { qv.wrapping_add(1) };
    if qv >= 0
        && qv < end
        && end <= bn
        && ba.range_hint().is_some_and(|(lo, hi)| lo >= 0 && hi < rn)
    {
        let (mut vv, mut xv, mut yv) = (0i64, 0i64, 0i64);
        for idx in qv..end {
            // SAFETY: idx < end <= bn; the range hint proved
            // 0 <= b[idx] < rn. OpenMP no-data-race contract for the
            // elements themselves.
            unsafe {
                vv = *bc.get_unchecked(idx as usize).get();
                let p = rc.get_unchecked(vv as usize).get();
                xv = *p;
                yv = xv.wrapping_add(c);
                *p = yv;
            }
        }
        regs[q as usize] = Value::Int(end);
        regs[ra as usize] = Value::ArrI(rk.clone());
        regs[rb as usize] = Value::ArrI(rk.clone());
        regs[v as usize] = Value::Int(vv);
        regs[v2 as usize] = Value::Int(vv);
        regs[x as usize] = Value::Int(xv);
        regs[y as usize] = Value::Int(yv);
        return Ok(());
    }
    loop {
        if qv < 0 || qv >= bn {
            regs[q as usize] = Value::Int(qv);
            return Err(BAIL_BOUNDS);
        }
        // SAFETY: qv bounds-checked just above.
        let vv = unsafe { *bc.get_unchecked(qv as usize).get() };
        if vv < 0 || vv >= rn {
            regs[q as usize] = Value::Int(qv);
            return Err(BAIL_BOUNDS);
        }
        // SAFETY: vv bounds-checked just above. The second b[q] load
        // of the interpreted body reads the same element before any
        // store this iteration, so reusing `vv` is exact even if the
        // arrays alias.
        let (xv, yv) = unsafe {
            let p = rc.get_unchecked(vv as usize).get();
            let xv = *p;
            let yv = xv.wrapping_add(c);
            *p = yv;
            (xv, yv)
        };
        qv = qv.wrapping_add(1);
        if qv >= limv {
            regs[q as usize] = Value::Int(qv);
            regs[ra as usize] = Value::ArrI(rk.clone());
            regs[rb as usize] = Value::ArrI(rk.clone());
            regs[v as usize] = Value::Int(vv);
            regs[v2 as usize] = Value::Int(vv);
            regs[x as usize] = Value::Int(xv);
            regs[y as usize] = Value::Int(yv);
            return Ok(());
        }
    }
}

/// The fused IS phase-4 pipeline. Every fallible condition of a bucket
/// — the `starts[b4]`/`starts[b4+1]` loads, the fill/prefix key range,
/// the rank-inc scan range, and (when the `buff2` range hint can't
/// prove it) the gathered indexes themselves — is validated *before*
/// the bucket's first store, so a bail always replays the whole bucket
/// interpreted against untouched memory and produces the identical
/// error. Scalar registers are written back eagerly per bucket in
/// program order, which resolves the register aliasing in the matched
/// stream for free.
fn run_rank_pipeline(kind: &KernelKind, regs: &mut [Value], consts: &[Value]) -> Result<(), Bail> {
    let KernelKind::RankPipeline {
        scell,
        rcell,
        bcell,
        b4,
        sd,
        ub,
        keylo,
        th,
        kh0,
        keyhi,
        st0,
        st,
        en0,
        en,
        kf,
        fc,
        p,
        ra,
        v,
        x,
        y,
        rb,
        v2,
        acc,
        k2,
        t3,
        kone,
        kfill,
        kinc,
    } = *kind
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(sa), Some(rk), Some(bu)) = (
        cell_arri(regs, scell),
        cell_arri(regs, rcell),
        cell_arri(regs, bcell),
    ) else {
        return Err(BAIL_TYPE);
    };
    // Aliased arrays would break the kernel's proofs: `buff2 == ranks`
    // lets the unchecked rank-inc loop invalidate its own entry check,
    // and `starts == ranks` would let one bucket's (deferred) count
    // writes feed the next bucket's start loads. Leave those programs
    // to the interpreter (IS never aliases them).
    if Arc::ptr_eq(&bu, &rk) || Arc::ptr_eq(&sa, &rk) {
        return Err(BAIL_TYPE);
    }
    let (Some(mut b4v), Some(sdv), Some(ubv)) =
        (reg_int(regs, b4), reg_int(regs, sd), reg_int(regs, ub))
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(onev), Some(fcv), Some(cv)) = (
        const_int_v(consts, kone),
        const_int_v(consts, kfill),
        const_int_v(consts, kinc),
    ) else {
        return Err(BAIL_TYPE);
    };
    let sc = sa.cells();
    let rc = rk.cells();
    let bc = bu.cells();
    let sn = sc.len() as i64;
    let rn = rc.len() as i64;
    let bn = bc.len() as i64;
    let bail = |regs: &mut [Value], b4v: i64, why: Bail| {
        regs[b4 as usize] = Value::Int(b4v);
        Err(why)
    };
    // Per-bucket count buffer, reused across the claim. Holding the
    // bucket's counts in a fresh local allocation (instead of storing
    // through `ranks`' `UnsafeCell`s) buys three things: the fill
    // becomes one `resize` memset, the gather increments stop forcing
    // `buff2` re-loads (LLVM knows the buffer aliases nothing), and
    // the prefix pass fuses with the write-back — the only stores the
    // bucket makes to shared memory are its final rank values, which
    // the interpreter's fill+inc+prefix sequence would also leave.
    let mut buf: Vec<i64> = Vec::new();
    // do-while over the claimed buckets.
    loop {
        // --- per-bucket precheck: no stores before this point.
        // Integer arithmetic wraps like the interpreter's.
        let keylov = b4v.wrapping_mul(sdv);
        let thv = b4v.wrapping_add(onev);
        let keyhiv = thv.wrapping_mul(sdv);
        let b4o = b4v.wrapping_add(1);
        if b4v < 0 || b4v >= sn || b4o < 0 || b4o >= sn {
            return bail(regs, b4v, BAIL_BOUNDS);
        }
        // SAFETY: b4v and b4o bounds-checked just above; OpenMP
        // no-data-race contract for the elements themselves.
        let stv = unsafe { *sc.get_unchecked(b4v as usize).get() };
        let env = unsafe { *sc.get_unchecked(b4o as usize).get() };
        let fill_runs = keylov < keyhiv;
        if fill_runs && (keylov < 0 || keyhiv > rn) {
            return bail(regs, b4v, BAIL_BOUNDS);
        }
        let ri_runs = stv < env;
        if ri_runs && (stv < 0 || env > bn) {
            return bail(regs, b4v, BAIL_BOUNDS);
        }
        // Scalar writebacks follow bytecode program order (pc+0..pc+8).
        // A later bail in this bucket is still exact: the replay
        // recomputes every one of these deterministically from `b4`
        // and memory the kernel has not touched.
        regs[keylo as usize] = Value::Int(keylov);
        regs[th as usize] = Value::Int(thv);
        regs[kh0 as usize] = Value::Int(keyhiv);
        regs[keyhi as usize] = Value::Int(keyhiv);
        regs[st0 as usize] = Value::Int(stv);
        regs[st as usize] = Value::Int(stv);
        regs[en0 as usize] = Value::Int(env);
        regs[en as usize] = Value::Int(env);
        regs[kf as usize] = Value::Int(keylov);
        if fill_runs && keyhiv.wrapping_sub(keylov) <= (1 << 22) {
            let span = (keyhiv - keylov) as usize;
            // --- fill, deferred: the bucket's counts start at the
            // fill constant in the local buffer. Nothing is written
            // to `ranks` until the prefix pass below.
            buf.clear();
            buf.resize(span, fcv);
            regs[fc as usize] = Value::Int(fcv);
            regs[kf as usize] = Value::Int(keyhiv);
            // --- rank-inc into the buffer.
            regs[p as usize] = Value::Int(stv);
            if ri_runs {
                let (mut lastv, mut lastx, mut lasty) = (0i64, 0i64, 0i64);
                for pp in stv..env {
                    // SAFETY: pp range-checked at bucket entry.
                    let vv = unsafe { *bc.get_unchecked(pp as usize).get() };
                    if vv < keylov || vv >= keyhiv {
                        // A key outside its own bucket's range: the
                        // interpreter may accept it (anywhere in
                        // `ranks`), but it breaks the buffered-counts
                        // plan. This bucket has not written a single
                        // shared byte yet, so deopting at the bucket
                        // head replays it exactly.
                        return bail(regs, b4v, BAIL_BOUNDS);
                    }
                    lastv = vv;
                    // SAFETY: vv within [keylov, keyhiv) just checked.
                    let slot = unsafe { buf.get_unchecked_mut((vv - keylov) as usize) };
                    lastx = *slot;
                    lasty = lastx.wrapping_add(cv);
                    *slot = lasty;
                }
                regs[ra as usize] = Value::ArrI(rk.clone());
                regs[v as usize] = Value::Int(lastv);
                regs[x as usize] = Value::Int(lastx);
                regs[y as usize] = Value::Int(lasty);
                regs[rb as usize] = Value::ArrI(rk.clone());
                regs[v2 as usize] = Value::Int(lastv);
                regs[p as usize] = Value::Int(env);
            }
            // --- prefix fused with the write-back: the bucket's only
            // shared stores, identical to what fill+inc+prefix leave.
            regs[acc as usize] = Value::Int(stv);
            regs[k2 as usize] = Value::Int(keylov);
            let mut accv = stv;
            let mut t3v = 0i64;
            for (o, c) in buf.iter().enumerate() {
                t3v = *c;
                accv = accv.wrapping_add(t3v);
                // SAFETY: keylov + o < keyhiv <= rn, checked at entry.
                unsafe { *rc.get_unchecked(keylov as usize + o).get() = accv };
            }
            regs[t3 as usize] = Value::Int(t3v);
            regs[acc as usize] = Value::Int(accv);
            regs[k2 as usize] = Value::Int(keyhiv);
        } else {
            // Degenerate bucket (empty/overflowing key range, or one
            // too large to buffer): run the three phases directly
            // against shared memory, with a read-only pre-scan
            // guarding the unchecked gather.
            if ri_runs {
                for pp in stv..env {
                    // SAFETY: stv/env range-checked above.
                    let vv = unsafe { *bc.get_unchecked(pp as usize).get() };
                    if vv < 0 || vv >= rn {
                        return bail(regs, b4v, BAIL_BOUNDS);
                    }
                }
            }
            // --- fill: reset the bucket's count range.
            if fill_runs {
                // SAFETY: 0 <= keylov < keyhiv <= rn checked above; the
                // tight loop LLVM turns into a memset.
                for idx in keylov..keyhiv {
                    unsafe { *rc.get_unchecked(idx as usize).get() = fcv };
                }
                regs[fc as usize] = Value::Int(fcv);
                regs[kf as usize] = Value::Int(keyhiv);
            }
            // --- rank-inc: count this bucket's keys.
            regs[p as usize] = Value::Int(stv);
            if ri_runs {
                let (mut lastv, mut lastx, mut lasty) = (0i64, 0i64, 0i64);
                for pp in stv..env {
                    // SAFETY: pp range-checked at bucket entry; the
                    // gather index proven by the pre-scan (no-race
                    // contract for the values in between).
                    unsafe {
                        lastv = *bc.get_unchecked(pp as usize).get();
                        let ptr = rc.get_unchecked(lastv as usize).get();
                        lastx = *ptr;
                        lasty = lastx.wrapping_add(cv);
                        *ptr = lasty;
                    }
                }
                regs[ra as usize] = Value::ArrI(rk.clone());
                regs[v as usize] = Value::Int(lastv);
                regs[x as usize] = Value::Int(lastx);
                regs[y as usize] = Value::Int(lasty);
                regs[rb as usize] = Value::ArrI(rk.clone());
                regs[v2 as usize] = Value::Int(lastv);
                regs[p as usize] = Value::Int(env);
            }
            // --- prefix: counts become ranks, seeded by the start.
            regs[acc as usize] = Value::Int(stv);
            regs[k2 as usize] = Value::Int(keylov);
            if fill_runs {
                let mut accv = stv;
                let mut t3v = 0i64;
                for idx in keylov..keyhiv {
                    // SAFETY: same range as the fill above.
                    unsafe {
                        let ptr = rc.get_unchecked(idx as usize).get();
                        t3v = *ptr;
                        accv = accv.wrapping_add(t3v);
                        *ptr = accv;
                    }
                }
                regs[t3 as usize] = Value::Int(t3v);
                regs[acc as usize] = Value::Int(accv);
                regs[k2 as usize] = Value::Int(keyhiv);
            }
        }
        b4v = b4v.wrapping_add(1);
        if b4v >= ubv {
            regs[b4 as usize] = Value::Int(b4v);
            return Ok(());
        }
    }
}

fn const_int_v(consts: &[Value], k: u16) -> Option<i64> {
    match consts.get(k as usize)? {
        Value::Int(v) => Some(*v),
        _ => None,
    }
}

fn run_scatter(kind: &KernelKind, regs: &mut [Value], consts: &[Value]) -> Result<(), Bail> {
    let KernelKind::Scatter {
        keys,
        i,
        t,
        t2,
        sd,
        bcell,
        b2,
        cur,
        c,
        lim,
        k,
    } = *kind
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(ka), Some(ba), Some(ca)) = (
        cell_arri(regs, keys),
        cell_arri(regs, bcell),
        reg_arri(regs, cur),
    ) else {
        return Err(BAIL_TYPE);
    };
    let (Some(mut iv), Some(sdv), Some(limv)) =
        (reg_int(regs, i), reg_int(regs, sd), reg_int(regs, lim))
    else {
        return Err(BAIL_TYPE);
    };
    let Some(Value::Int(inc)) = consts.get(k as usize) else {
        return Err(BAIL_TYPE);
    };
    let inc = *inc;
    let kc = ka.cells();
    let bc = ba.cells();
    let cc = ca.cells();
    let kn = kc.len() as i64;
    let bn = bc.len() as i64;
    let cn = cc.len() as i64;
    // Same hoist as `run_histogram`: the key-range hint proves every
    // cursor index `key / sd` lands inside `cur`, the induction range
    // is validated up front, and a power-of-two divisor becomes a
    // shift. Only the data-dependent cursor *value* still needs its
    // per-element check (the kernel itself advances it).
    let end = if limv > iv { limv } else { iv.wrapping_add(1) };
    if iv >= 0
        && iv < end
        && end <= kn
        && sdv > 0
        && ka
            .range_hint()
            .is_some_and(|(lo, hi)| lo >= 0 && hi / sdv < cn)
    {
        let shift = (sdv & (sdv - 1) == 0).then(|| sdv.trailing_zeros());
        let (mut tv, mut dv, mut cv) = (0i64, 0i64, 0i64);
        // Same trick as `run_histogram`: a fresh local cursor buffer
        // lets LLVM keep the cursor loads out of the way of the
        // scattered stores (through `UnsafeCell` it must otherwise
        // assume every `buff2` store clobbers a cursor). Legal only
        // when the cursor array genuinely is a distinct allocation —
        // an aliased cursor must see the key loads and scatter stores
        // punch through, which only the direct loop reproduces.
        if cn <= end - iv && cn <= (1 << 16) && !Arc::ptr_eq(&ba, &ca) && !Arc::ptr_eq(&ka, &ca) {
            let mut buf: Vec<i64> = (0..cn as usize)
                .map(|j| unsafe { *cc.get_unchecked(j).get() })
                .collect();
            let flush = |buf: &[i64]| {
                for (j, v) in buf.iter().enumerate() {
                    // SAFETY: j < cn by construction.
                    unsafe { *cc.get_unchecked(j).get() = *v };
                }
            };
            for idx in iv..end {
                // SAFETY: idx < end <= kn; the range hint proved
                // 0 <= key / sd < cn. OpenMP no-data-race contract for
                // the elements themselves.
                tv = unsafe { *kc.get_unchecked(idx as usize).get() };
                dv = match shift {
                    Some(s) => tv >> s,
                    None => tv / sdv,
                };
                // SAFETY: dv proven by the hint.
                cv = unsafe { *buf.get_unchecked(dv as usize) };
                if cv < 0 || cv >= bn {
                    // Flush the completed iterations' cursor state so
                    // the interpreted replay sees exactly the memory
                    // the element loop would have left, and errors on
                    // this same element.
                    flush(&buf);
                    regs[i as usize] = Value::Int(idx);
                    return Err(BAIL_BOUNDS);
                }
                // SAFETY: cv bounds-checked just above; dv as before.
                unsafe {
                    *bc.get_unchecked(cv as usize).get() = tv;
                    *buf.get_unchecked_mut(dv as usize) = cv.wrapping_add(inc);
                }
            }
            flush(&buf);
        } else {
            for idx in iv..end {
                // SAFETY: idx < end <= kn; the range hint proved
                // 0 <= key / sd < cn. OpenMP no-data-race contract for the
                // elements themselves.
                tv = unsafe { *kc.get_unchecked(idx as usize).get() };
                dv = match shift {
                    Some(s) => tv >> s,
                    None => tv / sdv,
                };
                // SAFETY: dv proven by the hint.
                cv = unsafe { *cc.get_unchecked(dv as usize).get() };
                if cv < 0 || cv >= bn {
                    regs[i as usize] = Value::Int(idx);
                    return Err(BAIL_BOUNDS);
                }
                // SAFETY: cv bounds-checked just above; dv as before. The
                // interpreter re-loads cur[dv] after the store, reproduced
                // by incrementing through the pointer after `bc` is written
                // (exact under aliasing).
                unsafe {
                    *bc.get_unchecked(cv as usize).get() = tv;
                    let p = cc.get_unchecked(dv as usize).get();
                    *p = (*p).wrapping_add(inc);
                }
            }
        }
        regs[i as usize] = Value::Int(end);
        regs[t as usize] = Value::Int(dv);
        regs[t2 as usize] = Value::Int(tv);
        regs[b2 as usize] = Value::ArrI(ba.clone());
        regs[c as usize] = Value::Int(cv);
        return Ok(());
    }
    loop {
        if iv < 0 || iv >= kn {
            regs[i as usize] = Value::Int(iv);
            return Err(BAIL_BOUNDS);
        }
        // SAFETY: iv bounds-checked just above.
        let tv = unsafe { *kc.get_unchecked(iv as usize).get() };
        if !div_ok(tv, sdv) {
            regs[i as usize] = Value::Int(iv);
            return Err(BAIL_DIV);
        }
        let dv = tv / sdv;
        if dv < 0 || dv >= cn {
            regs[i as usize] = Value::Int(iv);
            return Err(BAIL_BOUNDS);
        }
        // SAFETY: dv bounds-checked just above.
        let cv = unsafe { *cc.get_unchecked(dv as usize).get() };
        if cv < 0 || cv >= bn {
            regs[i as usize] = Value::Int(iv);
            return Err(BAIL_BOUNDS);
        }
        // SAFETY: cv bounds-checked just above.
        unsafe { *bc.get_unchecked(cv as usize).get() = tv };
        // Interpreter order: the cursor increment re-loads cur[dv]
        // after the store above (exact under aliasing).
        // SAFETY: dv bounds-checked above.
        unsafe {
            let p = cc.get_unchecked(dv as usize).get();
            *p = (*p).wrapping_add(inc);
        }
        iv = iv.wrapping_add(1);
        if iv >= limv {
            regs[i as usize] = Value::Int(iv);
            regs[t as usize] = Value::Int(dv);
            regs[t2 as usize] = Value::Int(tv);
            regs[b2 as usize] = Value::ArrI(ba.clone());
            regs[c as usize] = Value::Int(cv);
            return Ok(());
        }
    }
}

fn reg_arrf(regs: &[Value], r: Reg) -> Option<Arc<ArrF>> {
    match &regs[r as usize] {
        Value::ArrF(a) => Some(a.clone()),
        _ => None,
    }
}

/// The interpreter's `@intToFloat(@floatToInt(v))` pair: a saturating
/// (NaN-to-zero) `as i64` cast widened straight back. This is the NPB
/// truncation primitive the symbolic verifier proved the callee uses.
#[inline(always)]
fn npb_trunc(v: f64) -> f64 {
    (v as i64) as f64
}

/// One NPB 46-bit LCG step, dataflow-identical to the verified callee
/// (see [`lcg_canonical`]): every multiply and subtract below is a node
/// of that DAG, so the result and the updated seed match the
/// interpreted `randlc` call bit for bit. `a1`/`a2` only depend on the
/// loop-invariant multiplier; the caller hoists them out of the batch.
#[inline(always)]
fn lcg_step(x: &mut f64, a1: f64, a2: f64) -> f64 {
    const R23: f64 = 0.000_000_119_209_289_550_781_25;
    const T23: f64 = 8_388_608.0;
    const R46: f64 = R23 * R23;
    const T46: f64 = T23 * T23;
    let x1 = npb_trunc(R23 * *x);
    let x2 = *x - T23 * x1;
    let t1 = a1 * x2 + a2 * x1;
    let t2 = npb_trunc(R23 * t1);
    let z = t1 - T23 * t2;
    let t3 = T23 * z + a2 * x2;
    let t4 = npb_trunc(R46 * t3);
    *x = t3 - T46 * t4;
    R46 * *x
}

fn run_lcg_fill(kind: &KernelKind, regs: &mut [Value], consts: &[Value]) -> Result<(), Bail> {
    const R23: f64 = 0.000_000_119_209_289_550_781_25;
    const T23: f64 = 8_388_608.0;
    let KernelKind::LcgFill {
        tcell,
        targ,
        aarg,
        areg,
        res,
        arr,
        j,
        lim,
        nk,
        k,
    } = *kind
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(xv), Some(mut jv), Some(nkv), Some(av)) = (
        reg_arrf(regs, arr),
        reg_int(regs, j),
        reg_int(regs, nk),
        reg_float(regs, areg),
    ) else {
        return Err(BAIL_TYPE);
    };
    let Some(Value::Int(c)) = consts.get(k as usize) else {
        return Err(BAIL_TYPE);
    };
    // The head recomputes `lim = c * nk` every iteration with the
    // interpreter's wrapping semantics; it is constant across the batch.
    let limv = c.wrapping_mul(nkv);
    let Value::Ptr(slot) = &regs[tcell as usize] else {
        return Err(BAIL_TYPE);
    };
    let slot = slot.clone();
    let mut t = match *slot.lock() {
        Value::Float(v) => v,
        _ => return Err(BAIL_TYPE),
    };
    // Seed-invariant halves of the multiplier, hoisted: the callee
    // recomputes them per call from the same `a`, so the values are
    // identical every iteration.
    let a1 = npb_trunc(R23 * av);
    let a2 = av - T23 * a1;
    let xc = xv.cells();
    let xn = xc.len() as i64;
    let mut last: Option<f64> = None;
    while jv < limv {
        if jv < 0 || jv >= xn {
            // Bail *before* this iteration's call: the replay performs
            // the seed advance itself and then raises the store's
            // out-of-bounds error. Only the state the replayed
            // iteration reads is written back (`j` and the seed cell);
            // the arg window and `res` are rewritten by the replay
            // before anything reads them.
            regs[j as usize] = Value::Int(jv);
            regs[lim as usize] = Value::Int(limv);
            *slot.lock() = Value::Float(t);
            return Err(BAIL_BOUNDS);
        }
        let d = lcg_step(&mut t, a1, a2);
        // SAFETY: jv bounds-checked just above; OpenMP no-data-race
        // contract for the elements themselves.
        unsafe { *xc.get_unchecked(jv as usize).get() = d };
        last = Some(d);
        jv = jv.wrapping_add(1);
    }
    // Normal exit. Interpreter frame state after the final guard: the
    // call consumed the arg window (`Undefined`), the head re-ran
    // `kmul` (so `lim` holds the Int limit even when it aliases
    // `aarg`), and `res` holds the last deviate. Zero-trip entries
    // only executed the head and the guard.
    if last.is_some() {
        regs[targ as usize] = Value::Undefined;
        regs[aarg as usize] = Value::Undefined;
    }
    regs[lim as usize] = Value::Int(limv);
    regs[j as usize] = Value::Int(jv);
    if let Some(d) = last {
        regs[res as usize] = Value::Float(d);
    }
    *slot.lock() = Value::Float(t);
    Ok(())
}

/// Final-iteration temporary values for [`run_ep_pairs`] writeback.
/// `any` is refreshed every iteration (both paths); `acc` only by
/// iterations that pass the radius test, matching which registers the
/// accept-path instructions define.
#[derive(Clone, Copy)]
struct EpLast {
    x1: f64,
    x2: f64,
    tt: f64,
    rd: f64,
    re: f64,
    rg: f64,
    rh: f64,
    rj: f64,
}

fn run_ep_pairs(kind: &KernelKind, regs: &mut [Value]) -> Result<(), Bail> {
    let KernelKind::EpPairs {
        i,
        nk,
        x,
        q,
        sx,
        sy,
        ra,
        rb,
        rc,
        rd,
        re,
        rf,
        rg,
        rh,
        ri,
        rj,
        rl,
    } = *kind
    else {
        return Err(BAIL_TYPE);
    };
    let (Some(xv), Some(qv), Some(mut iv), Some(nkv), Some(mut sxv), Some(mut syv)) = (
        reg_arrf(regs, x),
        reg_arrf(regs, q),
        reg_int(regs, i),
        reg_int(regs, nk),
        reg_float(regs, sx),
        reg_float(regs, sy),
    ) else {
        return Err(BAIL_TYPE);
    };
    let xc = xv.cells();
    let qc = qv.cells();
    let xn = xc.len() as i64;
    let qn = qc.len() as i64;
    let bail = |regs: &mut [Value], iv: i64, sxv: f64, syv: f64, why: Bail| {
        // Pre-iteration state only: every bail fires before the failing
        // iteration's first side effect, and the replay recomputes the
        // (deterministic) dataflow up to the identical error point.
        regs[i as usize] = Value::Int(iv);
        regs[sx as usize] = Value::Float(sxv);
        regs[sy as usize] = Value::Float(syv);
        Err(why)
    };
    let mut any;
    let mut acc: Option<(f64, f64, i64)> = None;
    // do-while: the loop head is the body's first instruction, so every
    // dispatch runs at least one iteration (the guard sits before the
    // BulkLoop and after the back-edge).
    loop {
        let ti = 2i64.wrapping_mul(iv);
        let ti1 = ti.wrapping_add(1);
        if ti < 0 || ti >= xn || ti1 < 0 || ti1 >= xn {
            return bail(regs, iv, sxv, syv, BAIL_BOUNDS);
        }
        // SAFETY: ti and ti1 bounds-checked just above.
        let e0 = unsafe { *xc.get_unchecked(ti as usize).get() };
        let e1 = unsafe { *xc.get_unchecked(ti1 as usize).get() };
        let x1 = 2.0 * e0 - 1.0;
        let x2 = 2.0 * e1 - 1.0;
        let tt = x1 * x1 + x2 * x2;
        any = EpLast {
            x1,
            x2,
            tt,
            rd: 1.0,
            re: tt,
            rg: e1,
            rh: 2.0 * e1,
            rj: x2,
        };
        // NaN fails `<=` exactly like the interpreter's CmpJumpFalseFF.
        if tt <= 1.0 {
            let ratio = (-2.0 * tt.ln()) / tt;
            let t2 = ratio.sqrt();
            let t3 = x1 * t2;
            let t4 = x2 * t2;
            let a3 = t3.abs();
            let a4 = t4.abs();
            // f64::max, matching the interpreter's Max builtin.
            let lv = a3.max(a4) as i64;
            if lv < 0 || lv >= qn {
                return bail(regs, iv, sxv, syv, BAIL_BOUNDS);
            }
            // SAFETY: lv bounds-checked just above.
            unsafe {
                let p = qc.get_unchecked(lv as usize).get();
                *p += 1.0;
            }
            sxv += t3;
            syv += t4;
            any.rd = ratio;
            any.re = t3;
            any.rg = a3.max(a4);
            any.rh = a3;
            any.rj = t2;
            acc = Some((t4, a4, lv));
        }
        iv = iv.wrapping_add(1);
        if iv >= nkv {
            break;
        }
    }
    // Normal exit: write back the accumulators and every temporary with
    // its exact final-iteration value. `rf`/`ri`/`rl` are only defined
    // by accept-path instructions, so they keep their pre-loop values
    // when every iteration of this run was rejected.
    regs[i as usize] = Value::Int(iv);
    regs[sx as usize] = Value::Float(sxv);
    regs[sy as usize] = Value::Float(syv);
    regs[ra as usize] = Value::Float(any.x1);
    regs[rb as usize] = Value::Float(any.x2);
    regs[rc as usize] = Value::Float(any.tt);
    regs[rd as usize] = Value::Float(any.rd);
    regs[re as usize] = Value::Float(any.re);
    regs[rg as usize] = Value::Float(any.rg);
    regs[rh as usize] = Value::Float(any.rh);
    regs[rj as usize] = Value::Float(any.rj);
    if let Some((t4, a4, lv)) = acc {
        regs[rf as usize] = Value::Float(t4);
        regs[ri as usize] = Value::Float(a4);
        regs[rl as usize] = Value::Int(lv);
    }
    Ok(())
}
