//! Scaling-curve containers for the figure/table harness.

use serde::Serialize;

use crate::exec::simulate;
use crate::lang::LangProfile;
use crate::machine::Machine;
use npb::model::KernelModel;

/// One point of a strong-scaling experiment.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ScalingPoint {
    pub threads: usize,
    pub seconds: f64,
    /// Speedup relative to the curve's 1-thread point.
    pub speedup: f64,
}

/// One language's strong-scaling curve (a series of Fig. 3/4/5, a column of
/// Tables I–III).
#[derive(Debug, Clone, Serialize)]
pub struct ScalingCurve {
    pub label: String,
    pub points: Vec<ScalingPoint>,
}

impl ScalingCurve {
    /// Run `model` at each thread count and build the curve. Speedups are
    /// computed against the curve's own 1-thread time, which is prepended if
    /// absent (the paper's Figures 3–5 normalise per language).
    pub fn run(
        label: impl Into<String>,
        model: &KernelModel,
        machine: &Machine,
        prof: &LangProfile,
        threads: &[usize],
    ) -> ScalingCurve {
        let t1 = simulate(model, machine, prof, 1).seconds;
        let points = threads
            .iter()
            .map(|&t| {
                let seconds = if t == 1 {
                    t1
                } else {
                    simulate(model, machine, prof, t).seconds
                };
                ScalingPoint {
                    threads: t,
                    seconds,
                    speedup: t1 / seconds,
                }
            })
            .collect();
        ScalingCurve {
            label: label.into(),
            points,
        }
    }

    /// Time at a given thread count, if present.
    pub fn at(&self, threads: usize) -> Option<ScalingPoint> {
        self.points.iter().copied().find(|p| p.threads == threads)
    }
}

/// The thread counts of the paper's tables.
pub const PAPER_THREADS: [usize; 7] = [1, 2, 16, 32, 64, 96, 128];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{profile, Kernel, Lang};
    use npb::class::EpParams;
    use npb::model::ep_model;
    use npb::Class;

    #[test]
    fn curve_has_unit_speedup_at_one_thread() {
        let m = Machine::archer2();
        let model = ep_model(&EpParams::for_class(Class::A));
        let c = ScalingCurve::run(
            "EP/Zig",
            &model,
            &m,
            &profile(Lang::Zig, Kernel::Ep),
            &PAPER_THREADS,
        );
        let p1 = c.at(1).unwrap();
        assert!((p1.speedup - 1.0).abs() < 1e-12);
        assert_eq!(c.points.len(), PAPER_THREADS.len());
        // Speedups increase monotonically for EP.
        for w in c.points.windows(2) {
            assert!(w[1].speedup >= w[0].speedup);
        }
    }

    #[test]
    fn curves_serialise_to_json() {
        let m = Machine::archer2();
        let model = ep_model(&EpParams::for_class(Class::S));
        let c = ScalingCurve::run(
            "EP/Zig",
            &model,
            &m,
            &profile(Lang::Zig, Kernel::Ep),
            &[1, 2],
        );
        let j = serde_json::to_string(&c).unwrap();
        assert!(j.contains("\"threads\":2"));
    }
}
