//! Per-loop time breakdowns: *where* a modelled runtime goes.
//!
//! [`simulate_breakdown`] runs the same virtual-time execution as
//! [`crate::exec::simulate`] but attributes the master clock's time to the
//! individual loops/steps of the kernel model, and classifies each loop as
//! compute- or memory-bound at that thread count. This is the explanatory
//! companion to the tables: e.g. for CG class C it shows the SpMV loop
//! owning >90 % of the time and flipping from memory- to compute-bound
//! exactly where the cache-fit jump happens.

use std::collections::HashMap;

use npb::model::{KernelModel, LoopModel, Step, TimedStep};
use zomp::schedule::{static_block, ScheduleKind, StaticChunked};

use crate::lang::LangProfile;
use crate::machine::Machine;

/// What bounds a loop at a given thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    Compute,
    Memory,
}

/// Aggregated contribution of one named loop (or pseudo-step).
#[derive(Debug, Clone)]
pub struct LoopShare {
    pub name: &'static str,
    /// Seconds on the master's clock attributed to this step.
    pub seconds: f64,
    /// Invocations across all repeats.
    pub count: u64,
    /// Binding constraint at this thread count (last observed).
    pub bound: Bound,
}

/// The breakdown: total plus per-step shares, sorted by time descending.
#[derive(Debug, Clone)]
pub struct Breakdown {
    pub total_seconds: f64,
    pub serial_seconds: f64,
    pub sync_seconds: f64,
    pub loops: Vec<LoopShare>,
}

impl Breakdown {
    /// Render as a flat table.
    pub fn render(&self) -> String {
        let mut s = format!(
            "total {:.3}s  (serial {:.4}s, sync {:.4}s)\n{:<24} {:>10} {:>8} {:>9} {:>8}\n",
            self.total_seconds,
            self.serial_seconds,
            self.sync_seconds,
            "loop",
            "seconds",
            "share",
            "calls",
            "bound",
        );
        for l in &self.loops {
            s.push_str(&format!(
                "{:<24} {:>10.4} {:>7.1}% {:>9} {:>8}\n",
                l.name,
                l.seconds,
                100.0 * l.seconds / self.total_seconds,
                l.count,
                match l.bound {
                    Bound::Compute => "compute",
                    Bound::Memory => "memory",
                }
            ));
        }
        s
    }
}

struct Acc {
    per_loop: HashMap<&'static str, LoopShare>,
    serial: f64,
    sync: f64,
}

/// Time of the *slowest thread* for one loop, plus its binding constraint —
/// the same arithmetic as the executor, reduced to the critical path.
fn loop_time(l: &LoopModel, machine: &Machine, prof: &LangProfile, t: usize) -> (f64, Bound) {
    let bw = machine.per_thread_bw(t, l.working_set_bytes, l.access, l.reused) * prof.mem_eff;
    let frate = machine.flops_per_core * prof.compute_eff;
    let sched = match l.sched.kind {
        ScheduleKind::Runtime => zomp::schedule::Schedule::static_default(),
        _ => l.sched,
    };
    let mut worst = 0.0f64;
    let mut bound = Bound::Compute;
    for tid in 0..t {
        let (iters, chunks) = match sched.kind {
            ScheduleKind::Static => match sched.chunk {
                None => {
                    let r = static_block(tid, t, l.trip);
                    (r.end - r.start, 1u64)
                }
                Some(c) => {
                    let mut iters = 0;
                    let mut chunks = 0;
                    for r in StaticChunked::new(tid, t, l.trip, c) {
                        iters += r.end - r.start;
                        chunks += 1;
                    }
                    (iters, chunks)
                }
            },
            _ => {
                let base = l.trip / t as u64;
                let extra = u64::from((tid as u64) < l.trip % t as u64);
                let chunk = sched.chunk.unwrap_or(1).max(1) as u64;
                (base + extra, (base + extra).div_ceil(chunk))
            }
        };
        let n = iters as f64;
        let tc = n * l.flops_per_iter / frate;
        let tm = n * l.bytes_per_iter / bw;
        let mut dt = tc.max(tm);
        if matches!(sched.kind, ScheduleKind::Dynamic | ScheduleKind::Guided) {
            dt += chunks as f64 * machine.dispatch_chunk_s;
        }
        if dt > worst {
            worst = dt;
            bound = if tm > tc {
                Bound::Memory
            } else {
                Bound::Compute
            };
        }
    }
    if l.reduction {
        worst += machine.atomic_op_s * t as f64;
    }
    (worst, bound)
}

fn walk_steps(steps: &[Step], machine: &Machine, prof: &LangProfile, t: usize, acc: &mut Acc) {
    for s in steps {
        match s {
            Step::Loop(l) => {
                let (dt, bound) = loop_time(l, machine, prof, t);
                let entry = acc.per_loop.entry(l.name).or_insert(LoopShare {
                    name: l.name,
                    seconds: 0.0,
                    count: 0,
                    bound,
                });
                entry.seconds += dt;
                entry.count += 1;
                entry.bound = bound;
                if !l.nowait {
                    acc.sync += machine.barrier_cost(t);
                }
            }
            Step::Barrier => acc.sync += machine.barrier_cost(t),
            Step::PerThread { flops } => {
                acc.serial += flops / (machine.flops_per_core * prof.compute_eff);
            }
            Step::Repeat { times, body } => {
                for _ in 0..*times {
                    walk_steps(body, machine, prof, t, acc);
                }
            }
        }
    }
}

fn walk_timed(steps: &[TimedStep], machine: &Machine, prof: &LangProfile, t: usize, acc: &mut Acc) {
    for s in steps {
        match s {
            TimedStep::Serial { flops, bytes } => {
                let frate = machine.flops_per_core * prof.compute_eff;
                let bw = machine.per_thread_bw(1, 0.0, npb::model::Access::Streaming, false)
                    * prof.mem_eff;
                acc.serial += (flops / frate).max(bytes / bw);
            }
            TimedStep::Region(region) => {
                acc.sync += machine.fork_cost(t) + machine.barrier_cost(t);
                walk_steps(&region.steps, machine, prof, t, acc);
            }
            TimedStep::Repeat { times, body } => {
                for _ in 0..*times {
                    walk_timed(body, machine, prof, t, acc);
                }
            }
        }
    }
}

/// Break a modelled run down by loop.
///
/// This approximates the critical path as the sum of slowest-thread step
/// times (exact when every loop is followed by a barrier, which holds for
/// all three NPB models except CG's nowait pairs, where the discrepancy is
/// far below a percent).
pub fn simulate_breakdown(
    model: &KernelModel,
    machine: &Machine,
    prof: &LangProfile,
    threads: usize,
) -> Breakdown {
    let mut acc = Acc {
        per_loop: HashMap::new(),
        serial: 0.0,
        sync: 0.0,
    };
    walk_timed(&model.timed, machine, prof, threads, &mut acc);
    let mut loops: Vec<LoopShare> = acc.per_loop.into_values().collect();
    loops.sort_by(|a, b| b.seconds.total_cmp(&a.seconds));
    let total = loops.iter().map(|l| l.seconds).sum::<f64>() + acc.serial + acc.sync;
    Breakdown {
        total_seconds: total,
        serial_seconds: acc.serial,
        sync_seconds: acc.sync,
        loops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::simulate;
    use crate::lang::{profile, Kernel, Lang};
    use npb::class::CgParams;
    use npb::model::{cg_model, estimate_nnz};
    use npb::Class;

    fn cg() -> KernelModel {
        let p = CgParams::for_class(Class::C);
        cg_model(&p, estimate_nnz(&p))
    }

    #[test]
    fn breakdown_total_matches_simulation() {
        let m = Machine::archer2();
        let prof = profile(Lang::Zig, Kernel::Cg);
        let model = cg();
        for t in [1usize, 16, 128] {
            let bd = simulate_breakdown(&model, &m, &prof, t);
            let sim = simulate(&model, &m, &prof, t).seconds;
            let rel = ((bd.total_seconds - sim) / sim).abs();
            assert!(
                rel < 0.02,
                "breakdown {:.2}s vs sim {sim:.2}s at {t} threads",
                bd.total_seconds
            );
        }
    }

    #[test]
    fn spmv_dominates_cg() {
        let m = Machine::archer2();
        let prof = profile(Lang::Zig, Kernel::Cg);
        let bd = simulate_breakdown(&cg(), &m, &prof, 1);
        let top = &bd.loops[0];
        assert_eq!(top.name, "q = A p");
        assert!(top.seconds / bd.total_seconds > 0.75, "{}", bd.render());
    }

    #[test]
    fn spmv_flips_to_compute_bound_at_cache_fit() {
        let m = Machine::archer2();
        let prof = profile(Lang::Zig, Kernel::Cg);
        let at = |t| {
            simulate_breakdown(&cg(), &m, &prof, t)
                .loops
                .iter()
                .find(|l| l.name == "q = A p")
                .unwrap()
                .bound
        };
        // Mid-range: streaming the matrix from DRAM binds.
        assert_eq!(at(32), Bound::Memory);
        // Past the cache-fit point the arithmetic is the constraint.
        assert_eq!(at(128), Bound::Compute);
    }

    #[test]
    fn render_is_complete() {
        let m = Machine::archer2();
        let prof = profile(Lang::Zig, Kernel::Cg);
        let bd = simulate_breakdown(&cg(), &m, &prof, 64);
        let txt = bd.render();
        assert!(txt.contains("q = A p"));
        assert!(txt.contains("share"));
        assert!(txt.contains('%'));
    }
}
