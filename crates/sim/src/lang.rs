//! Per-language codegen profiles.
//!
//! The paper compares its Zig ports against the AOCC-compiled Fortran (CG,
//! EP) and C (IS) reference implementations. Which compiler emits the
//! tighter scalar loop is not something an analytic model can re-derive, so
//! the single-thread performance ratios are *calibrated from the paper's
//! own Table I–III serial rows* and recorded here as two multipliers per
//! (language, kernel) pair:
//!
//! * `compute_eff` — scalar instruction-throughput multiplier (relative to
//!   the Zig port = 1.0);
//! * `mem_eff` — achieved-bandwidth multiplier (array access code quality:
//!   bounds-check elision, aliasing knowledge, prefetch friendliness).
//!
//! Everything else about a scaling curve — partitioning, barriers, cache
//! fit, bandwidth saturation — *emerges* from the machine model; these two
//! numbers only set each language's serial baseline, exactly the quantity
//! the paper itself reports rather than explains.

use serde::Serialize;

/// Languages compared in the paper (plus Rust, this port, for the native
/// host benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Lang {
    /// The paper's Zig port (baseline, 1.0).
    Zig,
    /// AOCC Flang-compiled Fortran reference.
    Fortran,
    /// AOCC Clang-compiled C reference.
    C,
    /// This repository's Rust port (treated as Zig-equivalent: both are
    /// LLVM backends with bounds checks disabled in release mode).
    Rust,
}

impl Lang {
    pub fn name(&self) -> &'static str {
        match self {
            Lang::Zig => "Zig",
            Lang::Fortran => "Fortran",
            Lang::C => "C",
            Lang::Rust => "Rust",
        }
    }
}

/// The kernels, for per-kernel calibration lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Kernel {
    Cg,
    Ep,
    Is,
}

/// Codegen multipliers for one (language, kernel) pair.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LangProfile {
    pub lang: Lang,
    pub compute_eff: f64,
    pub mem_eff: f64,
}

/// Calibrated profile table.
///
/// Sources (single-thread class C rows):
/// * Table I (CG): Zig 149.40 s vs Fortran 170.17 s. CG's SpMV is serially
///   latency/instruction-bound → the gap is mostly `compute_eff`
///   149.40/170.17 ≈ 0.878, with a small bandwidth component.
/// * Table II (EP): Zig 147.66 s vs Fortran 185.26 s. EP is compute-bound →
///   `compute_eff` 147.66/185.26 ≈ 0.797.
/// * Table III (IS): Zig 11.87 s vs C 9.29 s. IS is serially dominated by
///   the dependent integer update chain → C `compute_eff`
///   11.87/9.29 ≈ 1.278 (C is *faster* than the Zig port here).
pub fn profile(lang: Lang, kernel: Kernel) -> LangProfile {
    let (compute_eff, mem_eff) = match (lang, kernel) {
        (Lang::Zig | Lang::Rust, _) => (1.0, 1.0),
        (Lang::Fortran, Kernel::Cg) => (0.878, 0.95),
        (Lang::Fortran, Kernel::Ep) => (0.797, 1.0),
        // The paper does not run Fortran IS (the reference is C); keep a
        // neutral profile for completeness.
        (Lang::Fortran, Kernel::Is) => (1.0, 1.0),
        (Lang::C, Kernel::Is) => (1.278, 1.0),
        // The paper does not run C CG/EP; neutral.
        (Lang::C, _) => (1.0, 1.0),
    };
    LangProfile {
        lang,
        compute_eff,
        mem_eff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zig_is_the_baseline() {
        for k in [Kernel::Cg, Kernel::Ep, Kernel::Is] {
            let p = profile(Lang::Zig, k);
            assert_eq!(p.compute_eff, 1.0);
            assert_eq!(p.mem_eff, 1.0);
        }
    }

    #[test]
    fn fortran_slower_on_cg_and_ep() {
        assert!(profile(Lang::Fortran, Kernel::Cg).mem_eff < 1.0);
        assert!(profile(Lang::Fortran, Kernel::Ep).compute_eff < 1.0);
    }

    #[test]
    fn c_faster_on_is() {
        assert!(profile(Lang::C, Kernel::Is).compute_eff > 1.0);
    }
}
