//! The virtual-time executor: replay a kernel model at any thread count.
//!
//! Each simulated thread carries a virtual clock. Worksharing loops advance
//! each clock by that thread's assigned work — computed with the *live*
//! partitioning code from [`zomp::schedule`], so the simulation distributes
//! iterations exactly as the real runtime would — and barriers synchronise
//! the clocks to the team maximum (plus the barrier cost), which is where
//! load imbalance turns into lost time. `nowait` loops skip the
//! synchronisation and let clocks drift, exactly like the real construct.

use npb::model::{KernelModel, LoopModel, Step, TimedStep};
use zomp::schedule::{static_block, ScheduleKind, StaticChunked};

use crate::lang::LangProfile;
use crate::machine::{DispatchImpl, Machine};

/// Result of one simulated run.
#[derive(Debug, Clone, Copy)]
pub struct SimResult {
    /// Wall-clock seconds of the timed section.
    pub seconds: f64,
    /// Seconds spent in synchronisation (fork + barriers), for ablations.
    pub sync_seconds: f64,
}

struct Ctx<'a> {
    machine: &'a Machine,
    prof: &'a LangProfile,
    threads: usize,
    dispatch: DispatchImpl,
    clocks: Vec<f64>,
    sync: f64,
}

impl Ctx<'_> {
    fn barrier(&mut self) {
        let cost = self.machine.barrier_cost(self.threads);
        let max = self.clocks.iter().cloned().fold(0.0f64, f64::max) + cost;
        // Synchronisation loss: time threads spend waiting plus the barrier
        // itself.
        let sum: f64 = self.clocks.iter().sum();
        self.sync += max * self.threads as f64 - sum;
        for c in &mut self.clocks {
            *c = max;
        }
    }

    fn flop_rate(&self) -> f64 {
        self.machine.flops_per_core * self.prof.compute_eff
    }

    fn do_loop(&mut self, l: &LoopModel) {
        let t = self.threads;
        let bw = self
            .machine
            .per_thread_bw(t, l.working_set_bytes, l.access, l.reused)
            * self.prof.mem_eff;
        let frate = self.flop_rate();

        // Assigned iterations (and dispatch overhead events) per thread,
        // using the real partitioning code.
        let sched = match l.sched.kind {
            // `runtime` defaults to static in the modelled configuration.
            ScheduleKind::Runtime => zomp::schedule::Schedule::static_default(),
            _ => l.sched,
        };
        for tid in 0..t {
            let (iters, chunks) = match sched.kind {
                ScheduleKind::Static => match sched.chunk {
                    None => {
                        let r = static_block(tid, t, l.trip);
                        (r.end - r.start, 1u64)
                    }
                    Some(c) => {
                        let mut iters = 0;
                        let mut chunks = 0;
                        for r in StaticChunked::new(tid, t, l.trip, c) {
                            iters += r.end - r.start;
                            chunks += 1;
                        }
                        (iters, chunks)
                    }
                },
                ScheduleKind::Dynamic | ScheduleKind::Guided => {
                    // Dynamic scheduling balances by construction; model a
                    // near-even split plus per-chunk dispatch overhead.
                    let base = l.trip / t as u64;
                    let extra = u64::from((tid as u64) < l.trip % t as u64);
                    let iters = base + extra;
                    let chunk = sched.chunk.unwrap_or(1).max(1) as u64;
                    (iters, iters.div_ceil(chunk.max(1)))
                }
                ScheduleKind::Runtime => unreachable!(),
            };
            let n = iters as f64;
            let t_compute = n * l.flops_per_iter / frate;
            let t_memory = n * l.bytes_per_iter / bw;
            let mut dt = t_compute.max(t_memory);
            if matches!(sched.kind, ScheduleKind::Dynamic | ScheduleKind::Guided) {
                dt += self.machine.dispatch_cost(self.dispatch, t, chunks);
            }
            if l.reduction {
                // Atomic combine: worst-case serialised across the team.
                dt += self.machine.atomic_op_s * t as f64;
            }
            self.clocks[tid] += dt;
        }

        if !l.nowait {
            self.barrier();
        }
    }

    fn run_steps(&mut self, steps: &[Step]) {
        for s in steps {
            match s {
                Step::Loop(l) => self.do_loop(l),
                Step::Barrier => self.barrier(),
                Step::PerThread { flops } => {
                    let dt = flops / self.flop_rate();
                    for c in &mut self.clocks {
                        *c += dt;
                    }
                }
                Step::Repeat { times, body } => {
                    for _ in 0..*times {
                        self.run_steps(body);
                    }
                }
            }
        }
    }
}

fn run_timed(
    steps: &[TimedStep],
    machine: &Machine,
    prof: &LangProfile,
    threads: usize,
    dispatch: DispatchImpl,
    sync_total: &mut f64,
) -> f64 {
    let mut total = 0.0;
    for step in steps {
        match step {
            TimedStep::Serial { flops, bytes } => {
                let frate = machine.flops_per_core * prof.compute_eff;
                let bw = machine.per_thread_bw(1, 0.0, npb::model::Access::Streaming, false)
                    * prof.mem_eff;
                total += (flops / frate).max(bytes / bw);
            }
            TimedStep::Region(region) => {
                let fork = machine.fork_cost(threads);
                let mut ctx = Ctx {
                    machine,
                    prof,
                    threads,
                    dispatch,
                    clocks: vec![0.0; threads],
                    sync: 0.0,
                };
                ctx.run_steps(&region.steps);
                // Join: implicit barrier at region end.
                ctx.barrier();
                let dur = ctx.clocks[0];
                total += fork + dur;
                *sync_total += fork + ctx.sync / threads as f64;
            }
            TimedStep::Repeat { times, body } => {
                for _ in 0..*times {
                    total += run_timed(body, machine, prof, threads, dispatch, sync_total);
                }
            }
        }
    }
    total
}

/// Simulate `model` on `machine` for `threads` threads compiled as `prof`,
/// with the dynamic-dispatch implementation chosen explicitly — use this to
/// compare the work-stealing decks against the shared-cursor baseline.
pub fn simulate_with(
    model: &KernelModel,
    machine: &Machine,
    prof: &LangProfile,
    threads: usize,
    dispatch: DispatchImpl,
) -> SimResult {
    assert!(threads >= 1 && threads <= machine.cores());
    let mut sync = 0.0;
    let seconds = run_timed(&model.timed, machine, prof, threads, dispatch, &mut sync);
    SimResult {
        seconds,
        sync_seconds: sync,
    }
}

/// Simulate `model` on `machine` for `threads` threads compiled as `prof`.
/// Models the shipped runtime: work-stealing dynamic dispatch.
pub fn simulate(
    model: &KernelModel,
    machine: &Machine,
    prof: &LangProfile,
    threads: usize,
) -> SimResult {
    simulate_with(model, machine, prof, threads, DispatchImpl::WorkStealing)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{profile, Kernel, Lang};
    use npb::class::{CgParams, EpParams, IsParams};
    use npb::model::{cg_model, ep_model, estimate_nnz, is_model};
    use npb::Class;

    fn zig(k: Kernel) -> LangProfile {
        profile(Lang::Zig, k)
    }

    fn cg_c() -> npb::model::KernelModel {
        let p = CgParams::for_class(Class::C);
        cg_model(&p, estimate_nnz(&p))
    }

    #[test]
    fn serial_cg_class_c_near_paper() {
        let m = Machine::archer2();
        let t = simulate(&cg_c(), &m, &zig(Kernel::Cg), 1).seconds;
        // Paper Table I: 149.40 s. Calibration target ±25 %.
        assert!((100.0..200.0).contains(&t), "CG serial {t} s");
    }

    #[test]
    fn serial_ep_class_c_near_paper() {
        let m = Machine::archer2();
        let model = ep_model(&EpParams::for_class(Class::C));
        let t = simulate(&model, &m, &zig(Kernel::Ep), 1).seconds;
        // Paper Table II: 147.66 s.
        assert!((110.0..190.0).contains(&t), "EP serial {t} s");
    }

    #[test]
    fn serial_is_class_c_near_paper() {
        let m = Machine::archer2();
        let model = is_model(&IsParams::for_class(Class::C));
        let t = simulate(&model, &m, &zig(Kernel::Is), 1).seconds;
        // Paper Table III: 11.87 s.
        assert!((6.0..20.0).contains(&t), "IS serial {t} s");
    }

    #[test]
    fn ep_scales_nearly_linearly() {
        let m = Machine::archer2();
        let model = ep_model(&EpParams::for_class(Class::C));
        let t1 = simulate(&model, &m, &zig(Kernel::Ep), 1).seconds;
        let t128 = simulate(&model, &m, &zig(Kernel::Ep), 128).seconds;
        let speedup = t1 / t128;
        assert!(speedup > 100.0, "EP speedup at 128 threads: {speedup}");
    }

    #[test]
    fn cg_shows_cache_fit_jump() {
        // The paper's Fig. 3 signature: speedup at 128 threads far exceeds
        // twice the speedup at 64 (25.6x -> 82.5x in Table I).
        let m = Machine::archer2();
        let model = cg_c();
        let p = zig(Kernel::Cg);
        let t1 = simulate(&model, &m, &p, 1).seconds;
        let t64 = simulate(&model, &m, &p, 64).seconds;
        let t128 = simulate(&model, &m, &p, 128).seconds;
        let s64 = t1 / t64;
        let s128 = t1 / t128;
        assert!(
            s128 > 2.2 * s64,
            "cache-fit jump missing: s64 = {s64:.1}, s128 = {s128:.1}"
        );
    }

    #[test]
    fn is_saturates_memory_bandwidth() {
        // Fig. 5 / Table III: IS scales well early then flattens.
        let m = Machine::archer2();
        let model = is_model(&IsParams::for_class(Class::C));
        let p = zig(Kernel::Is);
        let t1 = simulate(&model, &m, &p, 1).seconds;
        let t16 = simulate(&model, &m, &p, 16).seconds;
        let t128 = simulate(&model, &m, &p, 128).seconds;
        let s16 = t1 / t16;
        let s128 = t1 / t128;
        assert!(s16 > 8.0, "early scaling too weak: {s16}");
        assert!(
            s128 < 128.0 * 0.6,
            "IS must be far from linear at 128 threads: {s128}"
        );
        assert!(s128 > s16, "still some gain beyond 16 threads");
    }

    #[test]
    fn more_threads_never_catastrophically_slower() {
        let m = Machine::archer2();
        let model = cg_c();
        let p = zig(Kernel::Cg);
        let mut prev = f64::INFINITY;
        for t in [1usize, 2, 4, 8, 16, 32, 64, 96, 128] {
            let s = simulate(&model, &m, &p, t).seconds;
            assert!(s < prev * 1.05, "regression at {t} threads: {s} vs {prev}");
            prev = s;
        }
    }

    #[test]
    fn fortran_slower_serial_on_cg_and_ep() {
        let m = Machine::archer2();
        let cg = cg_c();
        let zc = simulate(&cg, &m, &zig(Kernel::Cg), 1).seconds;
        let fc = simulate(&cg, &m, &profile(Lang::Fortran, Kernel::Cg), 1).seconds;
        // Paper: Fortran/Zig = 1.139 on CG.
        let ratio = fc / zc;
        assert!(
            (1.05..1.30).contains(&ratio),
            "CG Fortran/Zig ratio {ratio}"
        );

        let ep = ep_model(&EpParams::for_class(Class::C));
        let ze = simulate(&ep, &m, &zig(Kernel::Ep), 1).seconds;
        let fe = simulate(&ep, &m, &profile(Lang::Fortran, Kernel::Ep), 1).seconds;
        let ratio = fe / ze;
        // Paper: 185.26/147.66 = 1.255.
        assert!(
            (1.15..1.35).contains(&ratio),
            "EP Fortran/Zig ratio {ratio}"
        );
    }

    #[test]
    fn work_stealing_dispatch_speeds_up_fine_grained_dynamic_loops() {
        // A fine-grained `schedule(dynamic)` loop (chunk 1, cheap body) is
        // exactly where the shared cursor serialises the team. The same
        // model must run faster under the work-stealing decks, and the gap
        // must widen with the team. Static-schedule kernels (all of the
        // paper's NPB models) are unaffected by construction: the dispatch
        // term only applies to dynamic/guided loops.
        use npb::model::{KernelModel, LoopModel, RegionModel, Step, TimedStep};
        let model = KernelModel {
            name: "dyn-micro".into(),
            timed: vec![TimedStep::Region(RegionModel {
                name: "dyn",
                steps: vec![Step::Loop(LoopModel {
                    name: "fine-dynamic",
                    trip: 100_000,
                    flops_per_iter: 10.0,
                    bytes_per_iter: 0.0,
                    access: npb::model::Access::Streaming,
                    working_set_bytes: 0.0,
                    sched: zomp::schedule::Schedule::dynamic(Some(1)),
                    nowait: false,
                    reduction: false,
                    reused: false,
                })],
                private_bytes_per_thread: 0.0,
            })],
        };
        let m = Machine::archer2();
        let p = zig(Kernel::Cg);
        for t in [4usize, 32] {
            let legacy = simulate_with(&model, &m, &p, t, DispatchImpl::SharedCursor).seconds;
            let steal = simulate_with(&model, &m, &p, t, DispatchImpl::WorkStealing).seconds;
            assert!(
                steal < legacy,
                "stealing not faster at {t} threads: {steal} vs {legacy}"
            );
        }
        let gap4 = simulate_with(&model, &m, &p, 4, DispatchImpl::SharedCursor).seconds
            / simulate_with(&model, &m, &p, 4, DispatchImpl::WorkStealing).seconds;
        let gap32 = simulate_with(&model, &m, &p, 32, DispatchImpl::SharedCursor).seconds
            / simulate_with(&model, &m, &p, 32, DispatchImpl::WorkStealing).seconds;
        assert!(gap32 > gap4, "gap must widen: {gap4} -> {gap32}");
    }

    #[test]
    fn c_faster_serial_on_is() {
        let m = Machine::archer2();
        let is = is_model(&IsParams::for_class(Class::C));
        let z = simulate(&is, &m, &zig(Kernel::Is), 1).seconds;
        let c = simulate(&is, &m, &profile(Lang::C, Kernel::Is), 1).seconds;
        // Paper: Zig/C = 11.87/9.29 = 1.278.
        let ratio = z / c;
        assert!((1.1..1.4).contains(&ratio), "IS Zig/C ratio {ratio}");
    }
}
