//! # archer-sim — analytic model of one ARCHER2 node
//!
//! The paper's evaluation (§IV) runs on a single Cray-EX ARCHER2 node:
//! two 64-core AMD EPYC 7742 processors (32 KB L1d + 512 KB L2 per core,
//! 16.4 MB L3 per 4-core CCX), strong-scaling NPB class C from 1 to 128
//! threads. This harness usually has far fewer cores, so those experiments
//! cannot be re-measured directly; this crate substitutes a calibrated
//! analytic machine model (see DESIGN.md for the substitution argument):
//!
//! * [`machine`] — the node: cores, cache capacities, per-core and
//!   per-socket bandwidth ceilings, synchronisation overheads;
//! * [`lang`] — per-language codegen profiles (Zig/Fortran/C/Rust),
//!   calibrated from the paper's single-thread runtimes;
//! * [`exec`] — a virtual-time executor that replays an
//!   [`npb::model::KernelModel`] at any thread count, reusing the *live*
//!   schedule partitioning code from [`zomp::schedule`];
//! * [`report`] — scaling-curve containers for the figure/table harness.
//!
//! What the model computes, per worksharing loop, is a roofline: each
//! thread's time is `max(compute, memory)` where memory bandwidth depends
//! on how much of the loop's working set is resident in that thread's L2 +
//! L3 share — which is what produces the paper's striking CG behaviour
//! (far-below-linear scaling while the matrix streams from DRAM, then a
//! jump at 96–128 threads once each thread's slice fits in cache, Fig. 3).

pub mod ablation;
pub mod breakdown;
pub mod exec;
pub mod lang;
pub mod machine;
pub mod report;

pub use exec::{simulate, simulate_with};
pub use lang::{Lang, LangProfile};
pub use machine::{DispatchImpl, Machine};
pub use report::{ScalingCurve, ScalingPoint};
