//! The node model: topology, cache capacities, bandwidth ceilings, and
//! synchronisation overheads.
//!
//! Topology and cache sizes come straight from §IV of the paper (2× AMD
//! EPYC 7742, 32 KB L1d + 512 KB L2 per core, 16.4 MB L3 per 4-core CCX).
//! Rates are *effective* single-thread numbers calibrated so the model's
//! serial class-C runtimes land on the paper's Table I–III Zig rows; the
//! calibration derivation is documented field by field. Threads are placed
//! **compactly** (fill socket 0's cores before socket 1), which is what the
//! paper's scaling curves imply: the CG cache-fit jump appears only at
//! 96–128 threads, where per-thread matrix slices start fitting in the
//! fixed 4.1 MB/core L3 share.

use npb::model::Access;

/// Which dynamic-dispatch implementation the simulated runtime uses. The
/// live runtime ships the work-stealing deck ([`zomp::schedule::StealDeck`]
/// semantics); the shared cursor is kept as the contention baseline so the
/// model can quantify what the refactor bought.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchImpl {
    /// Legacy shared cursor: every chunk grab is an atomic RMW on one
    /// global cache line, so all contending threads serialise on it.
    SharedCursor,
    /// Work-stealing per-thread decks: chunk grabs hit a thread-local
    /// padded word (uncontended), one atomic per [`zomp::schedule::STEAL_BATCH`]
    /// chunks; cross-thread traffic is a handful of steals near the tail.
    WorkStealing,
}

/// A shared-memory node for the analytic model.
#[derive(Debug, Clone)]
pub struct Machine {
    pub name: &'static str,
    pub sockets: usize,
    pub cores_per_socket: usize,
    pub cores_per_ccx: usize,
    /// L2 capacity per core (bytes).
    pub l2_bytes: f64,
    /// L3 capacity per CCX (bytes), shared by `cores_per_ccx` cores.
    pub l3_per_ccx_bytes: f64,
    /// Effective scalar double-precision compute rate per core (flop/s).
    pub flops_per_core: f64,
    /// Single-core DRAM streaming bandwidth (B/s).
    pub bw_core_stream: f64,
    /// Per-CCX memory bandwidth ceiling (B/s) — the Infinity-Fabric link
    /// each 4-core CCX shares towards DRAM, the binding constraint for
    /// bandwidth-hungry codes in the paper's 16-64 thread range.
    pub bw_ccx_cap: f64,
    /// Per-socket DRAM bandwidth ceiling (B/s).
    pub bw_socket: f64,
    /// Per-core bandwidth when data is L2/L3 resident (B/s).
    pub bw_cache: f64,
    /// Gather (indexed-read) bandwidth of a single thread with the caches
    /// to itself — deep prefetch and MLP (B/s).
    pub bw_gather_single: f64,
    /// Per-thread gather bandwidth once several threads contend for shared
    /// L3 and memory-level parallelism (B/s). Aggregate gather bandwidth is
    /// `max(single, contended × t)` up to the node ceiling — the empirical
    /// EPYC behaviour visible in Table I's 2–64-thread rows.
    pub bw_gather_contended: f64,
    /// Per-thread bandwidth for *cache-resident* gathered data (L3-local
    /// indexed reads) (B/s).
    pub bw_cache_gather: f64,
    /// Achieved-bandwidth multiplier for indexed writes (read-modify-write
    /// at cache-line granularity).
    pub scatter_factor: f64,
    /// Bandwidth multiplier for the fully-remote extreme of NUMA traffic;
    /// applied in proportion to the fraction of threads on the second
    /// socket (non-streaming accesses only).
    pub numa_remote_factor: f64,
    /// Fork cost: base + per-thread component (s).
    pub fork_base_s: f64,
    pub fork_per_thread_s: f64,
    /// Barrier cost: `base + log2(T) * log_term` (s).
    pub barrier_base_s: f64,
    pub barrier_log_s: f64,
    /// Cost of one dynamic-dispatch chunk grab (s).
    pub dispatch_chunk_s: f64,
    /// Cost of one contended atomic RMW (s).
    pub atomic_op_s: f64,
}

impl Machine {
    /// One ARCHER2 node.
    ///
    /// Calibration (all from the paper's single-thread class-C rows):
    /// * `flops_per_core`: EP does ≈76 flop/pair × 2³² pairs = 3.3e11 flop;
    ///   Zig runs it in 147.66 s → 2.2 Gflop/s effective scalar rate.
    /// * `bw_core_stream` + `gather_factor`: CG moves ≈18 GB per conj_grad
    ///   (26 SpMV sweeps of a 33.5 M-nonzero matrix + vector traffic) × 75
    ///   iterations ≈ 1.35 TB; Zig's 149.4 s → ≈9 GB/s effective gather
    ///   bandwidth = 11.5 GB/s stream × 0.8 gather.
    /// * `bw_socket`: 8-channel DDR4-3200 ≈ 190 GB/s per socket.
    /// * sync costs: libomp-typical microsecond-scale fork/barrier.
    pub fn archer2() -> Machine {
        Machine {
            name: "ARCHER2 node (2x AMD EPYC 7742)",
            sockets: 2,
            cores_per_socket: 64,
            cores_per_ccx: 4,
            l2_bytes: 512.0 * 1024.0,
            l3_per_ccx_bytes: 16.4e6,
            flops_per_core: 2.2e9,
            bw_core_stream: 11.5e9,
            bw_ccx_cap: 9.0e9,
            bw_socket: 190.0e9,
            bw_cache: 28.0e9,
            bw_gather_single: 9.2e9,
            bw_gather_contended: 2.2e9,
            bw_cache_gather: 8.0e9,
            scatter_factor: 0.30,
            numa_remote_factor: 0.50,
            fork_base_s: 2.0e-6,
            fork_per_thread_s: 0.10e-6,
            barrier_base_s: 0.8e-6,
            barrier_log_s: 0.5e-6,
            dispatch_chunk_s: 0.15e-6,
            atomic_op_s: 0.05e-6,
        }
    }

    /// A generic small shared-memory node (for users modelling their own
    /// hosts rather than ARCHER2): one socket of `cores` cores in 4-core
    /// clusters, laptop-class bandwidth numbers.
    pub fn generic(cores: usize) -> Machine {
        let cores = cores.max(1);
        Machine {
            name: "generic node",
            sockets: 1,
            cores_per_socket: cores,
            cores_per_ccx: 4.min(cores),
            l2_bytes: 512.0 * 1024.0,
            l3_per_ccx_bytes: 8.0e6,
            flops_per_core: 3.0e9,
            bw_core_stream: 15.0e9,
            bw_ccx_cap: 20.0e9,
            bw_socket: 60.0e9,
            bw_cache: 40.0e9,
            bw_gather_single: 12.0e9,
            bw_gather_contended: 4.0e9,
            bw_cache_gather: 12.0e9,
            scatter_factor: 0.35,
            numa_remote_factor: 1.0,
            fork_base_s: 2.0e-6,
            fork_per_thread_s: 0.10e-6,
            barrier_base_s: 0.8e-6,
            barrier_log_s: 0.5e-6,
            dispatch_chunk_s: 0.15e-6,
            atomic_op_s: 0.05e-6,
        }
    }

    /// Total cores.
    pub fn cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Sockets engaged by `t` threads. Placement fills socket 0's 64 cores
    /// before touching socket 1 (what the paper's curves imply — see the
    /// module docs).
    pub fn engaged_sockets(&self, t: usize) -> usize {
        t.div_ceil(self.cores_per_socket).clamp(1, self.sockets)
    }

    /// CCXs engaged by `t` threads: *spread within* a socket (the OS
    /// scatters unbound threads across CCXs, one per CCX until all 16 are
    /// occupied), sockets filled in order.
    pub fn engaged_ccxs(&self, t: usize) -> usize {
        let ccx_per_socket = self.cores_per_socket / self.cores_per_ccx;
        let s0 = t.min(self.cores_per_socket).min(ccx_per_socket);
        let s1 = t.saturating_sub(self.cores_per_socket).min(ccx_per_socket);
        (s0 + s1).max(1)
    }

    /// L3 bytes available to each of `t` threads under the spread-within-
    /// socket placement.
    pub fn l3_share_per_thread(&self, t: usize) -> f64 {
        self.l3_per_ccx_bytes * self.engaged_ccxs(t) as f64 / t as f64
    }

    /// Fraction of threads running on the second socket.
    fn remote_fraction(&self, t: usize) -> f64 {
        t.saturating_sub(self.cores_per_socket) as f64 / t as f64
    }

    /// Aggregate DRAM bandwidth available to `t` compactly placed threads
    /// (B/s): the minimum of per-core demand capability, the engaged CCXs'
    /// fabric links, and the node DRAM ceiling (pages are interleaved
    /// across both sockets on the modelled configuration, so the full-node
    /// ceiling applies regardless of which cores are busy).
    pub fn dram_bw_total(&self, t: usize) -> f64 {
        let node_ceiling = self.bw_socket * self.sockets as f64;
        let ccx_ceiling = self.bw_ccx_cap * self.engaged_ccxs(t) as f64;
        (self.bw_core_stream * t as f64)
            .min(ccx_ceiling)
            .min(node_ceiling)
    }

    /// Effective per-thread bandwidth for a loop whose *shared* working set
    /// is `ws_total` bytes, executed by `t` threads with the given access
    /// pattern.
    ///
    /// DRAM-side bandwidth depends on the pattern:
    /// * streaming — the thread's share of [`Machine::dram_bw_total`];
    /// * gather — `max(single-thread MLP rate, contended rate × t) / t`,
    ///   the empirical EPYC shared-L3-contention curve;
    /// * scatter — streaming share × `scatter_factor` (line-granularity
    ///   read-modify-write).
    ///
    /// If the loop's data is `reused` across an enclosing repeat, the
    /// per-thread slice may become cache resident. LRU re-streaming has a
    /// cliff, not a gradual benefit (a slice even slightly larger than the
    /// cache evicts everything before reuse), so residency ramps from 0 to
    /// 1 as capacity/slice crosses 0.8 → 1.2 — which is exactly what delays
    /// the paper's CG jump to the 96-128-thread range.
    pub fn per_thread_bw(&self, t: usize, ws_total: f64, access: Access, reused: bool) -> f64 {
        let numa = 1.0
            - (1.0 - self.numa_remote_factor)
                * if access == Access::Streaming {
                    0.0
                } else {
                    self.remote_fraction(t)
                };
        let dram_per_thread = match access {
            Access::Gather => {
                let aggregate = (self.bw_gather_contended * t as f64)
                    .max(self.bw_gather_single)
                    .min(self.bw_socket * self.sockets as f64);
                aggregate / t as f64 * numa
            }
            Access::Streaming => self.dram_bw_total(t) / t as f64,
            Access::Scatter => self.dram_bw_total(t) / t as f64 * self.scatter_factor * numa,
        };
        if ws_total <= 0.0 || !reused {
            // Single-pass data streams from DRAM regardless of slice size.
            return dram_per_thread;
        }
        let ws_per_thread = ws_total / t as f64;
        let cache_capacity = self.l2_bytes + self.l3_share_per_thread(t);
        let resident = ((cache_capacity / ws_per_thread - 0.8) / 0.4).clamp(0.0, 1.0);
        let streamed = 1.0 - resident;
        let cache_bw = match access {
            Access::Gather => self.bw_cache_gather,
            _ => self.bw_cache,
        };
        1.0 / (streamed / dram_per_thread + resident / cache_bw)
    }

    /// Fork cost for a `t`-thread region (s).
    pub fn fork_cost(&self, t: usize) -> f64 {
        if t <= 1 {
            0.0
        } else {
            self.fork_base_s + self.fork_per_thread_s * t as f64
        }
    }

    /// Barrier cost for `t` threads (s).
    pub fn barrier_cost(&self, t: usize) -> f64 {
        if t <= 1 {
            0.0
        } else {
            self.barrier_base_s + self.barrier_log_s * (t as f64).log2()
        }
    }

    /// Total dispatch overhead one thread pays to claim `chunks` chunks of
    /// a dynamic/guided loop shared with `t` threads (s).
    ///
    /// * Shared cursor: each grab RMWs the one global cursor line, and on
    ///   average queues behind the other `t - 1` threads doing the same —
    ///   the per-grab cost grows linearly with the team, which is exactly
    ///   the contention the work-stealing refactor removes.
    /// * Work stealing: grabs are served from an owner-private cache
    ///   refilled by one uncontended atomic per [`zomp::schedule::STEAL_BATCH`]
    ///   chunks, plus ~log2(t) contended steal CASes over the whole loop as
    ///   the tail drains.
    pub fn dispatch_cost(&self, imp: DispatchImpl, t: usize, chunks: u64) -> f64 {
        let n = chunks as f64;
        match imp {
            DispatchImpl::SharedCursor => {
                n * (self.dispatch_chunk_s + self.atomic_op_s * t.saturating_sub(1) as f64)
            }
            DispatchImpl::WorkStealing => {
                let refills = n / zomp::schedule::STEAL_BATCH as f64;
                let steals = if t > 1 { (t as f64).log2() } else { 0.0 };
                refills * self.dispatch_chunk_s + steals * 2.0 * self.atomic_op_s
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_matches_paper() {
        let m = Machine::archer2();
        assert_eq!(m.cores(), 128);
        assert_eq!(m.engaged_sockets(64), 1);
        assert_eq!(m.engaged_sockets(65), 2);
        assert_eq!(m.engaged_sockets(128), 2);
        // Spread placement: one CCX per thread up to 16 per socket.
        assert_eq!(m.engaged_ccxs(4), 4);
        assert_eq!(m.engaged_ccxs(16), 16);
        assert_eq!(m.engaged_ccxs(64), 16);
        assert_eq!(m.engaged_ccxs(96), 32);
        assert_eq!(m.engaged_ccxs(128), 32);
    }

    #[test]
    fn l3_share_shrinks_as_sockets_fill() {
        let m = Machine::archer2();
        // A lone thread owns a whole CCX's L3.
        assert!((m.l3_share_per_thread(1) - m.l3_per_ccx_bytes).abs() < 1.0);
        // 64 threads share socket 0's 16 CCXs: l3/4 each.
        assert!((m.l3_share_per_thread(64) - m.l3_per_ccx_bytes / 4.0).abs() < 1.0);
        // 96 threads over 32 CCXs: a *larger* share than at 64 — the
        // mechanism behind the paper's late CG jump.
        assert!(m.l3_share_per_thread(96) > m.l3_share_per_thread(64));
        assert!((m.l3_share_per_thread(128) - m.l3_per_ccx_bytes / 4.0).abs() < 1.0);
    }

    #[test]
    fn dram_bw_grows_with_threads_then_saturates() {
        let m = Machine::archer2();
        // One thread is capped by its CCX's fabric link.
        assert!((m.dram_bw_total(1) - m.bw_ccx_cap).abs() < 1.0);
        // Mid-range: CCX fabric links bind (16 CCXs at 64 threads).
        assert!((m.dram_bw_total(64) - 16.0 * m.bw_ccx_cap).abs() < 1.0);
        // More threads never reduce aggregate bandwidth.
        assert!(m.dram_bw_total(128) >= m.dram_bw_total(64));
        assert!(m.dram_bw_total(128) <= m.sockets as f64 * m.bw_socket + 1.0);
    }

    #[test]
    fn gather_bandwidth_follows_contention_curve() {
        let m = Machine::archer2();
        // Single thread enjoys the exclusive-MLP rate.
        let bw1 = m.per_thread_bw(1, 0.0, Access::Gather, false);
        assert!((bw1 - m.bw_gather_single).abs() < 1.0);
        // Two threads split roughly the same aggregate.
        let bw2 = m.per_thread_bw(2, 0.0, Access::Gather, false);
        assert!((bw2 - m.bw_gather_single / 2.0).abs() < 1.0);
        // Many threads each get the contended rate (one socket: no NUMA).
        let bw16 = m.per_thread_bw(16, 0.0, Access::Gather, false);
        assert!((bw16 - m.bw_gather_contended).abs() < 1.0);
    }

    #[test]
    fn cache_fit_raises_bandwidth_late() {
        let m = Machine::archer2();
        // CG class C matrix: ~400 MB shared working set, reused each
        // CG iteration.
        let ws = 403e6;
        let bw64 = m.per_thread_bw(64, ws, Access::Gather, true);
        let bw96 = m.per_thread_bw(96, ws, Access::Gather, true);
        let bw128 = m.per_thread_bw(128, ws, Access::Gather, true);
        // No residency benefit yet at 64 threads (slice 6.3 MB vs 4.6 MB
        // share) — per-thread bandwidth is the contended floor.
        assert!(bw64 < 1.3 * m.bw_gather_contended, "bw64 = {bw64:e}");
        // The jump arrives in the 96-128 range.
        assert!(bw96 > 2.0 * bw64, "bw96 = {bw96:e} vs bw64 = {bw64:e}");
        assert!(bw128 > 2.0 * bw64, "bw128 = {bw128:e}");
    }

    #[test]
    fn generic_machine_is_usable() {
        let m = Machine::generic(8);
        assert_eq!(m.cores(), 8);
        assert!(m.dram_bw_total(8) <= m.bw_socket + 1.0);
        assert!(m.per_thread_bw(4, 0.0, Access::Streaming, false) > 0.0);
        // Degenerate 1-core machine still works.
        let one = Machine::generic(1);
        assert_eq!(one.cores(), 1);
        assert_eq!(one.engaged_ccxs(1), 1);
    }

    #[test]
    fn sync_costs_grow_with_team() {
        let m = Machine::archer2();
        assert_eq!(m.fork_cost(1), 0.0);
        assert!(m.fork_cost(128) > m.fork_cost(2));
        assert!(m.barrier_cost(128) > m.barrier_cost(2));
    }

    #[test]
    fn shared_cursor_dispatch_degrades_with_contention() {
        let m = Machine::archer2();
        let c1 = m.dispatch_cost(DispatchImpl::SharedCursor, 1, 1000);
        let c4 = m.dispatch_cost(DispatchImpl::SharedCursor, 4, 1000);
        let c128 = m.dispatch_cost(DispatchImpl::SharedCursor, 128, 1000);
        assert!(c4 > c1);
        assert!(c128 > 10.0 * c4, "c128 = {c128:e} vs c4 = {c4:e}");
    }

    #[test]
    fn work_stealing_dispatch_stays_near_flat() {
        let m = Machine::archer2();
        let s1 = m.dispatch_cost(DispatchImpl::WorkStealing, 1, 1000);
        let s128 = m.dispatch_cost(DispatchImpl::WorkStealing, 128, 1000);
        // Team size adds only the tail-steal term, not a per-chunk factor.
        assert!(s128 < 1.1 * s1, "s128 = {s128:e} vs s1 = {s1:e}");
    }

    #[test]
    fn work_stealing_dispatch_at_least_twice_as_cheap_at_four_threads() {
        // Mirrors the runtime acceptance target: >= 2x chunk throughput at
        // 4 threads over the shared cursor.
        let m = Machine::archer2();
        let legacy = m.dispatch_cost(DispatchImpl::SharedCursor, 4, 1000);
        let steal = m.dispatch_cost(DispatchImpl::WorkStealing, 4, 1000);
        assert!(legacy > 2.0 * steal, "legacy {legacy:e} vs steal {steal:e}");
    }
}
