//! Model ablations: turn individual mechanisms of the machine model off to
//! show which observed behaviour each one is responsible for. These back
//! the ablation analysis in EXPERIMENTS.md and are the model-level
//! counterpart of the Criterion ablation benches.

use crate::machine::Machine;

impl Machine {
    /// Disable the cache-residency (LRU-cliff) mechanism: reused working
    /// sets stream from DRAM no matter how small the per-thread slice.
    /// Without it the paper's CG 96-128-thread jump must disappear.
    pub fn without_cache_fit(mut self) -> Machine {
        // A zero-capacity cache makes every slice non-resident.
        self.l2_bytes = 0.0;
        self.l3_per_ccx_bytes = 0.0;
        self
    }

    /// Disable the per-CCX fabric ceiling (give every CCX the full socket
    /// bandwidth): the mid-range (16-64 threads) CG/IS curves become far
    /// too optimistic, showing the ceiling is what produces the paper's
    /// sub-linear middle.
    pub fn without_ccx_cap(mut self) -> Machine {
        self.bw_ccx_cap = self.bw_socket;
        self
    }

    /// Disable the gather-contention curve (threads keep the exclusive
    /// single-thread gather rate): CG scales near-ideally, which the paper
    /// contradicts.
    pub fn without_gather_contention(mut self) -> Machine {
        self.bw_gather_contended = self.bw_gather_single;
        self
    }

    /// Zero synchronisation overheads (free fork/barrier/dispatch):
    /// quantifies how little of the class C picture is sync-dominated —
    /// the kernels are bandwidth stories, not overhead stories.
    pub fn without_sync_costs(mut self) -> Machine {
        self.fork_base_s = 0.0;
        self.fork_per_thread_s = 0.0;
        self.barrier_base_s = 0.0;
        self.barrier_log_s = 0.0;
        self.dispatch_chunk_s = 0.0;
        self.atomic_op_s = 0.0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::simulate;
    use crate::lang::{profile, Kernel, Lang};
    use npb::class::{CgParams, IsParams};
    use npb::model::{cg_model, estimate_nnz, is_model};
    use npb::Class;

    fn cg() -> npb::model::KernelModel {
        let p = CgParams::for_class(Class::C);
        cg_model(&p, estimate_nnz(&p))
    }

    #[test]
    fn cache_fit_ablation_kills_the_jump() {
        let zig = profile(Lang::Zig, Kernel::Cg);
        let model = cg();
        let with = Machine::archer2();
        let without = Machine::archer2().without_cache_fit();

        let jump = |m: &Machine| {
            let t64 = simulate(&model, m, &zig, 64).seconds;
            let t128 = simulate(&model, m, &zig, 128).seconds;
            t64 / t128
        };
        let with_jump = jump(&with);
        let without_jump = jump(&without);
        assert!(with_jump > 3.0, "full model 64->128 gain {with_jump:.2}");
        assert!(
            without_jump < 2.2,
            "without cache fit the jump must collapse: {without_jump:.2}"
        );
    }

    #[test]
    fn ccx_cap_ablation_inflates_midrange() {
        let zig = profile(Lang::Zig, Kernel::Is);
        let p = IsParams::for_class(Class::C);
        let model = is_model(&p);
        // At 64 threads IS's scatter phase sits on the fabric ceiling; with
        // the ceiling removed the phase drops under its compute bound.
        let t64_with = simulate(&model, &Machine::archer2(), &zig, 64).seconds;
        let t64_without = simulate(&model, &Machine::archer2().without_ccx_cap(), &zig, 64).seconds;
        assert!(
            t64_without < t64_with * 0.85,
            "removing the fabric ceiling must speed up the mid-range: {t64_without:.3} vs {t64_with:.3}"
        );
    }

    #[test]
    fn gather_contention_ablation_overscales_cg() {
        let zig = profile(Lang::Zig, Kernel::Cg);
        let model = cg();
        let m = Machine::archer2().without_gather_contention();
        let t1 = simulate(&model, &m, &zig, 1).seconds;
        let t16 = simulate(&model, &m, &zig, 16).seconds;
        let speedup = t1 / t16;
        // The paper measures 6.8x at 16 threads; without contention the
        // model exceeds 12x — the contention curve carries that result.
        assert!(
            speedup > 12.0,
            "no-contention CG speedup at 16: {speedup:.1}"
        );
    }

    #[test]
    fn sync_costs_are_second_order_at_class_c() {
        let zig = profile(Lang::Zig, Kernel::Cg);
        let model = cg();
        let t = simulate(&model, &Machine::archer2(), &zig, 128).seconds;
        let t0 = simulate(&model, &Machine::archer2().without_sync_costs(), &zig, 128).seconds;
        let frac = (t - t0) / t;
        assert!(
            (0.0..0.25).contains(&frac),
            "sync share of CG at 128 threads: {:.1}%",
            frac * 100.0
        );
    }
}
