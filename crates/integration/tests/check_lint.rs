//! The racy corpus: one fixture per lint rule, plus clean controls.
//!
//! Each file under `fixtures/racy/` is named after the diagnostic id it
//! must trigger (`race-shared-write.zag` → code `race-shared-write`).
//! Every file under `fixtures/clean/` and every shipped example under
//! `examples/zag/` must lint clean — the analysis is only useful if it
//! stays quiet on correct programs.

use std::path::{Path, PathBuf};

fn fixtures(sub: &str) -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(sub);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|entry| entry.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "zag"))
        .collect();
    files.sort();
    files
}

fn lint(path: &Path) -> (String, Vec<zomp_front::Diag>) {
    let source = std::fs::read_to_string(path).expect("fixture is readable");
    let ast = zomp_front::parse(&source)
        .unwrap_or_else(|e| panic!("{} does not parse: {}", path.display(), e.render(&source)));
    let diags = zomp_front::analyze(&ast, &path.display().to_string());
    (source, diags)
}

#[test]
fn racy_corpus_covers_every_rule() {
    // One fixture per rule keeps the corpus honest: a rule without a
    // fixture here has no end-to-end evidence it fires.
    let expected = [
        "clause-conflict",
        "collapse-imperfect",
        "collapse-nonrect",
        "default-none-unlisted",
        "induction-in-clause",
        "nowait-unsynced-read",
        "race-shared-write",
        "reduction-outside-combine",
    ];
    let stems: Vec<String> = fixtures("racy")
        .iter()
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    assert_eq!(
        stems, expected,
        "racy fixture set drifted from the rule list"
    );
}

#[test]
fn each_racy_fixture_triggers_its_named_rule() {
    for path in fixtures("racy") {
        let rule = path.file_stem().unwrap().to_string_lossy().into_owned();
        let (source, diags) = lint(&path);
        let rendered: Vec<String> = diags.iter().map(|d| d.render(&source)).collect();
        assert!(
            diags.iter().any(|d| d.code == rule),
            "{} did not trigger `{rule}`; findings: {rendered:#?}",
            path.display()
        );
        // Every finding must carry a pragma label of the form `unit:line`.
        for d in &diags {
            let label = d.label.as_deref().unwrap_or_else(|| {
                panic!(
                    "{}: finding `{}` has no pragma label",
                    path.display(),
                    d.code
                )
            });
            let line = label.rsplit(':').next().unwrap();
            assert!(
                label.contains(".zag:") && line.parse::<usize>().is_ok(),
                "{}: label {label:?} is not `unit:line`",
                path.display()
            );
        }
    }
}

#[test]
fn clean_fixtures_have_no_findings() {
    for path in fixtures("clean") {
        let (source, diags) = lint(&path);
        let rendered: Vec<String> = diags.iter().map(|d| d.render(&source)).collect();
        assert!(
            diags.is_empty(),
            "{} should lint clean, got: {rendered:#?}",
            path.display()
        );
    }
}

#[test]
fn shipped_examples_lint_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/zag");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/zag exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "zag") {
            continue;
        }
        let (source, diags) = lint(&path);
        let rendered: Vec<String> = diags.iter().map(|d| d.render(&source)).collect();
        assert!(
            diags.is_empty(),
            "{} should lint clean, got: {rendered:#?}",
            path.display()
        );
        checked += 1;
    }
    assert!(
        checked >= 3,
        "expected the shipped examples, found {checked}"
    );
}
