//! End-to-end checks of the tier-observability pipeline over the public
//! VM API: the kernel telemetry probes fold into `MetricsSnapshot`,
//! runtime quickening and deopt rewrites count, and the profiler's
//! event fold attributes a kernel-carried pragma loop to the native
//! tier with its `unit:line` label intact.
//!
//! Tracing mode is process-global, so every test serialises on one
//! mutex and restores the disabled state before releasing it.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use zomp::{profile, trace};
use zomp_vm::value::{ArrF, Value};
use zomp_vm::{Backend, OptLevel, Vm};

fn serial() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    let g = M
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    trace::disable_all();
    trace::reset();
    g
}

/// A fill-const pragma loop: the simplest of the seven bulk-kernel
/// shapes, so at `--opt=3` every iteration runs native.
const FILL: &str = r#"
fn fill(a: []f64, n: i64, nthreads: i64) void {
    //$omp parallel num_threads(nthreads) shared(a) firstprivate(n)
    {
        var i: i64 = 0;
        //$omp while schedule(static)
        while (i < n) : (i += 1) {
            a[i] = 3.0;
        }
    }
}
"#;

/// With counters on, a kernel-carried loop reports every trip through
/// the `KernelEnter` telemetry: total native iterations equal the trip
/// count, no bails, and the result array is still correct.
#[test]
fn kernel_counters_fold_into_metrics() {
    let _g = serial();
    const N: usize = 4096;
    const THREADS: u64 = 4;
    let a = Arc::new(ArrF::new(N));
    let vm =
        Vm::build(FILL, Some("fill.zag"), Backend::Native, OptLevel::O3).expect("compile fill");
    trace::enable_counters();
    vm.call_function(
        "fill",
        vec![
            Value::ArrF(a.clone()),
            Value::Int(N as i64),
            Value::Int(THREADS as i64),
        ],
    )
    .expect("run fill");
    trace::disable_all();
    let m = trace::metrics();
    assert!(
        m.kernel_enters >= 1 && m.kernel_enters <= THREADS,
        "static schedule on {THREADS} threads: expected 1..={THREADS} kernel \
         entries, got {}",
        m.kernel_enters
    );
    assert_eq!(
        m.kernel_iters, N as u64,
        "every iteration of the fill loop must run inside the kernel"
    );
    assert_eq!(m.kernel_bails, 0, "fill-const must not bail");
    for i in 0..N as i64 {
        assert_eq!(a.get(i).unwrap(), 3.0);
    }
    trace::reset();
}

/// A slot reassigned Int -> Float stays `Dynamic` under static typeck,
/// so at `--opt=2` the interpreter quickens its generic ops on first
/// execution and deopts when the type flips — both rewrites must land
/// in the counters.
#[test]
fn quicken_and_deopt_counters_increment() {
    let _g = serial();
    let src = r#"fn main() void {
    var x: any = undefined;
    x = 1;
    var i: i64 = 0;
    while (i < 6) : (i += 1) {
        x = x + x;
        if (i == 2) { x = 0.5; }
    }
    print(x);
}"#;
    let vm =
        Vm::build(src, Some("flip.zag"), Backend::Bytecode, OptLevel::O2).expect("compile flip");
    trace::enable_counters();
    vm.call_function("main", Vec::new()).expect("run flip");
    trace::disable_all();
    let m = trace::metrics();
    assert!(
        m.quickens >= 1,
        "the generic add must quicken on its first Int execution"
    );
    assert!(
        m.deopts >= 1,
        "the Int->Float flip must deopt the quickened add"
    );
    trace::reset();
}

/// The profiler's event fold sees the same run: one pragma loop,
/// labelled with its compilation unit, with (near-)all iterations
/// attributed to the native tier.
#[test]
fn tier_report_attributes_fill_loop_to_native() {
    let _g = serial();
    const N: usize = 4096;
    let a = Arc::new(ArrF::new(N));
    let vm =
        Vm::build(FILL, Some("fill.zag"), Backend::Native, OptLevel::O3).expect("compile fill");
    profile::reset();
    profile::enable();
    vm.call_function(
        "fill",
        vec![Value::ArrF(a), Value::Int(N as i64), Value::Int(4)],
    )
    .expect("run fill");
    profile::disable();
    let tiers = profile::tier_report();
    trace::reset();
    let t = tiers
        .iter()
        .find(|t| t.total_iters > 0)
        .expect("the fill pragma loop must appear in the tier report");
    assert!(
        t.label.starts_with("fill.zag:"),
        "loop label must carry the compilation unit: {}",
        t.label
    );
    assert_eq!(t.total_iters, N as u64);
    assert!(
        t.native_frac() > 0.99,
        "fill loop must be fully native, got {:.3} ({}/{} iters)",
        t.native_frac(),
        t.native_iters,
        t.total_iters
    );
    assert_eq!(t.bails, 0);
    assert_eq!(t.deopts, 0);
}
