//! Shared golden-file helper for the optimization-remark tests that ride
//! with each NPB port (`zag_cg.rs`, `zag_ep.rs`, `zag_is.rs`).
//!
//! To accept a new golden output:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p zomp-integration
//! ```

/// Collect `--remarks` output for `source` at `--opt=3`, render it the
/// way `zag --remarks` does, and compare against
/// `tests/golden/<golden>`. Remarks pin the compiler's observable
/// decisions — which loops became kernels and why the rest did not — so
/// a drifted golden means the tiering story changed, not just codegen.
pub fn check_remarks_golden(source: &str, unit: &str, golden: &str) {
    let diags =
        zomp_vm::remarks::collect(source, unit, zomp_vm::OptLevel::O3).expect("collect remarks");
    let mut got = String::new();
    for d in &diags {
        got.push_str(unit);
        got.push(':');
        got.push_str(&d.render(source));
        got.push('\n');
    }
    let path = format!("{}/tests/golden/{golden}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(format!("{}/tests/golden", env!("CARGO_MANIFEST_DIR"))).ok();
        std::fs::write(&path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .expect("golden file missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        got, want,
        "remarks drifted from tests/golden/{golden}; review the diff and \
         re-bless with UPDATE_GOLDEN=1 if intended"
    );
}
