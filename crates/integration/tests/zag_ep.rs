//! EP ported to Zag, the way §V-B ports it from Fortran to Zig: the NPB
//! 46-bit LCG implemented in the mini-language (the double-split `randlc`),
//! batch seeds via binary exponentiation, Marsaglia-polar Gaussian
//! deviates, per-thread private buffers, a region reduction for the sums
//! and `atomic` updates for the annulus counts.
//!
//! Validated bit-for-bit (counts) and to 1e-12 (sums) against the native
//! Rust `npb::ep` implementation at the same reduced size.

use zomp_vm::Vm;

const ZAG_EP: &str = r#"
fn randlc(x: *f64, a: f64) f64 {
    var r23: f64 = 0.00000011920928955078125;
    var t23: f64 = 8388608.0;
    var r46: f64 = r23 * r23;
    var t46: f64 = t23 * t23;

    var t1: f64 = r23 * a;
    var a1: f64 = @intToFloat(@floatToInt(t1));
    var a2: f64 = a - t23 * a1;

    t1 = r23 * x.*;
    var x1: f64 = @intToFloat(@floatToInt(t1));
    var x2: f64 = x.* - t23 * x1;
    t1 = a1 * x2 + a2 * x1;
    var t2: f64 = @intToFloat(@floatToInt(r23 * t1));
    var zz: f64 = t1 - t23 * t2;
    var t3: f64 = t23 * zz + a2 * x2;
    var t4: f64 = @intToFloat(@floatToInt(r46 * t3));
    x.* = t3 - t46 * t4;
    return r46 * x.*;
}

// an = a^(2*nk) by mk+1 squarings (ep.f label 100).
fn compute_an(a: f64, mk: i64) f64 {
    var t1: f64 = a;
    var i: i64 = 0;
    while (i < mk + 1) : (i += 1) {
        var t: f64 = t1;
        _ = randlc(&t1, t);
    }
    return t1;
}

// Starting seed of batch kk (0-based): s * an^kk (ep.f labels 110/130).
fn batch_seed(s: f64, an: f64, kk0: i64) f64 {
    var t1: f64 = s;
    var t2: f64 = an;
    var kk: i64 = kk0;
    var i: i64 = 0;
    while (i < 100) : (i += 1) {
        var ik: i64 = kk / 2;
        if (2 * ik != kk) {
            _ = randlc(&t1, t2);
        }
        if (ik == 0) {
            break;
        }
        var t: f64 = t2;
        _ = randlc(&t2, t);
        kk = ik;
    }
    return t1;
}

fn ep(m: i64, mk: i64, nthreads: i64, q: []f64) f64 {
    var a: f64 = 1220703125.0;
    var s: f64 = 271828183.0;
    var nk: i64 = 1;
    var i0: i64 = 0;
    while (i0 < mk) : (i0 += 1) {
        nk = nk * 2;
    }
    var batches: i64 = 1;
    var i1: i64 = 0;
    while (i1 < m - mk) : (i1 += 1) {
        batches = batches * 2;
    }
    var an: f64 = compute_an(a, mk);

    var sx: f64 = 0.0;
    var sy: f64 = 0.0;

    //$omp parallel num_threads(nthreads) shared(q) firstprivate(a, s, an, nk, batches) reduction(+: sx, sy)
    {
        // Per-thread deviate buffer: the threadprivate x array of ep.f.
        var x: []f64 = @allocF(2 * nk);
        var qq: []f64 = @allocF(10);

        var k: i64 = 0;
        //$omp while schedule(static)
        while (k < batches) : (k += 1) {
            var t1: f64 = batch_seed(s, an, k);
            var j: i64 = 0;
            while (j < 2 * nk) : (j += 1) {
                x[j] = randlc(&t1, a);
            }
            var i: i64 = 0;
            while (i < nk) : (i += 1) {
                var x1: f64 = 2.0 * x[2 * i] - 1.0;
                var x2: f64 = 2.0 * x[2 * i + 1] - 1.0;
                var tt: f64 = x1 * x1 + x2 * x2;
                if (tt <= 1.0) {
                    var t2: f64 = @sqrt(-2.0 * @log(tt) / tt);
                    var t3: f64 = x1 * t2;
                    var t4: f64 = x2 * t2;
                    var l: i64 = @floatToInt(@max(@abs(t3), @abs(t4)));
                    qq[l] = qq[l] + 1.0;
                    sx = sx + t3;
                    sy = sy + t4;
                }
            }
        }

        // Merge the private annulus counts with atomic updates (ep.f).
        var b: i64 = 0;
        while (b < 10) : (b += 1) {
            //$omp atomic
            q[b] += qq[b];
        }
    }
    return sx * 1000000.0 + sy;
}
"#;

#[test]
fn zag_ep_matches_rust_ep() {
    // 2^14 pairs in 4 batches of 2^12 (mk reduced so the test is quick).
    let m = 14i64;
    let mk = 12i64;

    // Rust reference with the same batching.
    let rust = {
        // npb::ep uses MK=16 internally via batch_pairs; replicate the
        // reduced batching directly against the same primitives.
        use npb::randlc::{randlc, DEFAULT_MULT};
        let nk = 1i64 << mk;
        let batches = 1i64 << (m - mk);
        let mut an = DEFAULT_MULT;
        for _ in 0..=mk {
            let t = an;
            randlc(&mut an, t);
        }
        let mut sx = 0.0f64;
        let mut sy = 0.0f64;
        let mut q = [0.0f64; 10];
        for kk in 0..batches {
            // batch seed
            let mut t1 = 271_828_183.0f64;
            let mut t2 = an;
            let mut k = kk;
            for _ in 0..100 {
                let ik = k / 2;
                if 2 * ik != k {
                    randlc(&mut t1, t2);
                }
                if ik == 0 {
                    break;
                }
                let t = t2;
                randlc(&mut t2, t);
                k = ik;
            }
            let mut x = vec![0.0f64; 2 * nk as usize];
            for slot in x.iter_mut() {
                *slot = randlc(&mut t1, DEFAULT_MULT);
            }
            for i in 0..nk as usize {
                let x1 = 2.0 * x[2 * i] - 1.0;
                let x2 = 2.0 * x[2 * i + 1] - 1.0;
                let t = x1 * x1 + x2 * x2;
                if t <= 1.0 {
                    let t2 = (-2.0 * t.ln() / t).sqrt();
                    let (t3, t4) = (x1 * t2, x2 * t2);
                    q[t3.abs().max(t4.abs()) as usize] += 1.0;
                    sx += t3;
                    sy += t4;
                }
            }
        }
        (sx, sy, q)
    };

    // Zag through the pipeline, on both backends, at every bytecode opt
    // level, and at several team sizes.
    for (backend, opt) in [
        (zomp_vm::Backend::Bytecode, zomp_vm::OptLevel::O0),
        (zomp_vm::Backend::Bytecode, zomp_vm::OptLevel::O1),
        (zomp_vm::Backend::Bytecode, zomp_vm::OptLevel::O2),
        (zomp_vm::Backend::Bytecode, zomp_vm::OptLevel::O3),
        (zomp_vm::Backend::Native, zomp_vm::OptLevel::O2),
        // The full native tier: the fill and pairs loops run inside the
        // cross-call `lcg-fill` / `ep-pairs` bulk kernels here.
        (zomp_vm::Backend::Native, zomp_vm::OptLevel::O3),
        (zomp_vm::Backend::Ast, zomp_vm::OptLevel::O0),
    ] {
        let vm = Vm::build(ZAG_EP, None, backend, opt).expect("compile Zag EP");
        for threads in [1i64, 2, 4] {
            use std::sync::Arc;
            use zomp_vm::value::{ArrF, Value};
            let q = Arc::new(ArrF::new(10));
            let packed = vm
                .call_function(
                    "ep",
                    vec![
                        Value::Int(m),
                        Value::Int(mk),
                        Value::Int(threads),
                        Value::ArrF(Arc::clone(&q)),
                    ],
                )
                .expect("run Zag EP")
                .as_float()
                .unwrap();
            let sy = packed % 1.0e6_f64; // not used for comparison; unpack below
            let _ = sy;
            // Compare annulus counts exactly.
            for b in 0..10 {
                assert_eq!(
                    q.get(b).unwrap(),
                    rust.2[b as usize],
                    "annulus {b} at {threads} threads ({backend:?})"
                );
            }
            // Compare sums via the packed return (sx*1e6 + sy): reconstruct.
            let sx_zag = ((packed - rust.1) / 1.0e6_f64).round() * 1.0e6 / 1.0e6;
            let _ = sx_zag;
            let expected_packed = rust.0 * 1.0e6 + rust.1;
            assert!(
                ((packed - expected_packed) / expected_packed).abs() < 1e-9,
                "packed sums: Zag {packed} vs Rust {expected_packed} at {threads} threads ({backend:?})"
            );
        }
    }
}

#[test]
fn port_passes_data_sharing_check() {
    // The port is a known-clean program: the `zag --check` lint must not
    // flag it (acceptance criterion of the analysis pass).
    let ast = zomp_front::parse(ZAG_EP).expect("port parses");
    let findings = zomp_front::analyze(&ast, "zag_ep");
    let rendered: Vec<String> = findings.iter().map(|d| d.render(ZAG_EP)).collect();
    assert!(
        rendered.is_empty(),
        "lint findings on clean port: {rendered:#?}"
    );
}

mod common;

/// Golden `--remarks` output for the EP port.
#[test]
fn ep_port_remarks_match_golden() {
    common::check_remarks_golden(ZAG_EP, "ep.zag", "remarks_ep.txt");
}

/// ROADMAP item 1, closed: EP's hot loops used to miss at the `randlc`
/// call boundary; the matcher now verifies the callee as the 46-bit LCG
/// and installs the batched `lcg-fill` kernel for the deviate fill loop
/// and `ep-pairs` for the sqrt/log acceptance tail — and the remarks
/// must say so, because CI keys the EP-majority-native guard on this
/// behaviour staying observable.
#[test]
fn ep_remarks_report_cross_call_kernels_installed() {
    let diags = zomp_vm::remarks::collect(ZAG_EP, "ep.zag", zomp_vm::OptLevel::O3)
        .expect("collect remarks");
    for kernel in ["lcg-fill", "ep-pairs"] {
        assert!(
            diags
                .iter()
                .any(|d| d.code == "kernel-installed" && d.message.contains(kernel)),
            "no kernel-installed remark for {kernel}: {diags:#?}"
        );
    }
    // And no worksharing loop misses at the randlc boundary: the only
    // loops allowed to stay interpreted around it are the serial
    // helpers (`compute_an`, `batch_seed`). Every miss carries a label
    // now — serial ones get a call-site or `fn:` attribution — so the
    // pragma-loop discriminator is the outlined function, not the
    // label's presence.
    assert!(
        !diags.iter().any(|d| {
            d.code == "kernel-missed"
                && d.message.contains("__omp_outlined")
                && d.note.as_deref().is_some_and(|n| n.contains("`randlc`"))
        }),
        "a worksharing loop still misses at the randlc boundary: {diags:#?}"
    );
}
