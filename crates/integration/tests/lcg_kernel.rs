//! Properties of the cross-call `lcg-fill` / `ep-pairs` bulk kernels.
//!
//! The differential EP test (`zag_ep.rs`) proves whole-program
//! agreement at one size; these tests pin the *kernel contract*
//! directly against the native `npb::randlc` primitives:
//!
//! 1. **Stream identity.** Batch `k`'s seed is `s·anᵏ` where
//!    `an = a^(2nk)` — exactly the sequential stream state after
//!    `k·2nk` steps. So the concatenation of every batch's fill
//!    output equals ONE sequential `vranlc` stream, bit for bit,
//!    no matter how the worksharing runtime chunks, schedules, or
//!    steals the batches. The property test runs the Zag fill
//!    through the `lcg-fill` kernel across seeds × sizes ×
//!    schedules × team sizes and compares every double with
//!    `to_bits` equality against one `npb::randlc::vranlc` call.
//! 2. **Bail identity.** When a kernel batch runs out of bounds
//!    mid-flight, the bail/replay path must surface the *exact*
//!    error the AST oracle produces — same message, same index —
//!    for both the fill and the pairs kernel.

use std::sync::Arc;

use npb::randlc::vranlc;
use zomp_vm::value::{ArrF, Value};
use zomp_vm::{Backend, OptLevel, Vm};

/// The NPB LCG and batch seeding, ported exactly like `zag_ep.rs`,
/// driving a work-shared fill whose inner loop is the `lcg-fill`
/// kernel shape. Each batch lands its deviates in `out` at the
/// batch's stream offset, so `out` reassembles the sequential stream.
/// The `SCHEDULE` placeholder is substituted per test variant.
const LCG_FILL: &str = r#"
fn randlc(x: *f64, a: f64) f64 {
    var r23: f64 = 0.00000011920928955078125;
    var t23: f64 = 8388608.0;
    var r46: f64 = r23 * r23;
    var t46: f64 = t23 * t23;

    var t1: f64 = r23 * a;
    var a1: f64 = @intToFloat(@floatToInt(t1));
    var a2: f64 = a - t23 * a1;

    t1 = r23 * x.*;
    var x1: f64 = @intToFloat(@floatToInt(t1));
    var x2: f64 = x.* - t23 * x1;
    t1 = a1 * x2 + a2 * x1;
    var t2: f64 = @intToFloat(@floatToInt(r23 * t1));
    var zz: f64 = t1 - t23 * t2;
    var t3: f64 = t23 * zz + a2 * x2;
    var t4: f64 = @intToFloat(@floatToInt(r46 * t3));
    x.* = t3 - t46 * t4;
    return r46 * x.*;
}

fn compute_an(a: f64, mk: i64) f64 {
    var t1: f64 = a;
    var i: i64 = 0;
    while (i < mk + 1) : (i += 1) {
        var t: f64 = t1;
        _ = randlc(&t1, t);
    }
    return t1;
}

fn batch_seed(s: f64, an: f64, kk0: i64) f64 {
    var t1: f64 = s;
    var t2: f64 = an;
    var kk: i64 = kk0;
    var i: i64 = 0;
    while (i < 100) : (i += 1) {
        var ik: i64 = kk / 2;
        if (2 * ik != kk) {
            _ = randlc(&t1, t2);
        }
        if (ik == 0) {
            break;
        }
        var t: f64 = t2;
        _ = randlc(&t2, t);
        kk = ik;
    }
    return t1;
}

fn fill(s: f64, a: f64, mk: i64, batches: i64, nthreads: i64, out: []f64) f64 {
    var nk: i64 = 1;
    var i0: i64 = 0;
    while (i0 < mk) : (i0 += 1) {
        nk = nk * 2;
    }
    var an: f64 = compute_an(a, mk);
    //$omp parallel num_threads(nthreads) shared(out) firstprivate(s, a, an, nk, batches)
    {
        var x: []f64 = @allocF(2 * nk);
        var k: i64 = 0;
        //$omp while SCHEDULE
        while (k < batches) : (k += 1) {
            var t1: f64 = batch_seed(s, an, k);
            var j: i64 = 0;
            while (j < 2 * nk) : (j += 1) {
                x[j] = randlc(&t1, a);
            }
            var j2: i64 = 0;
            while (j2 < 2 * nk) : (j2 += 1) {
                out[2 * nk * k + j2] = x[j2];
            }
        }
    }
    return 0.0;
}
"#;

/// Concatenated kernel output across every schedule/team shape equals
/// one sequential `vranlc` stream, bit for bit.
#[test]
fn lcg_fill_kernel_reproduces_vranlc_stream_bitwise() {
    for sched in [
        "schedule(static)",
        "schedule(static, 3)",
        "schedule(dynamic, 1)",
        "schedule(dynamic, 2)",
        "schedule(guided)",
    ] {
        let src = LCG_FILL.replace("SCHEDULE", sched);
        // The kernel must actually be installed in this variant —
        // a silent fall-back to the interpreter would pass the
        // stream check without testing anything.
        let diags =
            zomp_vm::remarks::collect(&src, "lcgprop.zag", OptLevel::O3).expect("collect remarks");
        assert!(
            diags
                .iter()
                .any(|d| d.code == "kernel-installed" && d.message.contains("lcg-fill")),
            "lcg-fill not installed under {sched}: {diags:#?}"
        );
        let vm = Vm::build(&src, None, Backend::Native, OptLevel::O3)
            .unwrap_or_else(|e| panic!("{}", e.render(&src)));
        for (seed, mult) in [
            (314_159_265.0f64, 1_220_703_125.0f64),
            (271_828_183.0, 1_220_703_125.0),
            (77.0, 5.0f64.powi(13)),
        ] {
            for (mk, batches) in [(6i64, 8i64), (5, 16), (7, 1)] {
                let nk = 1i64 << mk;
                let total = (2 * nk * batches) as usize;
                let mut want = vec![0.0f64; total];
                let mut t = seed;
                vranlc(&mut t, mult, &mut want);
                for threads in [1i64, 2, 4] {
                    let out = Arc::new(ArrF::new(total));
                    vm.call_function(
                        "fill",
                        vec![
                            Value::Float(seed),
                            Value::Float(mult),
                            Value::Int(mk),
                            Value::Int(batches),
                            Value::Int(threads),
                            Value::ArrF(Arc::clone(&out)),
                        ],
                    )
                    .expect("run fill");
                    for (i, &w) in want.iter().enumerate() {
                        let got = out.get(i as i64).unwrap();
                        assert_eq!(
                            got.to_bits(),
                            w.to_bits(),
                            "stream diverged at element {i} of {total} \
                             ({sched}, seed {seed}, mk {mk}, {threads} threads): \
                             kernel {got:e} vs vranlc {w:e}"
                        );
                    }
                }
            }
        }
    }
}

/// EP's batch loop with the buffer sizes as parameters: `xlen` sizes
/// the deviate buffer (the fill kernel's store target), `qlen` the
/// private annulus counts (the pairs kernel's scatter target).
/// Undersizing either forces a mid-batch out-of-bounds in the
/// corresponding kernel.
const EP_BAIL: &str = r#"
fn randlc(x: *f64, a: f64) f64 {
    var r23: f64 = 0.00000011920928955078125;
    var t23: f64 = 8388608.0;
    var r46: f64 = r23 * r23;
    var t46: f64 = t23 * t23;
    var t1: f64 = r23 * a;
    var a1: f64 = @intToFloat(@floatToInt(t1));
    var a2: f64 = a - t23 * a1;
    t1 = r23 * x.*;
    var x1: f64 = @intToFloat(@floatToInt(t1));
    var x2: f64 = x.* - t23 * x1;
    t1 = a1 * x2 + a2 * x1;
    var t2: f64 = @intToFloat(@floatToInt(r23 * t1));
    var zz: f64 = t1 - t23 * t2;
    var t3: f64 = t23 * zz + a2 * x2;
    var t4: f64 = @intToFloat(@floatToInt(r46 * t3));
    x.* = t3 - t46 * t4;
    return r46 * x.*;
}

fn ep(nk: i64, batches: i64, xlen: i64, qlen: i64, q: []f64) f64 {
    var a: f64 = 1220703125.0;
    var s: f64 = 271828183.0;
    var sx: f64 = 0.0;
    var sy: f64 = 0.0;
    //$omp parallel num_threads(1) shared(q) firstprivate(a, s, nk, batches, xlen, qlen) reduction(+: sx, sy)
    {
        var x: []f64 = @allocF(xlen);
        var qq: []f64 = @allocF(qlen);
        var k: i64 = 0;
        //$omp while schedule(static)
        while (k < batches) : (k += 1) {
            var t1: f64 = s;
            var j: i64 = 0;
            while (j < 2 * nk) : (j += 1) {
                x[j] = randlc(&t1, a);
            }
            var i: i64 = 0;
            while (i < nk) : (i += 1) {
                var x1: f64 = 2.0 * x[2 * i] - 1.0;
                var x2: f64 = 2.0 * x[2 * i + 1] - 1.0;
                var tt: f64 = x1 * x1 + x2 * x2;
                if (tt <= 1.0) {
                    var t2: f64 = @sqrt(-2.0 * @log(tt) / tt);
                    var t3: f64 = x1 * t2;
                    var t4: f64 = x2 * t2;
                    var l: i64 = @floatToInt(@max(@abs(t3), @abs(t4)));
                    qq[l] = qq[l] + 1.0;
                    sx = sx + t3;
                    sy = sy + t4;
                }
            }
        }
        var b: i64 = 0;
        while (b < qlen) : (b += 1) {
            //$omp atomic
            q[b] += qq[b];
        }
    }
    return sx + sy;
}
"#;

fn run_ep_bail(backend: Backend, opt: OptLevel, xlen: i64, qlen: i64) -> Result<f64, String> {
    let vm =
        Vm::build(EP_BAIL, None, backend, opt).unwrap_or_else(|e| panic!("{}", e.render(EP_BAIL)));
    if backend == Backend::Native && opt == OptLevel::O3 {
        assert!(
            vm.program.code.funcs.iter().any(|f| !f.kernels.is_empty()),
            "expected bulk kernels to install for the bail program"
        );
    }
    let q = Arc::new(ArrF::new(10));
    vm.call_function(
        "ep",
        vec![
            Value::Int(64),
            Value::Int(4),
            Value::Int(xlen),
            Value::Int(qlen),
            Value::ArrF(q),
        ],
    )
    .map(|v| v.as_float().unwrap())
    .map_err(|e| e.to_string())
}

/// In bounds, every tier agrees on the sums; the O3 build really holds
/// kernels (asserted inside the runner).
#[test]
fn ep_bail_program_agrees_in_bounds() {
    let oracle = run_ep_bail(Backend::Ast, OptLevel::O0, 128, 10);
    assert!(oracle.is_ok(), "{oracle:?}");
    for (backend, opt) in [
        (Backend::Bytecode, OptLevel::O0),
        (Backend::Bytecode, OptLevel::O2),
        (Backend::Native, OptLevel::O3),
    ] {
        assert_eq!(
            run_ep_bail(backend, opt, 128, 10),
            oracle,
            "{backend:?} {opt:?}"
        );
    }
}

/// An undersized deviate buffer makes the `lcg-fill` batch run out of
/// bounds on its last store: the kernel must bail and replay to the
/// oracle's exact out-of-bounds error.
#[test]
fn lcg_fill_bail_reproduces_oracle_error() {
    let oracle = run_ep_bail(Backend::Ast, OptLevel::O0, 127, 10);
    let err = oracle.clone().expect_err("fill must go out of bounds");
    assert!(err.contains("bounds") || err.contains("index"), "{err}");
    for (backend, opt) in [
        (Backend::Bytecode, OptLevel::O0),
        (Backend::Bytecode, OptLevel::O3),
        (Backend::Native, OptLevel::O3),
    ] {
        assert_eq!(
            run_ep_bail(backend, opt, 127, 10),
            oracle,
            "{backend:?} {opt:?}"
        );
    }
}

/// An undersized annulus array makes the `ep-pairs` scatter go out of
/// bounds partway through a batch (annulus 0 is by far the most
/// common, so earlier iterations succeed first): same error identity.
#[test]
fn ep_pairs_bail_reproduces_oracle_error() {
    let oracle = run_ep_bail(Backend::Ast, OptLevel::O0, 128, 1);
    let err = oracle
        .clone()
        .expect_err("pairs scatter must go out of bounds");
    assert!(err.contains("bounds") || err.contains("index"), "{err}");
    for (backend, opt) in [
        (Backend::Bytecode, OptLevel::O0),
        (Backend::Bytecode, OptLevel::O3),
        (Backend::Native, OptLevel::O3),
    ] {
        assert_eq!(
            run_ep_bail(backend, opt, 128, 1),
            oracle,
            "{backend:?} {opt:?}"
        );
    }
}
