//! Cross-crate integration: the same computation expressed (a) in
//! pragma-annotated Zag through the full compiler pipeline and (b) in
//! native Rust on the zomp runtime must agree; runtime facilities (ICVs,
//! profiling, safety modes) must work through every layer.

use std::sync::Arc;

use zomp::prelude::*;
use zomp_vm::value::{ArrF, Value};
use zomp_vm::Vm;

/// Dot product three ways: serial Rust, zomp-parallel Rust, and Zag
/// through the pragma pipeline. All must agree (identical static
/// partitioning and per-thread left-to-right accumulation make the zomp
/// and Zag runs bitwise equal; serial differs only by summation order).
#[test]
fn dot_product_zag_equals_rust() {
    let n = 2048usize;
    let xs: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
    let ys: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).cos()).collect();

    // (a) native Rust on zomp.
    let rust_dot = parallel_reduce(
        Parallel::new().num_threads(4),
        Schedule::static_default(),
        0..n as i64,
        0.0f64,
        RedOp::Add,
        |i, acc| *acc += xs[i as usize] * ys[i as usize],
    );

    // (b) Zag through tokenizer → parser → preprocessor → VM → zomp.
    let x = Arc::new(ArrF::new(n));
    let y = Arc::new(ArrF::new(n));
    for i in 0..n {
        x.set(i as i64, xs[i]).unwrap();
        y.set(i as i64, ys[i]).unwrap();
    }
    let vm = Vm::new(
        r#"
fn dot(x: []f64, y: []f64, n: i64) f64 {
    var acc: f64 = 0.0;
    //$omp parallel num_threads(4) shared(x, y, acc) firstprivate(n)
    {
        var i: i64 = 0;
        //$omp while schedule(static) reduction(+: acc)
        while (i < n) : (i += 1) {
            acc = acc + x[i] * y[i];
        }
    }
    return acc;
}
"#,
    )
    .unwrap();
    let zag_dot = vm
        .call_function(
            "dot",
            vec![Value::ArrF(x), Value::ArrF(y), Value::Int(n as i64)],
        )
        .unwrap()
        .as_float()
        .unwrap();

    let serial: f64 = xs.iter().zip(&ys).map(|(a, b)| a * b).sum();
    assert!(
        (zag_dot - rust_dot).abs() < 1e-12,
        "zag {zag_dot} vs rust {rust_dot}"
    );
    assert!(((zag_dot - serial) / serial).abs() < 1e-12);
}

/// The VM obeys the ICVs: OMP-style runtime schedule set through the Rust
/// API drives `schedule(runtime)` loops inside Zag.
#[test]
fn runtime_schedule_icv_crosses_layers() {
    zomp::omp::set_schedule(Schedule::dynamic(Some(3)));
    let out = Vm::run(
        r#"
fn main() void {
    var total: i64 = 0;
    //$omp parallel num_threads(3) reduction(+: total)
    {
        var i: i64 = 0;
        //$omp while schedule(runtime)
        while (i < 100) : (i += 1) {
            total += i;
        }
    }
    print(total);
}
"#,
    )
    .unwrap();
    assert_eq!(out, vec!["4950"]);
    zomp::omp::set_schedule(Schedule::static_default());
}

/// Profiling instruments regions created by the VM's fork_call too.
#[test]
fn profiling_sees_vm_regions() {
    zomp::profile::reset();
    zomp::profile::enable();
    Vm::run(
        r#"
fn main() void {
    var x: i64 = 0;
    //$omp parallel num_threads(2) reduction(+: x)
    {
        x += 1;
    }
    _ = x;
}
"#,
    )
    .unwrap();
    zomp::profile::disable();
    let report = zomp::profile::report();
    let region = report.iter().find(|r| r.label == "<parallel>");
    assert!(region.is_some(), "VM region not profiled: {report:?}");
    assert!(region.unwrap().invocations >= 1);
}

/// The NPB CG kernel runs on the same runtime the VM uses, concurrently
/// from separate host threads, without interference (the worker pool is
/// shared but teams are independent).
#[test]
fn npb_and_vm_share_the_runtime_pool() {
    use npb::cg::{run, Mode};
    use npb::class::CgParams;

    let tiny = CgParams {
        class: npb::Class::S,
        na: 300,
        nonzer: 4,
        niter: 3,
        shift: 9.0,
        zeta_verify: f64::NAN,
    };

    crossbeam::scope(|s| {
        let h1 = s.spawn(|_| run(&tiny, Mode::Parallel(2)).zeta);
        let h2 = s.spawn(|_| {
            Vm::run(
                r#"
fn main() void {
    var c: i64 = 0;
    //$omp parallel num_threads(2) reduction(+: c)
    {
        var i: i64 = 0;
        //$omp while schedule(dynamic, 7)
        while (i < 500) : (i += 1) {
            c += 1;
        }
    }
    print(c);
}
"#,
            )
            .unwrap()
        });
        let zeta_parallel = h1.join().unwrap();
        let vm_out = h2.join().unwrap();
        assert_eq!(vm_out, vec!["500"]);
        let zeta_serial = run(&tiny, Mode::Serial).zeta;
        assert!((zeta_parallel - zeta_serial).abs() < 1e-10);
    })
    .unwrap();
}

/// Zig-style safety modes apply across the whole stack: the same Zag
/// program traps out-of-bounds in Debug and does not trap in Production.
#[test]
fn safety_mode_crosses_the_stack() {
    use zomp::safety::{with_safety_mode, SafetyMode};
    const PROG: &str = r#"
fn main() void {
    var a: []i64 = @allocI(4);
    var i: i64 = 0;
    while (i < 4) : (i += 1) {
        a[i] = i;
    }
    print(a[3]);
}
"#;
    // In-bounds program works in every mode.
    with_safety_mode(SafetyMode::Debug, || {
        assert_eq!(Vm::run(PROG).unwrap(), vec!["3"]);
    });
    with_safety_mode(SafetyMode::Production, || {
        assert_eq!(Vm::run(PROG).unwrap(), vec!["3"]);
    });
    // Out-of-bounds read traps in Debug mode with a clear message.
    const BAD: &str = r#"
fn main() void {
    var a: []i64 = @allocI(4);
    print(a[9]);
}
"#;
    with_safety_mode(SafetyMode::Debug, || {
        let e = Vm::run(BAD).unwrap_err();
        assert!(e.to_string().contains("out of bounds"), "{e}");
    });
}

/// The preprocessor's output is a fixed point: preprocessing it again
/// changes nothing (idempotence of the pass pipeline).
#[test]
fn preprocessing_is_idempotent() {
    let src = r#"
fn main() void {
    var s: f64 = 0.0;
    //$omp parallel num_threads(2) reduction(+: s)
    {
        var i: i64 = 0;
        //$omp while schedule(static, 4) nowait
        while (i < 64) : (i += 1) {
            s = s + 1.0;
        }
        //$omp barrier
        //$omp master
        { s = s * 1.0; }
    }
    _ = s;
}
"#;
    let once = zomp_front::preprocess(src).unwrap();
    let twice = zomp_front::preprocess(&once).unwrap();
    assert_eq!(once, twice);
}

/// A histogram computed with `omp atomic` in Zag matches the zomp-native
/// RedCell/critical implementation.
#[test]
fn histogram_zag_vs_rust() {
    const BUCKETS: usize = 8;
    const N: i64 = 4000;

    // Native Rust with atomics.
    let cells: Vec<zomp::atomic::AtomicF64> = (0..BUCKETS)
        .map(|_| zomp::atomic::AtomicF64::new(0.0))
        .collect();
    parallel_for(
        Parallel::new().num_threads(4),
        Schedule::dynamic(Some(64)),
        0..N,
        |i| {
            cells[(i % BUCKETS as i64) as usize].fetch_add(1.0);
        },
    );
    let rust: Vec<f64> = cells.iter().map(|c| c.load()).collect();

    // Zag with the atomic directive.
    let out = Vm::run(
        r#"
fn main() void {
    var h: []i64 = @allocI(8);
    //$omp parallel num_threads(4) shared(h)
    {
        var i: i64 = 0;
        //$omp while schedule(dynamic, 64)
        while (i < 4000) : (i += 1) {
            //$omp atomic
            h[i % 8] += 1;
        }
    }
    print(h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]);
}
"#,
    )
    .unwrap();
    let zag: Vec<f64> = out[0]
        .split_whitespace()
        .map(|t| t.parse().unwrap())
        .collect();
    assert_eq!(zag, rust);
    assert_eq!(zag.iter().sum::<f64>(), N as f64);
}
