//! The quantitative reproduction gates: every headline claim of the
//! paper's evaluation section must hold in the modelled experiments. These
//! are the tests that pin EXPERIMENTS.md — if the model drifts, they fail.

use zomp_bench::experiments::{all_experiments, cg_experiment, ep_experiment, is_experiment};

/// §V-A: "the Zig version is 1.15 times faster than the Fortran code on a
/// single core" (CG).
#[test]
fn cg_serial_ratio() {
    let e = cg_experiment();
    let model = e.reference_model.points[0].seconds / e.zig_model.points[0].seconds;
    let paper = e.reference_paper[0] / e.zig_paper[0]; // 1.139
    assert!(
        (model - paper).abs() / paper < 0.10,
        "CG serial Fortran/Zig: model {model:.3} vs paper {paper:.3}"
    );
}

/// §V-B: "the Zig version is on average 1.2 times faster than the
/// reference implementation" (EP, across thread counts).
#[test]
fn ep_average_ratio() {
    let e = ep_experiment();
    let mut ratios = Vec::new();
    for (zp, rp) in e.zig_model.points.iter().zip(&e.reference_model.points) {
        ratios.push(rp.seconds / zp.seconds);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        (1.1..1.35).contains(&mean),
        "EP mean Fortran/Zig ratio {mean:.3} (paper ~1.2)"
    );
}

/// §V-C: the C reference wins serially on IS, but "better scaling of the
/// Zig implementation closes the gap" — at high thread counts the two are
/// within a few hundredths of a second.
#[test]
fn is_crossover_closes() {
    let e = is_experiment();
    let serial_gap = e.zig_model.points[0].seconds - e.reference_model.points[0].seconds;
    assert!(
        serial_gap > 1.0,
        "C must win serially by seconds: {serial_gap:.2}"
    );
    let p128_zig = e.zig_model.at(128).unwrap().seconds;
    let p128_c = e.reference_model.at(128).unwrap().seconds;
    assert!(
        (p128_zig - p128_c).abs() < 0.05,
        "at 128 threads the gap must close: {p128_zig:.3} vs {p128_c:.3}"
    );
}

/// Fig. 3: CG scaling is far below linear through 64 threads, then jumps
/// in the 96-128 range (the cache-fit effect), in both languages.
#[test]
fn cg_fig3_shape() {
    let e = cg_experiment();
    for curve in [&e.zig_model, &e.reference_model] {
        let s64 = curve.at(64).unwrap().speedup;
        let s128 = curve.at(128).unwrap().speedup;
        assert!(
            s64 < 35.0,
            "{}: 64-thread speedup {s64:.1} (paper ~26)",
            curve.label
        );
        assert!(
            s128 / s64 > 2.0,
            "{}: the 64->128 jump is missing ({s64:.1} -> {s128:.1})",
            curve.label
        );
    }
}

/// Fig. 4: EP speedup is "directly proportional to the thread count".
#[test]
fn ep_fig4_shape() {
    let e = ep_experiment();
    for p in &e.zig_model.points {
        let efficiency = p.speedup / p.threads as f64;
        assert!(
            efficiency > 0.85,
            "EP efficiency at {} threads: {efficiency:.2}",
            p.threads
        );
    }
}

/// Fig. 5: IS scales early and saturates late; speedup keeps increasing
/// monotonically but ends far below linear.
#[test]
fn is_fig5_shape() {
    let e = is_experiment();
    let pts = &e.zig_model.points;
    for w in pts.windows(2) {
        assert!(
            w[1].speedup >= w[0].speedup * 0.95,
            "IS speedup regressed between {} and {} threads",
            w[0].threads,
            w[1].threads
        );
    }
    let s128 = pts.last().unwrap().speedup;
    assert!(
        (20.0..70.0).contains(&s128),
        "IS 128-thread speedup {s128:.1} (paper 44)"
    );
}

/// Every modelled runtime is within 50 % of the paper's measurement at
/// every thread count — an absolute-accuracy envelope on top of the shape
/// gates (the paper's own run-to-run spread and our analytic simplifications
/// both live inside it; the worst points are CG's 96/128-thread rows where
/// the model over-credits the cache-fit effect by ~40 %).
#[test]
fn absolute_envelope() {
    for e in all_experiments() {
        for (p, &paper) in e.zig_model.points.iter().zip(&e.zig_paper) {
            let rel = ((p.seconds - paper) / paper).abs();
            assert!(
                rel < 0.50,
                "{} Zig at {} threads: model {:.2}s vs paper {:.2}s ({:.0}% off)",
                e.table_id,
                p.threads,
                p.seconds,
                paper,
                rel * 100.0
            );
        }
    }
}

/// The serial winner matches the paper for every kernel (Zig beats Fortran
/// on CG and EP; C beats Zig on IS).
#[test]
fn serial_winners() {
    for e in all_experiments() {
        assert!(
            e.serial_winner_matches(),
            "{} serial winner flipped",
            e.table_id
        );
    }
}
