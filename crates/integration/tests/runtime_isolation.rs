//! Runtime-instance isolation: the property `zagd` is built on.
//!
//! One process, one shared worker pool, many `zomp::Runtime` instances —
//! each with its own ICVs, critical registries, and threadprivate
//! storage. These tests run programs concurrently on distinct runtimes
//! and assert zero cross-talk: bit-identical outputs versus solo runs,
//! per-runtime ICV visibility, and no registry bleed.

use std::sync::Arc;

use zomp::{Runtime, RuntimeConfig, Schedule};
use zomp_vm::{compile_opt, Backend, OptLevel, Value, Vm};

/// A deterministic parallel program: per-element writes with no
/// cross-thread reduction, so the integer checksum is bit-identical for
/// any team size and any interleaving.
const CHECKSUM_SRC: &str = r#"
fn checksum(n: i64, nthreads: i64) i64 {
    var a: []i64 = @allocI(n);
    //$omp parallel num_threads(nthreads) shared(a) firstprivate(n)
    {
        var i: i64 = 0;
        //$omp while schedule(dynamic, 16)
        while (i < n) : (i += 1) {
            a[i] = (i * 2654435761) % 1000003;
        }
    }
    var s: i64 = 0;
    var j: i64 = 0;
    while (j < n) : (j += 1) {
        s = s + a[j] * (j % 31 + 1);
    }
    return s;
}
"#;

fn vm_on(program: &Arc<zomp_vm::Program>, rt: Arc<Runtime>) -> Vm {
    Vm::from_program(Arc::clone(program), Backend::Bytecode, rt)
}

fn checksum_program() -> Arc<zomp_vm::Program> {
    Arc::new(compile_opt(CHECKSUM_SRC, None, OptLevel::O2).expect("compile"))
}

#[test]
fn concurrent_runtimes_match_solo_runs_bit_for_bit() {
    let program = checksum_program();
    let run = |rt: Arc<Runtime>, nthreads: i64| -> i64 {
        vm_on(&program, rt)
            .call_function("checksum", vec![Value::Int(4000), Value::Int(nthreads)])
            .expect("run")
            .as_int()
            .expect("int result")
    };

    // Solo baselines, one runtime per team size.
    let solo: Vec<i64> = (1..=4)
        .map(|nt| {
            let rt = Runtime::with_config(&RuntimeConfig::default().num_threads(nt));
            run(rt, nt as i64)
        })
        .collect();
    assert!(solo.windows(2).all(|w| w[0] == w[1]), "not deterministic");

    // The stress shape zagd serves: N concurrent programs with differing
    // ICVs, all multiplexing one shared worker pool.
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let program = Arc::clone(&program);
            std::thread::spawn(move || {
                let nt = i % 4 + 1;
                let cfg = RuntimeConfig::default()
                    .num_threads(nt)
                    .run_schedule(if i % 2 == 0 {
                        Schedule::dynamic(Some(8))
                    } else {
                        Schedule::static_default()
                    });
                let rt = Runtime::with_config(&cfg);
                vm_on(&program, rt)
                    .call_function("checksum", vec![Value::Int(4000), Value::Int(nt as i64)])
                    .expect("run")
                    .as_int()
                    .expect("int result")
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("program thread"), solo[0]);
    }
}

#[test]
fn per_runtime_icvs_are_visible_to_programs_without_bleed() {
    const SRC: &str = r#"
fn team_size() i64 {
    return omp.get_max_threads();
}
"#;
    let program = Arc::new(compile_opt(SRC, None, OptLevel::O2).expect("compile"));
    let handles: Vec<_> = [1usize, 2, 3, 4]
        .into_iter()
        .map(|nt| {
            let program = Arc::clone(&program);
            std::thread::spawn(move || {
                let rt = Runtime::with_config(&RuntimeConfig::default().num_threads(nt));
                let got = vm_on(&program, rt)
                    .call_function("team_size", vec![])
                    .expect("run")
                    .as_int()
                    .expect("int");
                (nt as i64, got)
            })
        })
        .collect();
    for h in handles {
        let (want, got) = h.join().unwrap();
        assert_eq!(got, want, "a VM saw another runtime's nthreads-var");
    }
}

#[test]
fn set_num_threads_on_one_runtime_leaves_others_alone() {
    let a = Runtime::with_config(&RuntimeConfig::default().num_threads(2));
    let b = Runtime::with_config(&RuntimeConfig::default().num_threads(3));
    {
        let _g = a.enter();
        zomp::omp::set_num_threads(5);
    }
    assert_eq!(
        a.icvs().num_threads(),
        5,
        "facade writes the entered runtime"
    );
    assert_eq!(b.icvs().num_threads(), 3, "...and only the entered runtime");
    assert_ne!(
        Runtime::global().icvs().num_threads(),
        5,
        "global runtime must not absorb a scoped set_num_threads"
    );
}

#[test]
fn critical_and_threadprivate_registries_do_not_bleed() {
    let a = Runtime::with_config(&RuntimeConfig::default());
    let b = Runtime::with_config(&RuntimeConfig::default());

    assert!(!Arc::ptr_eq(
        &a.critical_lock("zone"),
        &b.critical_lock("zone")
    ));
    // b holding the identically-named lock must not block a's programs.
    let lb = b.critical_lock("zone");
    lb.set();
    assert!(a.critical_lock("zone").test());
    a.critical_lock("zone").unset();
    lb.unset();

    let ta = a.threadprivate("counter", || 0i64);
    let tb = b.threadprivate("counter", || 0i64);
    assert!(!Arc::ptr_eq(&ta, &tb));
    ta.set(41);
    assert_eq!(tb.get(), 0, "threadprivate state leaked across runtimes");
}

#[test]
fn env_is_read_per_runtime_not_latched_per_process() {
    // Regression: the old Icvs::global() read OMP_NUM_THREADS into a
    // process-wide OnceLock; every later configuration change was
    // silently ignored. RuntimeConfig::from_env must snapshot at
    // construction time, every time.
    const VAR: &str = "OMP_NUM_THREADS";
    let saved = std::env::var(VAR).ok();

    std::env::set_var(VAR, "2");
    let first = Runtime::with_config(&RuntimeConfig::from_env());
    std::env::set_var(VAR, "6");
    let second = Runtime::with_config(&RuntimeConfig::from_env());

    match saved {
        Some(v) => std::env::set_var(VAR, v),
        None => std::env::remove_var(VAR),
    }

    assert_eq!(first.icvs().num_threads(), 2);
    assert_eq!(
        second.icvs().num_threads(),
        6,
        "second runtime latched the first runtime's environment snapshot"
    );
}
