//! IS's `rank` function ported to Zag — the third kernel of the paper's
//! evaluation re-enacted in the mini-language (§V-C ported the C `rank` to
//! Zig). The bucketed algorithm needs per-thread histograms, a `single` for
//! the bucket prefix sum, cross-thread offset computation, a scatter phase,
//! and the paper's `static,1` schedule for the per-bucket ranking.
//! Validated bitwise against `npb::is::rank_serial`.

use std::sync::Arc;

use npb::is::{custom_params, rank_serial};
use zomp_vm::value::{ArrI, Value};
use zomp_vm::Vm;

const ZAG_RANK: &str = r#"
// Bucketed counting rank: keys in [0, 2^maxlog), nb = 2^nblog buckets.
// counts is a (nthreads x nb) matrix flattened row-major; starts has nb+1
// entries; buff2 gets the keys bucket-contiguously; ranks[k] ends as the
// number of keys <= k.
fn rank(keys: []i64, nkeys: i64, maxlog: i64, nblog: i64,
        counts: []i64, starts: []i64, buff2: []i64, ranks: []i64,
        nthreads: i64) void {
    var nb: i64 = 1;
    var b0: i64 = 0;
    while (b0 < nblog) : (b0 += 1) {
        nb = nb * 2;
    }
    var shiftbits: i64 = maxlog - nblog;
    var shiftdiv: i64 = 1;
    var s0: i64 = 0;
    while (s0 < shiftbits) : (s0 += 1) {
        shiftdiv = shiftdiv * 2;
    }

    //$omp parallel num_threads(nthreads) shared(keys, counts, starts, buff2, ranks) firstprivate(nkeys, nb, shiftdiv)
    {
        var tid: i64 = omp.get_thread_num();
        var nth: i64 = omp.get_num_threads();

        // Phase 1: private bucket histogram of this thread's key slice.
        var local: []i64 = @allocI(nb);
        var i: i64 = 0;
        //$omp while schedule(static) nowait
        while (i < nkeys) : (i += 1) {
            var b: i64 = keys[i] / shiftdiv;
            local[b] = local[b] + 1;
        }
        var c: i64 = 0;
        while (c < nb) : (c += 1) {
            counts[tid * nb + c] = local[c];
        }
        //$omp barrier

        // Phase 2: bucket starts (one thread), then this thread's scatter
        // cursors (every thread, redundantly, as is.c does).
        //$omp single
        {
            var acc: i64 = 0;
            var b1: i64 = 0;
            while (b1 < nb) : (b1 += 1) {
                starts[b1] = acc;
                var t: i64 = 0;
                while (t < nth) : (t += 1) {
                    acc = acc + counts[t * nb + b1];
                }
            }
            starts[nb] = acc;
        }
        var cursor: []i64 = @allocI(nb);
        var b2: i64 = 0;
        while (b2 < nb) : (b2 += 1) {
            var at: i64 = starts[b2];
            var t2: i64 = 0;
            while (t2 < tid) : (t2 += 1) {
                at = at + counts[t2 * nb + b2];
            }
            cursor[b2] = at;
        }

        // Phase 3: scatter (same static partition as phase 1).
        var i2: i64 = 0;
        //$omp while schedule(static)
        while (i2 < nkeys) : (i2 += 1) {
            var key: i64 = keys[i2];
            var b3: i64 = key / shiftdiv;
            buff2[cursor[b3]] = key;
            cursor[b3] = cursor[b3] + 1;
        }

        // Phase 4: rank each bucket; schedule(static, 1) cycles buckets
        // over threads to balance skew (the clause §V-C names).
        var b4: i64 = 0;
        //$omp while schedule(static, 1) nowait
        while (b4 < nb) : (b4 += 1) {
            var keylo: i64 = b4 * shiftdiv;
            var keyhi: i64 = (b4 + 1) * shiftdiv;
            var st: i64 = starts[b4];
            var en: i64 = starts[b4 + 1];
            var k: i64 = keylo;
            while (k < keyhi) : (k += 1) {
                ranks[k] = 0;
            }
            var p: i64 = st;
            while (p < en) : (p += 1) {
                ranks[buff2[p]] = ranks[buff2[p]] + 1;
            }
            var acc2: i64 = st;
            var k2: i64 = keylo;
            while (k2 < keyhi) : (k2 += 1) {
                acc2 = acc2 + ranks[k2];
                ranks[k2] = acc2;
            }
        }
    }
}
"#;

fn to_arr(v: &[i64]) -> Arc<ArrI> {
    let a = Arc::new(ArrI::new(v.len()));
    for (i, &x) in v.iter().enumerate() {
        a.set(i as i64, x).unwrap();
    }
    a
}

#[test]
fn zag_rank_matches_rust_serial() {
    let maxlog = 9u32;
    let nblog = 4u32;
    let params = custom_params(11, maxlog, nblog);
    let keys: Vec<u32> = npb::is::create_seq(&params);
    let keys_i: Vec<i64> = keys.iter().map(|&k| k as i64).collect();
    let want = rank_serial(&keys, &params);

    for (backend, opt) in [
        (zomp_vm::Backend::Bytecode, zomp_vm::OptLevel::O0),
        (zomp_vm::Backend::Bytecode, zomp_vm::OptLevel::O1),
        (zomp_vm::Backend::Bytecode, zomp_vm::OptLevel::O2),
        (zomp_vm::Backend::Bytecode, zomp_vm::OptLevel::O3),
        (zomp_vm::Backend::Native, zomp_vm::OptLevel::O2),
        (zomp_vm::Backend::Native, zomp_vm::OptLevel::O3),
        (zomp_vm::Backend::Ast, zomp_vm::OptLevel::O0),
    ] {
        let vm = Vm::build(ZAG_RANK, None, backend, opt).expect("compile Zag rank");
        for threads in [1i64, 2, 4] {
            let nb = 1usize << nblog;
            let counts = Arc::new(ArrI::new(threads as usize * nb));
            let starts = Arc::new(ArrI::new(nb + 1));
            let buff2 = Arc::new(ArrI::new(keys.len()));
            let ranks = Arc::new(ArrI::new(1 << maxlog));
            vm.call_function(
                "rank",
                vec![
                    Value::ArrI(to_arr(&keys_i)),
                    Value::Int(keys.len() as i64),
                    Value::Int(maxlog as i64),
                    Value::Int(nblog as i64),
                    Value::ArrI(Arc::clone(&counts)),
                    Value::ArrI(Arc::clone(&starts)),
                    Value::ArrI(Arc::clone(&buff2)),
                    Value::ArrI(Arc::clone(&ranks)),
                    Value::Int(threads),
                ],
            )
            .expect("run Zag rank");

            let got: Vec<u32> = ranks.to_vec().iter().map(|&v| v as u32).collect();
            assert_eq!(
                got, want,
                "rank mismatch at {threads} threads ({backend:?})"
            );
            // buff2 holds a bucket-sorted permutation of the keys.
            let mut sorted_input = keys_i.clone();
            sorted_input.sort_unstable();
            let mut buff = buff2.to_vec();
            // Within buckets order varies by thread interleaving; sorting
            // recovers the multiset.
            buff.sort_unstable();
            assert_eq!(
                buff, sorted_input,
                "scatter lost keys at {threads} threads ({backend:?})"
            );
        }
    }
}

/// The fused rank-pipeline kernel (`--opt=3` on the phase-4 bucket
/// loop) must produce bit-identical ranks to the `--opt=2` interpreter
/// no matter how the worksharing runtime carves the bucket iterations
/// up — every schedule kind crossed with 1/2/4-thread teams, all
/// against the serial Rust oracle. The kernel claims whole buckets
/// through `ws_begin`, so a chunking bug would shear exactly here.
#[test]
fn rank_pipeline_native_bit_identity_across_schedules_and_threads() {
    let maxlog = 9u32;
    let nblog = 4u32;
    let params = custom_params(11, maxlog, nblog);
    let keys: Vec<u32> = npb::is::create_seq(&params);
    let keys_i: Vec<i64> = keys.iter().map(|&k| k as i64).collect();
    let want = rank_serial(&keys, &params);
    let nb = 1usize << nblog;

    for sched in ["static", "static, 1", "static, 3", "dynamic", "dynamic, 2", "guided"] {
        let src = ZAG_RANK.replace(
            "schedule(static, 1) nowait",
            &format!("schedule({sched}) nowait"),
        );
        assert!(src.contains(sched), "schedule substitution failed");
        for (backend, opt) in [
            (zomp_vm::Backend::Bytecode, zomp_vm::OptLevel::O2),
            (zomp_vm::Backend::Native, zomp_vm::OptLevel::O3),
        ] {
            let vm = Vm::build(&src, None, backend, opt).expect("compile Zag rank");
            for threads in [1i64, 2, 4] {
                let counts = Arc::new(ArrI::new(threads as usize * nb));
                let starts = Arc::new(ArrI::new(nb + 1));
                let buff2 = Arc::new(ArrI::new(keys.len()));
                let ranks = Arc::new(ArrI::new(1 << maxlog));
                vm.call_function(
                    "rank",
                    vec![
                        Value::ArrI(to_arr(&keys_i)),
                        Value::Int(keys.len() as i64),
                        Value::Int(maxlog as i64),
                        Value::Int(nblog as i64),
                        Value::ArrI(Arc::clone(&counts)),
                        Value::ArrI(Arc::clone(&starts)),
                        Value::ArrI(Arc::clone(&buff2)),
                        Value::ArrI(Arc::clone(&ranks)),
                        Value::Int(threads),
                    ],
                )
                .expect("run Zag rank");
                let got: Vec<u32> = ranks.to_vec().iter().map(|&v| v as u32).collect();
                assert_eq!(
                    got, want,
                    "rank mismatch: schedule({sched}), {threads} threads ({backend:?}, {opt:?})"
                );
            }
        }
    }
}

#[test]
fn port_passes_data_sharing_check() {
    // The port is a known-clean program: the `zag --check` lint must not
    // flag it (acceptance criterion of the analysis pass).
    let ast = zomp_front::parse(ZAG_RANK).expect("port parses");
    let findings = zomp_front::analyze(&ast, "zag_is");
    let rendered: Vec<String> = findings.iter().map(|d| d.render(ZAG_RANK)).collect();
    assert!(
        rendered.is_empty(),
        "lint findings on clean port: {rendered:#?}"
    );
}

mod common;

/// Golden `--remarks` output for the IS port: the histogram, prefix-sum
/// and scatter phases should all appear as installed kernels.
#[test]
fn is_port_remarks_match_golden() {
    common::check_remarks_golden(ZAG_RANK, "is.zag", "remarks_is.txt");
}
