//! The paper's port, re-enacted: `conj_grad` written in the pragma-annotated
//! mini-language (as §V-A ports it from Fortran to Zig), executed through
//! tokenizer → parser → preprocessor → VM → zomp threads, and validated
//! against the native Rust NPB solver on the same NPB-generated matrix.
//!
//! This exercises the full OpenMP surface the paper lists for CG: a parallel
//! region, worksharing loops with and without `nowait`, `private`/`shared`/
//! `firstprivate` sharing, and reductions on worksharing loops — plus
//! `single` for the per-iteration scalar resets.

use std::sync::Arc;

use npb::cg::makea::makea;
use npb::cg::solve::{conj_grad_serial, CgWorkspace};
use npb::class::{CgParams, Class};
use zomp_vm::value::{ArrF, ArrI, Value};
use zomp_vm::{Backend, Vm};

/// conj_grad in Zag. Structure follows cg.f: init, rho = r.r, then
/// CGITMAX iterations of { q = A p; d = p.q; z/r update with fused rho
/// reduction; p update }, then rnorm = ||x - A z||.
const ZAG_CONJ_GRAD: &str = r#"
fn conj_grad(n: i64, rowstr: []i64, colidx: []i64, a: []f64,
             x: []f64, z: []f64, p: []f64, q: []f64, r: []f64,
             cgitmax: i64, nthreads: i64) f64 {
    var rho: f64 = 0.0;
    var d: f64 = 0.0;
    var sum: f64 = 0.0;

    //$omp parallel num_threads(nthreads) shared(rowstr, colidx, a, x, z, p, q, r, rho, d, sum) firstprivate(n, cgitmax)
    {
        var j: i64 = 0;
        //$omp while nowait
        while (j < n) : (j += 1) {
            q[j] = 0.0;
            z[j] = 0.0;
            r[j] = x[j];
            p[j] = x[j];
        }

        var j0: i64 = 0;
        //$omp while reduction(+: rho)
        while (j0 < n) : (j0 += 1) {
            rho = rho + r[j0] * r[j0];
        }

        var cgit: i64 = 0;
        while (cgit < cgitmax) : (cgit += 1) {
            // q = A p.
            var j1: i64 = 0;
            //$omp while private(k, s)
            while (j1 < n) : (j1 += 1) {
                s = 0.0;
                k = rowstr[j1];
                while (k < rowstr[j1 + 1]) : (k += 1) {
                    s = s + a[k] * p[colidx[k]];
                }
                q[j1] = s;
            }

            // d = p.q (reset the shared cell first, as cg.f does).
            //$omp single
            {
                d = 0.0;
            }
            var j2: i64 = 0;
            //$omp while reduction(+: d)
            while (j2 < n) : (j2 += 1) {
                d = d + p[j2] * q[j2];
            }

            var alpha: f64 = rho / d;
            var rho0: f64 = rho;
            // Every thread must have taken its private alpha/rho0 snapshot
            // before one of them resets the shared rho (the hazard cg.f
            // avoids the same way).
            //$omp barrier
            //$omp single
            {
                rho = 0.0;
            }
            // z += alpha p; r -= alpha q; rho = r.r, fused.
            var j3: i64 = 0;
            //$omp while reduction(+: rho)
            while (j3 < n) : (j3 += 1) {
                z[j3] = z[j3] + alpha * p[j3];
                r[j3] = r[j3] - alpha * q[j3];
                rho = rho + r[j3] * r[j3];
            }

            var beta: f64 = rho / rho0;
            var j4: i64 = 0;
            //$omp while
            while (j4 < n) : (j4 += 1) {
                p[j4] = r[j4] + beta * p[j4];
            }
            _ = alpha;
            _ = rho0;
            _ = beta;
        }

        // rnorm = ||x - A z||: r = A z, then sum (x - r)^2.
        var j5: i64 = 0;
        //$omp while private(k2, s2)
        while (j5 < n) : (j5 += 1) {
            s2 = 0.0;
            k2 = rowstr[j5];
            while (k2 < rowstr[j5 + 1]) : (k2 += 1) {
                s2 = s2 + a[k2] * z[colidx[k2]];
            }
            r[j5] = s2;
        }
        var j6: i64 = 0;
        //$omp while reduction(+: sum) private(dd)
        while (j6 < n) : (j6 += 1) {
            dd = x[j6] - r[j6];
            sum = sum + dd * dd;
        }
    }
    return @sqrt(sum);
}
"#;

fn to_arr_f(v: &[f64]) -> Arc<ArrF> {
    let a = Arc::new(ArrF::new(v.len()));
    for (i, &x) in v.iter().enumerate() {
        a.set(i as i64, x).unwrap();
    }
    a
}

fn to_arr_i(v: &[usize]) -> Arc<ArrI> {
    let a = Arc::new(ArrI::new(v.len()));
    for (i, &x) in v.iter().enumerate() {
        a.set(i as i64, x as i64).unwrap();
    }
    a
}

#[test]
fn zag_conj_grad_matches_rust_solver() {
    // A miniature NPB-constructed matrix (same makea machinery that passes
    // official class S verification).
    let params = CgParams {
        class: Class::S,
        na: 160,
        nonzer: 4,
        niter: 1,
        shift: 7.0,
        zeta_verify: f64::NAN,
    };
    let mat = makea(&params);
    let n = mat.n;
    let x = vec![1.0f64; n];

    // Native Rust reference.
    let mut ws = CgWorkspace::new(n);
    let rnorm_rust = conj_grad_serial(&mat, &x, &mut ws);

    // Zag through the full pipeline, on both execution backends, at every
    // bytecode optimization level, and at several team sizes — the VM
    // must reproduce the oracle (and the native solver) exactly as the
    // tree-walker does.
    for (backend, opt) in [
        (Backend::Bytecode, zomp_vm::OptLevel::O0),
        (Backend::Bytecode, zomp_vm::OptLevel::O1),
        (Backend::Bytecode, zomp_vm::OptLevel::O2),
        (Backend::Bytecode, zomp_vm::OptLevel::O3),
        (Backend::Native, zomp_vm::OptLevel::O2),
        (Backend::Ast, zomp_vm::OptLevel::O0),
    ] {
        let vm = Vm::build(ZAG_CONJ_GRAD, None, backend, opt).expect("compile Zag conj_grad");
        for threads in [1i64, 2, 4] {
            let z = Arc::new(ArrF::new(n));
            let p = Arc::new(ArrF::new(n));
            let q = Arc::new(ArrF::new(n));
            let r = Arc::new(ArrF::new(n));
            let result = vm
                .call_function(
                    "conj_grad",
                    vec![
                        Value::Int(n as i64),
                        Value::ArrI(to_arr_i(&mat.rowstr)),
                        Value::ArrI(to_arr_i(&mat.colidx)),
                        Value::ArrF(to_arr_f(&mat.a)),
                        Value::ArrF(to_arr_f(&x)),
                        Value::ArrF(Arc::clone(&z)),
                        Value::ArrF(Arc::clone(&p)),
                        Value::ArrF(Arc::clone(&q)),
                        Value::ArrF(Arc::clone(&r)),
                        Value::Int(CgParams::CGITMAX as i64),
                        Value::Int(threads),
                    ],
                )
                .expect("run Zag conj_grad")
                .as_float()
                .unwrap();

            assert!(
                (result - rnorm_rust).abs() < 1e-10,
                "rnorm: Zag {result:e} vs Rust {rnorm_rust:e} at {threads} threads ({backend:?})"
            );
            // The solution vector itself must match.
            for j in 0..n {
                let zj = z.get(j as i64).unwrap();
                assert!(
                    (zj - ws.z[j]).abs() < 1e-9,
                    "z[{j}]: Zag {zj} vs Rust {} at {threads} threads ({backend:?})",
                    ws.z[j]
                );
            }
            // And it must actually solve the system: A z ≈ x.
            let mut az = vec![0.0; n];
            mat.spmv(&z.to_vec(), &mut az);
            for j in 0..n {
                assert!((az[j] - x[j]).abs() < 1e-6, "residual at row {j}");
            }
        }
    }
}

/// The private-clause variables (`k`, `s`, ...) used in the Zag port are
/// never declared in the function — `private` must introduce them, exactly
/// like the paper's outlined-function privates.
#[test]
fn private_clause_introduces_variables() {
    let out = Vm::run(
        r#"
fn main() void {
    var total: i64 = 0;
    //$omp parallel num_threads(2) reduction(+: total)
    {
        var i: i64 = 0;
        //$omp while private(t)
        while (i < 10) : (i += 1) {
            t = i * 2;
            total += t;
        }
    }
    print(total);
}
"#,
    )
    .unwrap();
    assert_eq!(out, vec!["90"]);
}

#[test]
fn port_passes_data_sharing_check() {
    // The port is a known-clean program: the `zag --check` lint must not
    // flag it (acceptance criterion of the analysis pass).
    let ast = zomp_front::parse(ZAG_CONJ_GRAD).expect("port parses");
    let findings = zomp_front::analyze(&ast, "zag_cg");
    let rendered: Vec<String> = findings.iter().map(|d| d.render(ZAG_CONJ_GRAD)).collect();
    assert!(
        rendered.is_empty(),
        "lint findings on clean port: {rendered:#?}"
    );
}

mod common;

/// Golden `--remarks` output for the CG port: pins which conj_grad loops
/// lower to bulk kernels at `--opt=3` and why the rest stay interpreted.
#[test]
fn cg_port_remarks_match_golden() {
    common::check_remarks_golden(ZAG_CONJ_GRAD, "cg.zag", "remarks_cg.txt");
}
