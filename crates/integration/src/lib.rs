//! Integration-test-only crate: see `tests/` for the cross-crate suites
//! (pipeline equivalence, paper-claim gates, runtime interplay).
