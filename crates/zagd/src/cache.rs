//! The compiled-program cache: parse/lint/compile once, run many.
//!
//! Keys are the FNV-1a hash of the source text (plus its length, making
//! accidental collisions need both a hash and a length match) together
//! with the optimization level and backend — the only inputs that change
//! the compiled image. Values are `Arc<Program>`: the VM executes a
//! program immutably (per-thread quickening caches live in thread-local
//! state, not the image), so one cached compilation can back any number
//! of concurrent [`zomp_vm::Vm`] instances.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use zomp_vm::{Backend, OptLevel, Program};

/// FNV-1a over the source bytes: tiny, dependency-free, and stable across
/// processes (usable in logs and the `/stats` endpoint).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    hash: u64,
    len: usize,
    opt: OptLevel,
    backend: Backend,
}

/// A bounded map of compiled programs with hit/miss accounting.
pub struct ProgramCache {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    cap: usize,
}

struct Inner {
    map: HashMap<Key, Arc<Program>>,
    /// Insertion order for FIFO eviction when the cache is full.
    order: VecDeque<Key>,
}

impl ProgramCache {
    pub fn new(cap: usize) -> ProgramCache {
        ProgramCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            cap: cap.max(1),
        }
    }

    /// Look up `source` compiled at `(backend, opt)`, compiling on a miss.
    /// Returns the shared program and whether it was served from cache.
    /// Compile failures are not cached: they are cheap to reproduce (the
    /// pipeline bails at the first error) and a negative entry would pin
    /// request-supplied garbage in memory.
    pub fn get_or_compile(
        &self,
        source: &str,
        unit: Option<&str>,
        backend: Backend,
        opt: OptLevel,
    ) -> Result<(Arc<Program>, bool), zomp_front::Diag> {
        // The native backend pins the image to --opt=3 (same normalization
        // as `Vm::build`), so `native/O2` and `native/O3` share one entry.
        let opt = if backend == Backend::Native {
            OptLevel::O3
        } else {
            opt
        };
        let key = Key {
            hash: fnv1a(source.as_bytes()),
            len: source.len(),
            opt,
            backend,
        };
        if let Some(p) = self.inner.lock().unwrap().map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(p), true));
        }
        // Compile outside the lock: a slow compilation must not stall
        // cache hits for other requests. Two racing misses on the same
        // key both compile; the second insert simply replaces the first.
        let program = Arc::new(zomp_vm::compile_opt(source, unit, opt)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        if !inner.map.contains_key(&key) {
            while inner.map.len() >= self.cap {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                } else {
                    break;
                }
            }
            inner.order.push_back(key);
        }
        inner.map.insert(key, Arc::clone(&program));
        Ok((program, false))
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn entries(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Hits as a fraction of all lookups (0.0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROG: &str = "fn main() void {\n    print(1 + 2);\n}\n";

    #[test]
    fn second_lookup_hits() {
        let cache = ProgramCache::new(8);
        let (p1, cached1) = cache
            .get_or_compile(PROG, None, Backend::Bytecode, OptLevel::O3)
            .unwrap();
        let (p2, cached2) = cache
            .get_or_compile(PROG, None, Backend::Bytecode, OptLevel::O3)
            .unwrap();
        assert!(!cached1);
        assert!(cached2);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn opt_and_backend_are_part_of_the_key() {
        let cache = ProgramCache::new(8);
        cache
            .get_or_compile(PROG, None, Backend::Bytecode, OptLevel::O0)
            .unwrap();
        let (_, cached) = cache
            .get_or_compile(PROG, None, Backend::Bytecode, OptLevel::O3)
            .unwrap();
        assert!(!cached, "different opt level must recompile");
        let (_, cached) = cache
            .get_or_compile(PROG, None, Backend::Ast, OptLevel::O0)
            .unwrap();
        assert!(!cached, "different backend must recompile");
        assert_eq!(cache.entries(), 3);
    }

    #[test]
    fn native_backend_normalizes_to_o3() {
        let cache = ProgramCache::new(8);
        cache
            .get_or_compile(PROG, None, Backend::Native, OptLevel::O2)
            .unwrap();
        let (_, cached) = cache
            .get_or_compile(PROG, None, Backend::Native, OptLevel::O3)
            .unwrap();
        assert!(cached, "native always compiles at O3; both keys match");
    }

    #[test]
    fn evicts_fifo_at_capacity() {
        let cache = ProgramCache::new(2);
        let progs: Vec<String> = (0..3)
            .map(|i| format!("fn main() void {{\n    print({i});\n}}\n"))
            .collect();
        for p in &progs {
            cache
                .get_or_compile(p, None, Backend::Bytecode, OptLevel::O2)
                .unwrap();
        }
        assert_eq!(cache.entries(), 2);
        // The oldest entry was evicted; looking it up recompiles.
        let (_, cached) = cache
            .get_or_compile(&progs[0], None, Backend::Bytecode, OptLevel::O2)
            .unwrap();
        assert!(!cached);
        // The newest survived.
        let (_, cached) = cache
            .get_or_compile(&progs[2], None, Backend::Bytecode, OptLevel::O2)
            .unwrap();
        assert!(cached);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = ProgramCache::new(8);
        let bad = "fn main() void {\n    print(;\n}\n";
        assert!(cache
            .get_or_compile(bad, None, Backend::Bytecode, OptLevel::O2)
            .is_err());
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.misses(), 0, "failures do not count as misses");
    }
}
