//! A small JSON value type with a recursive-descent parser and a writer.
//!
//! The workspace's vendored `serde_json` stand-in is serialize-only, and
//! the service needs to *read* request bodies, so `zagd` carries its own
//! parser. It covers the full JSON grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) and distinguishes integers from
//! floats — the request decoder maps them onto the VM's `Int`/`Float`
//! value split, where `4` and `4.0` are different types.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects keep sorted key order (`BTreeMap`) so
/// serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// A number written without `.`/`e` that fits an `i64`.
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let b = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Serialize back to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // Keep a decimal point so the value round-trips as a
                    // float rather than re-parsing as an integer.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        let _ = write!(out, "{x:.1}");
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

/// Build an object from key/value pairs: `obj([("ok", Json::Bool(true))])`.
pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let n = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not reassembled; the BMP
                        // covers every escape the service itself emits.
                        out.push(char::from_u32(n).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 passes through untouched.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && b[*pos] & 0xc0 == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid UTF-8")?);
                let _ = c;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number")?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected a value at byte {start}"));
    }
    if !is_float {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Json::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("bad number `{text}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": null}, "e": true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0], Json::Int(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::Float(2.5));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        let again = Json::parse(&v.render()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn distinguishes_int_from_float() {
        assert_eq!(Json::parse("4").unwrap(), Json::Int(4));
        assert_eq!(Json::parse("4.0").unwrap(), Json::Float(4.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        // A float that happens to be integral renders with a decimal
        // point so it re-parses as a float.
        assert_eq!(Json::Float(4.0).render(), "4.0");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "12 34", "nul", ""] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let s = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(s.render(), r#""a\"b\\c\nd\u0001""#);
        assert_eq!(Json::parse(&s.render()).unwrap(), s);
    }
}
