//! Request decoding and single-program execution.
//!
//! A `POST /run` body is a JSON object:
//!
//! ```json
//! {
//!   "source":  "fn main() void { ... }",     // required
//!   "unit":    "pi.zag",                     // optional label for traces
//!   "entry":   "main",                       // default "main"
//!   "args":    [4, 2.5, {"f64": [1, 2]}],    // default []
//!   "backend": "ast" | "bytecode" | "native",// default "bytecode"
//!   "opt":     0 | 1 | 2 | 3,                // default 3 (the service
//!                                            // compiles once, runs many)
//!   "threads": 4,                            // nthreads-var for this run
//!   "schedule": "dynamic,64",                // run-sched-var for this run
//!   "check":   "warn" | "deny",              // lint gating, default warn
//!   "timeout_ms": 5000                       // per-request deadline
//! }
//! ```
//!
//! Each request executes on its own [`zomp::Runtime`] built from these
//! fields and nothing else — the daemon's `OMP_*`/`ZOMP_*` environment is
//! deliberately not consulted, so two concurrent requests with different
//! `threads`/`schedule` cannot observe each other's ICVs.

use std::sync::Arc;
use std::time::Instant;

use zomp::config::CheckMode;
use zomp::ExecConfig;
use zomp_front::{Diag, Severity};
use zomp_vm::value::{ArrF, ArrI};
use zomp_vm::{Backend, OptLevel, Value, Vm};

use crate::cache::ProgramCache;
use crate::json::{obj, Json};

/// A decoded `/run` request.
pub struct RunRequest {
    pub source: String,
    pub unit: Option<String>,
    pub entry: String,
    pub args: Vec<Value>,
    pub cfg: ExecConfig,
    pub timeout_ms: Option<u64>,
}

impl RunRequest {
    /// Decode a request body. Unknown fields are rejected so a typo'd
    /// knob fails loudly instead of silently running with defaults.
    pub fn from_json(body: &Json) -> Result<RunRequest, String> {
        let Json::Obj(map) = body else {
            return Err("request body must be a JSON object".into());
        };
        const KNOWN: [&str; 10] = [
            "source",
            "unit",
            "entry",
            "args",
            "backend",
            "opt",
            "threads",
            "schedule",
            "check",
            "timeout_ms",
        ];
        for k in map.keys() {
            if !KNOWN.contains(&k.as_str()) {
                return Err(format!("unknown request field `{k}`"));
            }
        }
        let source = body
            .get("source")
            .and_then(Json::as_str)
            .ok_or("missing required string field `source`")?
            .to_string();

        let mut cfg = ExecConfig::new();
        // `opt` defaults to 3: the whole point of the cache is to pay for
        // the best image once and reuse it.
        cfg.opt = Some(3);
        if let Some(v) = body.get("backend") {
            let s = v.as_str().ok_or("`backend` must be a string")?;
            cfg.parse_flag(&format!("--backend={s}"), &mut std::iter::empty())
                .map_err(|e| e.to_string())?;
        }
        if let Some(v) = body.get("opt") {
            let n = v.as_i64().ok_or("`opt` must be an integer")?;
            cfg.parse_flag(&format!("--opt={n}"), &mut std::iter::empty())?;
        }
        if let Some(v) = body.get("threads") {
            let n = v.as_i64().ok_or("`threads` must be an integer")?;
            cfg.parse_flag(&format!("--threads={n}"), &mut std::iter::empty())?;
        }
        if let Some(v) = body.get("schedule") {
            let s = v.as_str().ok_or("`schedule` must be a string")?;
            cfg.parse_flag(&format!("--schedule={s}"), &mut std::iter::empty())?;
        }
        if let Some(v) = body.get("check") {
            cfg.check = match v.as_str() {
                Some("warn") => CheckMode::Warn,
                Some("deny") => CheckMode::Deny,
                _ => return Err("`check` must be \"warn\" or \"deny\"".into()),
            };
        }

        let args = match body.get("args") {
            None => Vec::new(),
            Some(Json::Arr(items)) => items
                .iter()
                .map(json_to_value)
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err("`args` must be an array".into()),
        };

        Ok(RunRequest {
            source,
            unit: body.get("unit").and_then(Json::as_str).map(str::to_string),
            entry: body
                .get("entry")
                .and_then(Json::as_str)
                .unwrap_or("main")
                .to_string(),
            args,
            cfg,
            timeout_ms: body
                .get("timeout_ms")
                .and_then(Json::as_i64)
                .map(|n| n.max(1) as u64),
        })
    }

    pub fn backend(&self) -> Backend {
        self.cfg.backend.map(Backend::from).unwrap_or_default()
    }

    pub fn opt(&self) -> OptLevel {
        self.cfg
            .opt
            .map(OptLevel::from_index)
            .unwrap_or(OptLevel::O3)
    }
}

/// Convert a JSON argument to a VM value. Numbers follow the JSON
/// spelling (`4` is `Int`, `4.0` is `Float`); arrays must be typed
/// explicitly (`{"f64": [...]}` / `{"i64": [...]}`) because an all-integer
/// JSON array is otherwise ambiguous between the two array types.
fn json_to_value(v: &Json) -> Result<Value, String> {
    match v {
        Json::Int(n) => Ok(Value::Int(*n)),
        Json::Float(x) => Ok(Value::Float(*x)),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Str(s) => Ok(Value::Str(Arc::from(s.as_str()))),
        Json::Obj(m) if m.len() == 1 => match (m.get("f64"), m.get("i64")) {
            (Some(Json::Arr(items)), None) => {
                let arr = ArrF::new(items.len());
                for (i, item) in items.iter().enumerate() {
                    let x = item
                        .as_f64()
                        .ok_or_else(|| format!("f64 array element {i} is not a number"))?;
                    arr.set(i as i64, x).map_err(|e| e.to_string())?;
                }
                Ok(Value::ArrF(Arc::new(arr)))
            }
            (None, Some(Json::Arr(items))) => {
                let arr = ArrI::new(items.len());
                for (i, item) in items.iter().enumerate() {
                    let x = item
                        .as_i64()
                        .ok_or_else(|| format!("i64 array element {i} is not an integer"))?;
                    arr.set(i as i64, x).map_err(|e| e.to_string())?;
                }
                Ok(Value::ArrI(Arc::new(arr)))
            }
            _ => Err("array arguments are {\"f64\": [...]} or {\"i64\": [...]}".into()),
        },
        other => Err(format!("unsupported argument {}", other.render())),
    }
}

/// Convert an execution result back to JSON. Arrays come back as their
/// typed wrapper; handles that make no sense outside the VM (pointers,
/// reduction cells) render as their type name.
fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Void | Value::Undefined => Json::Null,
        Value::Int(n) => Json::Int(*n),
        Value::Float(x) => Json::Float(*x),
        Value::Bool(b) => Json::Bool(*b),
        Value::Str(s) => Json::Str(s.to_string()),
        Value::ArrF(a) => obj([(
            "f64",
            Json::Arr(
                (0..a.len() as i64)
                    .map(|i| Json::Float(a.get(i).unwrap_or(f64::NAN)))
                    .collect(),
            ),
        )]),
        Value::ArrI(a) => obj([(
            "i64",
            Json::Arr(
                (0..a.len() as i64)
                    .map(|i| Json::Int(a.get(i).unwrap_or(0)))
                    .collect(),
            ),
        )]),
        other => Json::Str(format!("<{}>", other.type_name())),
    }
}

/// One diagnostic as a JSON value: severity, stable code, byte offset
/// plus resolved line/column, message, and the optional label/note.
pub fn diag_to_json(d: &Diag, source: &str) -> Json {
    let (line, col) = d.line_col(source);
    let mut fields = vec![
        (
            "severity".to_string(),
            Json::Str(
                match d.severity {
                    Severity::Error => "error",
                    Severity::Warning => "warning",
                    Severity::Remark => "remark",
                }
                .to_string(),
            ),
        ),
        ("code".to_string(), Json::Str(d.code.to_string())),
        ("offset".to_string(), Json::Int(d.offset as i64)),
        ("line".to_string(), Json::Int(line as i64)),
        ("col".to_string(), Json::Int(col as i64)),
        ("message".to_string(), Json::Str(d.message.clone())),
    ];
    if let Some(l) = &d.label {
        fields.push(("label".to_string(), Json::Str(l.clone())));
    }
    if let Some(n) = &d.note {
        fields.push(("note".to_string(), Json::Str(n.clone())));
    }
    Json::Obj(fields.into_iter().collect())
}

/// The service-level outcome of one request, before HTTP framing.
pub struct RunOutcome {
    /// HTTP status the response maps to (200, 422 compile/lint failure,
    /// 500 runtime error).
    pub status: u16,
    pub body: Json,
}

/// Compile (through `cache`) and execute one request on its own runtime.
/// Everything the program observed or produced is in the returned JSON:
/// result value, print output, lint warnings, cache disposition, timings.
pub fn execute(cache: &ProgramCache, req: &RunRequest) -> RunOutcome {
    let t0 = Instant::now();
    let (program, cached) =
        match cache.get_or_compile(&req.source, req.unit.as_deref(), req.backend(), req.opt()) {
            Ok(ok) => ok,
            Err(d) => {
                return RunOutcome {
                    status: 422,
                    body: obj([
                        ("ok", Json::Bool(false)),
                        ("error", Json::Str("compile error".into())),
                        (
                            "diagnostics",
                            Json::Arr(vec![diag_to_json(&d, &req.source)]),
                        ),
                    ]),
                }
            }
        };
    let compile_ms = t0.elapsed().as_secs_f64() * 1e3;

    let diags: Vec<Json> = program
        .diags
        .iter()
        .map(|d| diag_to_json(d, &req.source))
        .collect();
    if req.cfg.check == CheckMode::Deny && !program.diags.is_empty() {
        return RunOutcome {
            status: 422,
            body: obj([
                ("ok", Json::Bool(false)),
                ("error", Json::Str("check=deny: lint findings".into())),
                ("diagnostics", Json::Arr(diags)),
            ]),
        };
    }

    let vm = Vm::from_program(program, req.backend(), req.cfg.make_runtime());
    let t1 = Instant::now();
    let result = vm.call_function(&req.entry, req.args.clone());
    let run_ms = t1.elapsed().as_secs_f64() * 1e3;
    let output = Json::Arr(
        vm.output
            .lock()
            .iter()
            .map(|l| Json::Str(l.clone()))
            .collect(),
    );

    match result {
        Ok(v) => RunOutcome {
            status: 200,
            body: obj([
                ("ok", Json::Bool(true)),
                ("result", value_to_json(&v)),
                ("output", output),
                ("diagnostics", Json::Arr(diags)),
                ("cached", Json::Bool(cached)),
                ("compile_ms", Json::Float(compile_ms)),
                ("run_ms", Json::Float(run_ms)),
            ]),
        },
        Err(e) => RunOutcome {
            status: 500,
            body: obj([
                ("ok", Json::Bool(false)),
                ("error", Json::Str(e.to_string())),
                ("output", output),
                ("cached", Json::Bool(cached)),
            ]),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_body(body: &str) -> RunOutcome {
        let cache = ProgramCache::new(8);
        let req = RunRequest::from_json(&Json::parse(body).unwrap()).unwrap();
        execute(&cache, &req)
    }

    #[test]
    fn executes_entry_with_typed_args() {
        let out = run_body(
            r#"{"source": "fn add(a: i64, b: f64) f64 {\n    return @intToFloat(a) + b;\n}\n",
                "entry": "add", "args": [4, 2.5]}"#,
        );
        assert_eq!(out.status, 200, "{}", out.body.render());
        assert_eq!(out.body.get("result"), Some(&Json::Float(6.5)));
        assert_eq!(out.body.get("cached"), Some(&Json::Bool(false)));
    }

    #[test]
    fn array_args_round_trip() {
        let out = run_body(
            r#"{"source": "fn total(a: []f64, n: i64) f64 {\n    var s: f64 = 0.0;\n    var i: i64 = 0;\n    while (i < n) : (i += 1) {\n        s = s + a[i];\n    }\n    return s;\n}\n",
                "entry": "total", "args": [{"f64": [1, 2.5, 3]}, 3]}"#,
        );
        assert_eq!(out.status, 200, "{}", out.body.render());
        assert_eq!(out.body.get("result"), Some(&Json::Float(6.5)));
    }

    #[test]
    fn compile_error_is_a_structured_diagnostic() {
        let out = run_body(r#"{"source": "fn main() void {\n    print(;\n}\n"}"#);
        assert_eq!(out.status, 422);
        assert_eq!(out.body.get("ok"), Some(&Json::Bool(false)));
        let diags = out.body.get("diagnostics").unwrap().as_arr().unwrap();
        assert_eq!(diags.len(), 1);
        assert!(diags[0].get("line").unwrap().as_i64().unwrap() >= 1);
        assert!(diags[0].get("message").is_some());
    }

    #[test]
    fn runtime_error_reports_500_with_output_so_far() {
        let out = run_body(
            r#"{"source": "fn main() void {\n    print(1);\n    var a: []f64 = @allocF(2);\n    print(a[5]);\n}\n"}"#,
        );
        assert_eq!(out.status, 500);
        assert_eq!(out.body.get("ok"), Some(&Json::Bool(false)));
        let output = out.body.get("output").unwrap().as_arr().unwrap();
        assert_eq!(output.len(), 1);
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let parsed = Json::parse(r#"{"source": "x", "theads": 4}"#).unwrap();
        let e = match RunRequest::from_json(&parsed) {
            Ok(_) => panic!("unknown field accepted"),
            Err(e) => e,
        };
        assert!(e.contains("theads"), "{e}");
    }

    #[test]
    fn per_request_threads_reach_the_program() {
        let out = run_body(
            r#"{"source": "fn main() void {\n    print(omp.get_max_threads());\n}\n", "threads": 3}"#,
        );
        assert_eq!(out.status, 200, "{}", out.body.render());
        let output = out.body.get("output").unwrap().as_arr().unwrap();
        assert_eq!(output[0].as_str(), Some("3"));
    }
}
