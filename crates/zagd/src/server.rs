//! The batched front end: a minimal HTTP/1.1 server over a bounded
//! request queue.
//!
//! Shape:
//!
//! ```text
//! acceptor ──► bounded queue (reject with 503 + Retry-After when full)
//!                  │
//!          service workers (pop, parse, dispatch)
//!                  │
//!          per-request execution thread (catch_unwind panic isolation,
//!          recv_timeout deadline → 504), running the program on its own
//!          zomp::Runtime while parallel regions multiplex the shared
//!          worker pool
//! ```
//!
//! Endpoints: `POST /run` (see [`crate::request`]), `GET /stats`
//! (cache/queue counters), `GET /health`.
//!
//! Backpressure is explicit: the acceptor never queues more than
//! `queue_cap` connections; beyond that clients get `503` with a
//! `Retry-After` hint instead of unbounded latency. A request that
//! outlives its deadline gets `504`; its execution thread is left to
//! finish in the background (threads cannot be cancelled safely), which
//! the `/stats` `abandoned` counter makes visible.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::cache::ProgramCache;
use crate::json::{obj, Json};
use crate::request::{execute, RunRequest};

/// Tunables for one server instance.
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7099` (`:0` for an ephemeral port).
    pub addr: String,
    /// Service worker threads (concurrent request executions).
    pub workers: usize,
    /// Accepted-but-unserviced connection bound; beyond it, 503.
    pub queue_cap: usize,
    /// Compiled-program cache capacity (distinct source/opt/backend keys).
    pub cache_cap: usize,
    /// Deadline for requests that do not carry `timeout_ms`.
    pub default_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7099".into(),
            workers: 4,
            queue_cap: 64,
            cache_cap: 128,
            default_timeout_ms: 30_000,
        }
    }
}

struct State {
    cfg: ServerConfig,
    cache: ProgramCache,
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    served: AtomicU64,
    rejected: AtomicU64,
    timeouts: AtomicU64,
    panics: AtomicU64,
    abandoned: AtomicU64,
}

/// A bound-but-not-yet-serving server. [`Server::start`] spawns the
/// worker and acceptor threads and returns the resolved address.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let cache = ProgramCache::new(cfg.cache_cap);
        Ok(Server {
            listener,
            state: Arc::new(State {
                cfg,
                cache,
                queue: Mutex::new(VecDeque::new()),
                ready: Condvar::new(),
                served: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                timeouts: AtomicU64::new(0),
                panics: AtomicU64::new(0),
                abandoned: AtomicU64::new(0),
            }),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Spawn the service workers and the acceptor; returns immediately
    /// with the bound address. The threads run for the life of the
    /// process (the daemon has no graceful shutdown story yet — it is
    /// killed, and clients retry).
    pub fn start(self) -> SocketAddr {
        let addr = self.local_addr();
        for _ in 0..self.state.cfg.workers.max(1) {
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || worker_loop(&state));
        }
        let state = self.state;
        let listener = self.listener;
        std::thread::spawn(move || accept_loop(&listener, &state));
        addr
    }
}

fn accept_loop(listener: &TcpListener, state: &State) {
    for conn in listener.incoming() {
        let Ok(conn) = conn else { continue };
        let mut queue = state.queue.lock().unwrap();
        if queue.len() >= state.cfg.queue_cap {
            drop(queue);
            state.rejected.fetch_add(1, Ordering::Relaxed);
            // Reject off-thread: write the 503, then drain whatever the
            // client was still sending before closing. Closing with
            // unread bytes in the receive buffer triggers an RST that
            // can destroy the response before the client reads it.
            std::thread::spawn(move || {
                let _ = respond(
                    &conn,
                    503,
                    &[("Retry-After", "1")],
                    &obj([
                        ("ok", Json::Bool(false)),
                        ("error", Json::Str("queue full, retry later".into())),
                    ])
                    .render(),
                );
                let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
                let mut sink = [0u8; 4096];
                let mut r = &conn;
                while matches!(r.read(&mut sink), Ok(n) if n > 0) {}
            });
            continue;
        }
        queue.push_back(conn);
        state.ready.notify_one();
    }
}

fn worker_loop(state: &State) {
    loop {
        let conn = {
            let mut queue = state.queue.lock().unwrap();
            loop {
                if let Some(c) = queue.pop_front() {
                    break c;
                }
                queue = state.ready.wait(queue).unwrap();
            }
        };
        handle_conn(state, conn);
    }
}

/// One parsed HTTP request.
struct HttpRequest {
    method: String,
    path: String,
    body: String,
}

fn handle_conn(state: &State, mut conn: TcpStream) {
    // A stalled client must not pin a service worker forever.
    let _ = conn.set_read_timeout(Some(Duration::from_secs(10)));
    let req = match read_request(&mut conn) {
        Ok(r) => r,
        Err(e) => {
            let _ = respond(
                &conn,
                400,
                &[],
                &obj([
                    ("ok", Json::Bool(false)),
                    ("error", Json::Str(format!("bad request: {e}"))),
                ])
                .render(),
            );
            return;
        }
    };
    state.served.fetch_add(1, Ordering::Relaxed);
    let (status, headers, body): (u16, Vec<(&str, String)>, String) =
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/health") => (200, vec![], obj([("ok", Json::Bool(true))]).render()),
            ("GET", "/stats") => (200, vec![], stats_json(state).render()),
            ("POST", "/run") => {
                let (status, body) = handle_run(state, &req.body);
                (status, vec![], body)
            }
            _ => (
                404,
                vec![],
                obj([
                    ("ok", Json::Bool(false)),
                    (
                        "error",
                        Json::Str(format!("no route {} {}", req.method, req.path)),
                    ),
                ])
                .render(),
            ),
        };
    let hdrs: Vec<(&str, &str)> = headers.iter().map(|(k, v)| (*k, v.as_str())).collect();
    let _ = respond(&conn, status, &hdrs, &body);
}

fn stats_json(state: &State) -> Json {
    obj([
        ("ok", Json::Bool(true)),
        (
            "cache",
            obj([
                ("hits", Json::Int(state.cache.hits() as i64)),
                ("misses", Json::Int(state.cache.misses() as i64)),
                ("entries", Json::Int(state.cache.entries() as i64)),
                ("hit_rate", Json::Float(state.cache.hit_rate())),
            ]),
        ),
        (
            "queue",
            obj([
                ("depth", Json::Int(state.queue.lock().unwrap().len() as i64)),
                ("cap", Json::Int(state.cfg.queue_cap as i64)),
            ]),
        ),
        ("workers", Json::Int(state.cfg.workers as i64)),
        (
            "served",
            Json::Int(state.served.load(Ordering::Relaxed) as i64),
        ),
        (
            "rejected",
            Json::Int(state.rejected.load(Ordering::Relaxed) as i64),
        ),
        (
            "timeouts",
            Json::Int(state.timeouts.load(Ordering::Relaxed) as i64),
        ),
        (
            "panics",
            Json::Int(state.panics.load(Ordering::Relaxed) as i64),
        ),
        (
            "abandoned",
            Json::Int(state.abandoned.load(Ordering::Relaxed) as i64),
        ),
    ])
}

/// Parse, execute with deadline + panic isolation, and produce the
/// response body for one `/run`.
fn handle_run(state: &State, body: &str) -> (u16, String) {
    let parsed = Json::parse(body).and_then(|j| RunRequest::from_json(&j));
    let req = match parsed {
        Ok(r) => r,
        Err(e) => {
            return (
                400,
                obj([("ok", Json::Bool(false)), ("error", Json::Str(e))]).render(),
            )
        }
    };
    let deadline = Duration::from_millis(req.timeout_ms.unwrap_or(state.cfg.default_timeout_ms));

    // The program runs on its own thread so the service worker can give
    // up at the deadline. `execute` builds the per-request runtime; any
    // parallel regions inside fan out on the shared zomp worker pool.
    let (tx, rx) = mpsc::channel();
    let cache = CachePtr(&state.cache);
    std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let out = execute(cache.get(), &req);
            (out.status, out.body.render())
        }));
        let msg = match result {
            Ok((status, body)) => (status, body, false),
            Err(p) => {
                let text = p
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "program panicked".to_string());
                (
                    500,
                    obj([
                        ("ok", Json::Bool(false)),
                        ("error", Json::Str(format!("panic: {text}"))),
                    ])
                    .render(),
                    true,
                )
            }
        };
        let _ = tx.send(msg);
    });
    match rx.recv_timeout(deadline) {
        Ok((status, body, panicked)) => {
            if panicked {
                state.panics.fetch_add(1, Ordering::Relaxed);
            }
            (status, body)
        }
        Err(_) => {
            state.timeouts.fetch_add(1, Ordering::Relaxed);
            state.abandoned.fetch_add(1, Ordering::Relaxed);
            (
                504,
                obj([
                    ("ok", Json::Bool(false)),
                    (
                        "error",
                        Json::Str(format!(
                            "deadline exceeded after {} ms",
                            deadline.as_millis()
                        )),
                    ),
                ])
                .render(),
            )
        }
    }
}

/// The program cache outlives every request (it sits in the leaked-for-
/// process-lifetime server `State`), so hand request threads a raw
/// pointer wrapped to be `Send`.
struct CachePtr(*const ProgramCache);
unsafe impl Send for CachePtr {}
impl CachePtr {
    fn get(&self) -> &ProgramCache {
        // SAFETY: `State` (and the cache inside it) is kept alive for the
        // life of the process by the acceptor/worker threads' `Arc`s.
        unsafe { &*self.0 }
    }
}

fn read_request(conn: &mut TcpStream) -> Result<HttpRequest, String> {
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    // Read until the header terminator.
    let header_end = loop {
        let n = conn.read(&mut tmp).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-request".into());
        }
        buf.extend_from_slice(&tmp[..n]);
        if let Some(p) = find_crlf2(&buf) {
            break p;
        }
        if buf.len() > 64 * 1024 {
            return Err("headers too large".into());
        }
    };
    let head = std::str::from_utf8(&buf[..header_end]).map_err(|e| e.to_string())?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("missing method")?.to_string();
    let path = parts.next().ok_or("missing path")?.to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().map_err(|_| "bad content-length")?;
            }
        }
    }
    if content_length > 16 * 1024 * 1024 {
        return Err("body too large".into());
    }
    let body_start = header_end + 4;
    while buf.len() < body_start + content_length {
        let n = conn.read(&mut tmp).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        buf.extend_from_slice(&tmp[..n]);
    }
    let body = String::from_utf8(buf[body_start..body_start + content_length].to_vec())
        .map_err(|e| e.to_string())?;
    Ok(HttpRequest { method, path, body })
}

fn find_crlf2(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn respond(
    conn: &TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    let mut w = conn;
    w.write_all(head.as_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}
