//! `zagd` — the persistent compile-and-run daemon.
//!
//! ```text
//! zagd [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N]
//!      [--timeout-ms N]
//! ```
//!
//! Serves `POST /run`, `GET /stats`, `GET /health` (see the crate docs
//! for the request protocol). Per-request execution knobs come in the
//! request body; daemon flags only size the service itself.

use zagd::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: zagd [--addr HOST:PORT] [--workers N] [--queue-cap N] [--cache-cap N] \
         [--timeout-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| -> String {
            a.strip_prefix(&format!("{flag}="))
                .map(str::to_string)
                .or_else(|| args.next())
                .unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            s if s.starts_with("--addr=") => cfg.addr = value("--addr"),
            "--workers" => cfg.workers = parse(&value("--workers")),
            s if s.starts_with("--workers=") => cfg.workers = parse(&value("--workers")),
            "--queue-cap" => cfg.queue_cap = parse(&value("--queue-cap")),
            s if s.starts_with("--queue-cap=") => cfg.queue_cap = parse(&value("--queue-cap")),
            "--cache-cap" => cfg.cache_cap = parse(&value("--cache-cap")),
            s if s.starts_with("--cache-cap=") => cfg.cache_cap = parse(&value("--cache-cap")),
            "--timeout-ms" => cfg.default_timeout_ms = parse(&value("--timeout-ms")),
            s if s.starts_with("--timeout-ms=") => {
                cfg.default_timeout_ms = parse(&value("--timeout-ms"))
            }
            _ => usage(),
        }
    }
    let server = Server::bind(cfg).unwrap_or_else(|e| {
        eprintln!("zagd: cannot bind: {e}");
        std::process::exit(1);
    });
    let addr = server.start();
    eprintln!("zagd: serving on http://{addr} (POST /run, GET /stats, GET /health)");
    // The acceptor and workers are detached threads; keep the process up.
    loop {
        std::thread::park();
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| usage())
}
