//! `serve-bench` — measure the `zagd` service end to end and emit
//! `BENCH_serve.json`.
//!
//! Starts an in-process server, then drives it the way a client fleet
//! would: a warm-up round that populates the compiled-program cache,
//! followed by timed rounds of concurrent `POST /run` requests cycling
//! through the CG/EP/IS demo programs with varying per-request
//! `threads`. Reported: programs/sec, p50/p99 request latency, and the
//! cache hit rate.
//!
//! Usage: `serve-bench [OUT | --smoke]` (default `BENCH_serve.json`).
//! `--smoke` runs a reduced load and exits nonzero unless the cache hit
//! rate is positive and throughput clears a conservative floor — the CI
//! regression guard.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use zagd::json::Json;
use zagd::{client, demo, Server, ServerConfig};

/// One benchmark workload: a program plus its entry/args request body.
struct Load {
    name: &'static str,
    body: String,
}

fn loads(small: bool) -> Vec<Load> {
    let (cg_n, ep_m, is_n) = if small {
        (400, 10, 1500)
    } else {
        (1200, 14, 6000)
    };
    vec![
        Load {
            name: "cg",
            body: run_body(&demo::cg(), "cg_demo", &format!("[{cg_n}, 2, 2]"), 2),
        },
        Load {
            name: "ep",
            body: run_body(&demo::ep(), "ep_demo", &format!("[{ep_m}, 8, 2]"), 2),
        },
        Load {
            name: "is",
            body: run_body(&demo::is(), "is_demo", &format!("[{is_n}, 9, 4, 2]"), 2),
        },
    ]
}

fn run_body(source: &str, entry: &str, args: &str, threads: usize) -> String {
    Json::Obj(
        [
            ("source".to_string(), Json::Str(source.to_string())),
            ("entry".to_string(), Json::Str(entry.to_string())),
            ("args".to_string(), Json::parse(args).unwrap()),
            ("threads".to_string(), Json::Int(threads as i64)),
            ("timeout_ms".to_string(), Json::Int(60_000)),
        ]
        .into_iter()
        .collect(),
    )
    .render()
}

/// Fire `total` requests at `addr` from `clients` threads, cycling the
/// workloads; returns each request's latency in milliseconds.
fn drive(addr: SocketAddr, loads: &Arc<Vec<Load>>, clients: usize, total: usize) -> Vec<f64> {
    let mut handles = Vec::new();
    let per = total / clients;
    for c in 0..clients {
        let loads = Arc::clone(loads);
        handles.push(std::thread::spawn(move || {
            let mut lat = Vec::with_capacity(per);
            for i in 0..per {
                let load = &loads[(c + i) % loads.len()];
                let t0 = Instant::now();
                let resp = client::post(addr, "/run", &load.body)
                    .unwrap_or_else(|e| panic!("{}: transport error: {e}", load.name));
                assert_eq!(
                    resp.status, 200,
                    "{}: unexpected status {}: {}",
                    load.name, resp.status, resp.body
                );
                lat.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            lat
        }));
    }
    let mut all = Vec::with_capacity(total);
    for h in handles {
        all.extend(h.join().expect("client thread"));
    }
    all
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let arg = std::env::args().nth(1);
    let smoke = arg.as_deref() == Some("--smoke");
    let out = if smoke {
        None
    } else {
        Some(arg.unwrap_or_else(|| "BENCH_serve.json".into()))
    };

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        queue_cap: 128,
        cache_cap: 32,
        default_timeout_ms: 120_000,
    })
    .expect("bind");
    let addr = server.start();

    let loads = Arc::new(loads(smoke));
    let (clients, total) = if smoke { (4, 24) } else { (6, 120) };

    // Warm-up: one request per workload compiles and fills the cache
    // (every timed request after this should be a cache hit).
    eprintln!("warm-up (compiling {} programs)...", loads.len());
    for load in loads.iter() {
        let resp = client::post(addr, "/run", &load.body).expect("warm-up");
        assert_eq!(resp.status, 200, "{}: {}", load.name, resp.body);
    }

    eprintln!("driving {total} requests from {clients} clients...");
    let t0 = Instant::now();
    let mut lat = drive(addr, &loads, clients, total);
    let wall = t0.elapsed().as_secs_f64();
    lat.sort_by(|a, b| a.total_cmp(b));

    let stats = client::get(addr, "/stats").expect("stats");
    let stats_json = Json::parse(&stats.body).expect("stats JSON");
    let cache = stats_json.get("cache").expect("cache block");
    let hit_rate = cache.get("hit_rate").and_then(Json::as_f64).unwrap_or(0.0);
    let programs_per_sec = lat.len() as f64 / wall;
    let p50 = percentile(&lat, 0.50);
    let p99 = percentile(&lat, 0.99);

    let meta = zomp_bench::meta::json_object();
    let json = format!(
        "{{\n  \"meta\": {meta},\n  \"workloads\": [\"cg\", \"ep\", \"is\"],\n  \
         \"clients\": {clients},\n  \"requests\": {},\n  \
         \"programs_per_sec\": {programs_per_sec:.2},\n  \
         \"latency_ms\": {{\"p50\": {p50:.2}, \"p99\": {p99:.2}}},\n  \
         \"cache\": {}\n}}\n",
        lat.len(),
        cache.render(),
    );
    print!("{json}");

    if let Some(out) = out {
        std::fs::write(&out, &json).expect("write BENCH_serve.json");
        eprintln!("wrote {out}");
    }

    if smoke {
        // The guard: re-submission must hit the cache, and the service
        // must clear a floor far below any healthy configuration so the
        // check only trips on real regressions (compile-per-request,
        // serialized execution).
        assert!(
            hit_rate > 0.5,
            "smoke: cache hit rate {hit_rate:.2} <= 0.5 — recompiling per request?"
        );
        assert!(
            programs_per_sec > 2.0,
            "smoke: {programs_per_sec:.2} programs/sec under the floor"
        );
        eprintln!(
            "smoke ok: {programs_per_sec:.1} programs/sec, hit rate {hit_rate:.2}, p99 {p99:.1} ms"
        );
    }
}
