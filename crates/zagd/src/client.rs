//! A minimal blocking HTTP/1.1 client, enough to talk to [`crate::server`]
//! from the bench driver, the CI smoke test, and the integration suite.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code, headers (lower-cased names), body.
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// `POST path body` (JSON) to `addr`; blocks until the full response.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> Result<Response, String> {
    request(addr, "POST", path, Some(body))
}

/// `GET path` from `addr`.
pub fn get(addr: SocketAddr, path: &str) -> Result<Response, String> {
    request(addr, "GET", path, None)
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, String> {
    let mut conn =
        TcpStream::connect_timeout(&addr, Duration::from_secs(5)).map_err(|e| e.to_string())?;
    let _ = conn.set_read_timeout(Some(Duration::from_secs(120)));
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: zagd\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).map_err(|e| e.to_string())?;
    conn.write_all(body.as_bytes()).map_err(|e| e.to_string())?;
    let mut raw = Vec::new();
    conn.read_to_end(&mut raw).map_err(|e| e.to_string())?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Result<Response, String> {
    let text = std::str::from_utf8(raw).map_err(|e| e.to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or("malformed response: no header terminator")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(Response {
        status,
        headers,
        body: body.to_string(),
    })
}
