//! `zagd` — a persistent compile-and-run service for Zag programs.
//!
//! The classic `zag` CLI pays the full pipeline — preprocess, parse,
//! lint, optimize — on every invocation. `zagd` keeps a process alive
//! and amortizes it:
//!
//! * a **compiled-program cache** ([`cache::ProgramCache`]) keyed by
//!   source hash + (opt level, backend): parse/lint/compile once at
//!   `--opt=3`, run many;
//! * a **shared worker pool**: every program execution gets its own
//!   [`zomp::Runtime`] (ICVs, critical sections, threadprivate storage),
//!   while the parallel regions inside all multiplex one hot team;
//! * a **batched front end** ([`server::Server`]): a local HTTP socket
//!   with bounded request queues, reject-with-`Retry-After`
//!   backpressure, and per-request deadline + panic isolation.
//!
//! The request protocol is plain JSON over HTTP/1.1 ([`request`]); the
//! in-crate [`json`] module supplies parsing because the workspace's
//! vendored `serde_json` stand-in is serialize-only.
//!
//! ```text
//! $ zagd --addr 127.0.0.1:7099 &
//! $ curl -s 127.0.0.1:7099/run -d '{"source": "fn main() void { print(6*7); }"}'
//! {"cached":false, ..., "output":["42"],"result":null,"ok":true}
//! ```

pub mod cache;
pub mod client;
pub mod demo;
pub mod json;
pub mod request;
pub mod server;

pub use cache::ProgramCache;
pub use json::Json;
pub use request::{execute, RunOutcome, RunRequest};
pub use server::{Server, ServerConfig};
