//! Self-contained Zag programs served by the bench driver, the CI smoke
//! test, and the integration suite.
//!
//! Each is the corresponding NPB port from `zomp_bench::ports` plus a
//! Zag-side driver that builds the input arrays in-program, so a request
//! needs only scalar arguments. `cg_demo` and `is_demo` produce integer
//! or per-element results (no cross-thread float reduction), making
//! their output bit-identical regardless of interleaving — the property
//! the isolation stress tests assert.

use zomp_bench::ports::{ZAG_EP, ZAG_MATVEC, ZAG_RANK};

/// CG-flavoured: tridiagonal CSR matvec (dynamic schedule), returns the
/// checksum of the result vector. Entry: `cg_demo(n, reps, nthreads) f64`.
pub fn cg() -> String {
    format!(
        "{ZAG_MATVEC}\n{}",
        r#"
fn cg_demo(n: i64, reps: i64, nthreads: i64) f64 {
    var rowstr: []i64 = @allocI(n + 1);
    var colidx: []i64 = @allocI(3 * n);
    var a: []f64 = @allocF(3 * n);
    var p: []f64 = @allocF(n);
    var q: []f64 = @allocF(n);
    var pos: i64 = 0;
    var i: i64 = 0;
    while (i < n) : (i += 1) {
        rowstr[i] = pos;
        if (i > 0) {
            colidx[pos] = i - 1;
            a[pos] = 0.0 - 1.0;
            pos += 1;
        }
        colidx[pos] = i;
        a[pos] = 4.0;
        pos += 1;
        if (i < n - 1) {
            colidx[pos] = i + 1;
            a[pos] = 0.0 - 1.0;
            pos += 1;
        }
        p[i] = @intToFloat(i - n / 2);
        q[i] = 0.0;
    }
    rowstr[n] = pos;
    matvec(n, rowstr, colidx, a, p, q, reps, nthreads);
    var s: f64 = 0.0;
    var j: i64 = 0;
    while (j < n) : (j += 1) {
        s = s + q[j] * @intToFloat(j % 7 + 1);
    }
    return s;
}
"#
    )
}

/// EP-flavoured: the 46-bit LCG Gaussian pairs with region reductions.
/// Entry: `ep_demo(m, mk, nthreads) f64`.
pub fn ep() -> String {
    format!(
        "{ZAG_EP}\n{}",
        r#"
fn ep_demo(m: i64, mk: i64, nthreads: i64) f64 {
    var q: []f64 = @allocF(10);
    return ep(m, mk, nthreads, q);
}
"#
    )
}

/// IS-flavoured: bucketed counting rank over Lehmer-LCG keys; returns an
/// integer checksum of the rank array, bit-stable by construction.
/// Entry: `is_demo(nkeys, maxlog, nblog, nthreads) i64`.
pub fn is() -> String {
    format!(
        "{ZAG_RANK}\n{}",
        r#"
fn is_demo(nkeys: i64, maxlog: i64, nblog: i64, nthreads: i64) i64 {
    var maxkey: i64 = 1;
    var m0: i64 = 0;
    while (m0 < maxlog) : (m0 += 1) {
        maxkey = maxkey * 2;
    }
    var nb: i64 = 1;
    var b0: i64 = 0;
    while (b0 < nblog) : (b0 += 1) {
        nb = nb * 2;
    }
    var keys: []i64 = @allocI(nkeys);
    var seed: i64 = 12345;
    var i: i64 = 0;
    while (i < nkeys) : (i += 1) {
        seed = (seed * 16807) % 2147483647;
        keys[i] = seed % maxkey;
    }
    var counts: []i64 = @allocI(nthreads * nb);
    var starts: []i64 = @allocI(nb + 1);
    var buff2: []i64 = @allocI(nkeys);
    var ranks: []i64 = @allocI(maxkey);
    rank(keys, nkeys, maxlog, nblog, counts, starts, buff2, ranks, nthreads);
    var sum: i64 = 0;
    var k: i64 = 0;
    while (k < maxkey) : (k += 1) {
        sum = sum + ranks[k] * (k % 13 + 1);
    }
    return sum;
}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use zomp_vm::{Backend, OptLevel, Value, Vm};

    fn run(source: &str, entry: &str, args: Vec<Value>) -> Value {
        let vm = Vm::build(source, None, Backend::Bytecode, OptLevel::O2)
            .unwrap_or_else(|e| panic!("{}", e.render(source)));
        vm.call_function(entry, args)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    #[test]
    fn cg_demo_is_deterministic_across_team_sizes() {
        let src = cg();
        let solo = run(
            &src,
            "cg_demo",
            vec![Value::Int(500), Value::Int(2), Value::Int(1)],
        )
        .as_float()
        .unwrap();
        let four = run(
            &src,
            "cg_demo",
            vec![Value::Int(500), Value::Int(2), Value::Int(4)],
        )
        .as_float()
        .unwrap();
        assert_eq!(
            solo.to_bits(),
            four.to_bits(),
            "per-element matvec must not depend on team size"
        );
    }

    #[test]
    fn is_demo_is_deterministic_across_team_sizes() {
        let src = is();
        let args = |nt: i64| {
            vec![
                Value::Int(2000),
                Value::Int(9),
                Value::Int(4),
                Value::Int(nt),
            ]
        };
        assert_eq!(
            run(&src, "is_demo", args(1)).as_int().unwrap(),
            run(&src, "is_demo", args(4)).as_int().unwrap()
        );
    }

    #[test]
    fn ep_demo_executes() {
        let src = ep();
        let v = run(
            &src,
            "ep_demo",
            vec![Value::Int(12), Value::Int(8), Value::Int(2)],
        );
        assert!(matches!(v, Value::Float(x) if x.is_finite()));
    }
}
