//! End-to-end tests: a real `zagd` server on an ephemeral port, driven
//! over TCP by the crate's blocking client.
//!
//! Each test binds its own server instance, so they can run in parallel
//! within the test binary without sharing caches or counters.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use zagd::json::Json;
use zagd::{client, demo, Server, ServerConfig};

fn start(workers: usize, queue_cap: usize) -> SocketAddr {
    Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_cap,
        cache_cap: 16,
        default_timeout_ms: 60_000,
    })
    .expect("bind ephemeral")
    .start()
}

fn body(source: &str, entry: &str, args: &str, threads: usize) -> String {
    format!(
        r#"{{"source": {}, "entry": "{entry}", "args": {args}, "threads": {threads}}}"#,
        Json::Str(source.to_string()).render()
    )
}

fn post_ok(addr: SocketAddr, body: &str) -> Json {
    let resp = client::post(addr, "/run", body).expect("transport");
    assert_eq!(resp.status, 200, "{}", resp.body);
    Json::parse(&resp.body).expect("response JSON")
}

#[test]
fn health_and_stats_respond() {
    let addr = start(2, 8);
    let health = client::get(addr, "/health").unwrap();
    assert_eq!(health.status, 200);
    let stats = client::get(addr, "/stats").unwrap();
    assert_eq!(stats.status, 200);
    let j = Json::parse(&stats.body).unwrap();
    assert_eq!(j.get("ok"), Some(&Json::Bool(true)));
    assert!(j.get("cache").and_then(|c| c.get("entries")).is_some());
}

#[test]
fn unknown_route_is_404_and_bad_json_is_400() {
    let addr = start(2, 8);
    let resp = client::get(addr, "/nope").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client::post(addr, "/run", "{not json").unwrap();
    assert_eq!(resp.status, 400);
}

#[test]
fn concurrent_npb_programs_share_one_server() {
    let addr = start(4, 32);
    let cg = body(&demo::cg(), "cg_demo", "[400, 2, 2]", 2);
    let ep = body(&demo::ep(), "ep_demo", "[12, 8, 2]", 2);
    let is = body(&demo::is(), "is_demo", "[1500, 9, 4, 2]", 2);
    let bodies = [cg, ep, is];
    let handles: Vec<_> = (0..9)
        .map(|i| {
            let b = bodies[i % 3].clone();
            std::thread::spawn(move || post_ok(addr, &b))
        })
        .collect();
    for h in handles {
        let j = h.join().expect("request thread");
        assert_eq!(j.get("ok"), Some(&Json::Bool(true)));
        assert!(j.get("result").is_some());
    }
}

#[test]
fn resubmission_hits_the_cache() {
    let addr = start(2, 8);
    let b = body(&demo::ep(), "ep_demo", "[10, 8, 2]", 2);
    let first = post_ok(addr, &b);
    assert_eq!(first.get("cached"), Some(&Json::Bool(false)));
    let second = post_ok(addr, &b);
    assert_eq!(second.get("cached"), Some(&Json::Bool(true)));
    let stats = Json::parse(&client::get(addr, "/stats").unwrap().body).unwrap();
    let cache = stats.get("cache").unwrap();
    assert!(cache.get("hits").and_then(Json::as_i64).unwrap() >= 1);
    assert!(cache.get("hit_rate").and_then(Json::as_f64).unwrap() > 0.0);
}

#[test]
fn identical_programs_at_different_team_sizes_agree() {
    // The isolation claim, end to end: the same deterministic program
    // run concurrently under different per-request `threads` settings
    // returns bit-identical results.
    let addr = start(4, 16);
    let src = demo::is();
    let handles: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|nt| {
            let b = body(&src, "is_demo", "[1500, 9, 4, 2]", nt);
            std::thread::spawn(move || {
                post_ok(addr, &b)
                    .get("result")
                    .and_then(Json::as_i64)
                    .expect("integer result")
            })
        })
        .collect();
    let results: Vec<i64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
}

#[test]
fn queue_overflow_rejects_with_retry_after() {
    // One worker, queue of one. A slow request pins the worker; the next
    // connection fills the queue; the one after that must be rejected
    // immediately with 503 + Retry-After.
    let addr = start(1, 1);
    let slow = format!(
        r#"{{"source": {}, "timeout_ms": 3000}}"#,
        Json::Str(
            "fn main() void {\n    var i: i64 = 0;\n    while (i < 400000000) : (i += 1) {}\n}\n"
                .to_string()
        )
        .render()
    );
    let pin = std::thread::spawn(move || client::post(addr, "/run", &slow));
    std::thread::sleep(Duration::from_millis(300));
    // Occupies the single queue slot; never sends a request.
    let _parked = TcpStream::connect(addr).expect("connect");
    std::thread::sleep(Duration::from_millis(200));
    let resp = client::get(addr, "/stats").expect("rejected connection still gets a response");
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert_eq!(resp.header("retry-after"), Some("1"));
    let j = Json::parse(&resp.body).unwrap();
    assert_eq!(j.get("ok"), Some(&Json::Bool(false)));
    let _ = pin.join();
}

#[test]
fn deadline_exceeded_is_504_and_counted() {
    let addr = start(2, 8);
    let b = format!(
        r#"{{"source": {}, "timeout_ms": 250}}"#,
        Json::Str(
            "fn main() void {\n    var i: i64 = 0;\n    while (i < 2000000000) : (i += 1) {}\n}\n"
                .to_string()
        )
        .render()
    );
    let resp = client::post(addr, "/run", &b).unwrap();
    assert_eq!(resp.status, 504, "{}", resp.body);
    let stats = Json::parse(&client::get(addr, "/stats").unwrap().body).unwrap();
    assert!(stats.get("timeouts").and_then(Json::as_i64).unwrap() >= 1);
    assert!(stats.get("abandoned").and_then(Json::as_i64).unwrap() >= 1);
}

#[test]
fn failed_request_does_not_poison_the_server() {
    let addr = start(2, 8);
    // Out-of-bounds read: a runtime error surfaced as 500 with the
    // output emitted before the fault.
    let bad = format!(
        r#"{{"source": {}}}"#,
        Json::Str(
            "fn main() void {\n    print(1);\n    var a: []f64 = @allocF(2);\n    print(a[9]);\n}\n"
                .to_string()
        )
        .render()
    );
    let resp = client::post(addr, "/run", &bad).unwrap();
    assert_eq!(resp.status, 500, "{}", resp.body);
    let j = Json::parse(&resp.body).unwrap();
    assert_eq!(j.get("ok"), Some(&Json::Bool(false)));

    // Compile error: 422 with structured diagnostics.
    let broken = format!(
        r#"{{"source": {}}}"#,
        Json::Str("fn main() void { var x: i64 = ; }".to_string()).render()
    );
    let resp = client::post(addr, "/run", &broken).unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);
    let j = Json::parse(&resp.body).unwrap();
    let diags = j.get("diagnostics").and_then(Json::as_arr).unwrap();
    assert!(!diags.is_empty());
    assert!(diags[0].get("line").is_some());

    // The server still executes good programs afterwards.
    let good = body(&demo::ep(), "ep_demo", "[10, 8, 2]", 2);
    let j = post_ok(addr, &good);
    assert_eq!(j.get("ok"), Some(&Json::Bool(true)));
}

#[test]
fn per_request_icvs_do_not_bleed_between_concurrent_requests() {
    let addr = start(4, 16);
    let src = "fn main() void {\n    var t: i64 = omp.get_max_threads();\n    var i: i64 = 0;\n    while (i < 200000) : (i += 1) {}\n    if (t != omp.get_max_threads()) {\n        print(-1);\n    } else {\n        print(t);\n    }\n}\n";
    let handles: Vec<_> = [1usize, 2, 3, 4]
        .into_iter()
        .map(|nt| {
            let b = format!(
                r#"{{"source": {}, "threads": {nt}}}"#,
                Json::Str(src.to_string()).render()
            );
            std::thread::spawn(move || {
                let j = post_ok(addr, &b);
                let out = j.get("output").unwrap().as_arr().unwrap()[0]
                    .as_str()
                    .unwrap()
                    .to_string();
                (nt, out)
            })
        })
        .collect();
    for h in handles {
        let (nt, out) = h.join().unwrap();
        assert_eq!(out, nt.to_string(), "request saw another request's ICVs");
    }
}
