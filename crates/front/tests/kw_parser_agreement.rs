//! Keyword map ↔ parser agreement.
//!
//! `omp_kw::lookup` is the §III-A "hash map of strings to keyword tokens";
//! the parser consumes those tokens in directive and clause positions. The
//! two must stay in sync: every spelling in the map has to be *usable* in
//! at least one pragma the parser accepts, and every `OmpKw` variant has
//! to be reachable from some spelling. These tests fail when one side is
//! extended without the other.

use zomp_front::omp_kw;

/// A minimal program exercising the given keyword spelling in a pragma
/// position the parser accepts.
fn program_using(spelling: &str) -> String {
    let pragma_stmt = |pragma: &str| {
        format!(
            "fn main() void {{\n    var n: i64 = 8;\n    var x: i64 = 0;\n    \
             //$omp parallel shared(x) firstprivate(n)\n    {{\n        \
             var i: i64 = 0;\n        {pragma}\n        \
             while (i < n) : (i += 1) {{\n            x = x + 0;\n        }}\n    }}\n}}\n"
        )
    };
    match spelling {
        // Directives.
        "parallel" => "fn main() void {\n    //$omp parallel\n    { }\n}\n".to_string(),
        "while" | "for" => pragma_stmt(&format!("//$omp {spelling}")),
        "barrier" => {
            "fn main() void {\n    //$omp parallel\n    {\n        //$omp barrier\n    }\n}\n"
                .to_string()
        }
        "critical" => {
            "fn main() void {\n    //$omp parallel\n    {\n        //$omp critical\n        { }\n    }\n}\n"
                .to_string()
        }
        "master" => {
            "fn main() void {\n    //$omp parallel\n    {\n        //$omp master\n        { }\n    }\n}\n"
                .to_string()
        }
        "single" => {
            "fn main() void {\n    //$omp parallel\n    {\n        //$omp single\n        { }\n    }\n}\n"
                .to_string()
        }
        "atomic" => {
            "fn main() void {\n    var x: i64 = 0;\n    //$omp parallel shared(x)\n    {\n        \
             //$omp atomic\n        x += 1;\n    }\n}\n"
                .to_string()
        }
        // Parses at top level; the preprocessor rejects it later, but the
        // keyword itself must be recognised.
        "threadprivate" => {
            "//$omp threadprivate(g)\nfn main() void {\n    var g: i64 = 0;\n    g = g + 1;\n}\n"
                .to_string()
        }
        // Clauses on a worksharing loop.
        "private" => pragma_stmt("//$omp while private(x)"),
        "firstprivate" => pragma_stmt("//$omp while firstprivate(x)"),
        "shared" => "fn main() void {\n    var x: i64 = 0;\n    //$omp parallel shared(x)\n    { }\n}\n"
            .to_string(),
        "reduction" => pragma_stmt("//$omp while reduction(+: x)"),
        "schedule" | "static" => pragma_stmt("//$omp while schedule(static)"),
        "dynamic" => pragma_stmt("//$omp while schedule(dynamic, 4)"),
        "guided" => pragma_stmt("//$omp while schedule(guided)"),
        "runtime" => pragma_stmt("//$omp while schedule(runtime)"),
        "auto" => pragma_stmt("//$omp while schedule(auto)"),
        "nowait" => pragma_stmt("//$omp while nowait reduction(+: x)"),
        "default" | "none" => {
            "fn main() void {\n    //$omp parallel default(none)\n    { }\n}\n".to_string()
        }
        "num_threads" => {
            "fn main() void {\n    //$omp parallel num_threads(4)\n    { }\n}\n".to_string()
        }
        "collapse" => {
            "fn main() void {\n    var n: i64 = 4;\n    //$omp parallel firstprivate(n)\n    {\n        \
             var i: i64 = 0;\n        //$omp while collapse(2)\n        \
             while (i < n) : (i += 1) {\n            var j: i64 = 0;\n            \
             while (j < n) : (j += 1) {\n                print(i, j);\n            }\n        }\n    }\n}\n"
                .to_string()
        }
        "if" => "fn main() void {\n    //$omp parallel if(1)\n    { }\n}\n".to_string(),
        "min" => pragma_stmt("//$omp while reduction(min: x)"),
        "max" => pragma_stmt("//$omp while reduction(max: x)"),
        other => panic!("keyword map grew a spelling the agreement test does not cover: {other:?}"),
    }
}

#[test]
fn every_map_spelling_is_accepted_by_the_parser() {
    for (spelling, kw) in omp_kw::entries() {
        let program = program_using(spelling);
        if let Err(e) = zomp_front::parse(&program) {
            panic!(
                "spelling {spelling:?} ({kw:?}) is in the keyword map but the parser \
                 rejected a pragma using it: {}\nprogram:\n{program}",
                e.render(&program)
            );
        }
    }
}

#[test]
fn every_variant_has_a_spelling_in_the_map() {
    for &variant in omp_kw::VARIANTS {
        assert!(
            omp_kw::entries().iter().any(|&(_, k)| k == variant),
            "OmpKw::{variant:?} has no spelling in the keyword map"
        );
    }
}

#[test]
fn variant_list_is_exhaustive() {
    // Defensive: every keyword the map can produce must be in VARIANTS,
    // so the coverage test above cannot silently skip a variant.
    for (spelling, kw) in omp_kw::entries() {
        assert!(
            omp_kw::VARIANTS.contains(&kw),
            "map spelling {spelling:?} resolves to {kw:?}, which VARIANTS omits"
        );
    }
}
