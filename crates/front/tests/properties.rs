//! Property-based tests of the front-end: the tokenizer is total and
//! span-exact, clause packing round-trips arbitrary values, and the
//! preprocessor converges to a pragma-free fixed point on randomly
//! generated pragma programs.

use proptest::prelude::*;
use zomp_front::ast::{Clauses, PackedFlags, PackedSchedule, RedOpCode, SchedKind, MAX_CHUNK};
use zomp_front::token::{tokenize, Tag};
use zomp_front::{parse, preprocess};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The tokenizer never panics on arbitrary input.
    #[test]
    fn tokenizer_is_total(s in "\\PC{0,200}") {
        let _ = tokenize(&s);
    }

    /// Token spans tile the input: ordered, non-overlapping, in-bounds.
    #[test]
    fn token_spans_are_sane(s in "[a-z0-9+*<=;(){}\\[\\] .\n]{0,200}") {
        if let Ok(toks) = tokenize(&s) {
            let mut prev_end = 0u32;
            for t in &toks {
                prop_assert!(t.start <= t.end);
                prop_assert!(t.start >= prev_end || t.tag == Tag::Eof);
                prop_assert!((t.end as usize) <= s.len());
                prev_end = t.end;
            }
            prop_assert_eq!(toks.last().unwrap().tag, Tag::Eof);
        }
    }

    /// Packed schedule encoding round-trips every kind/chunk combination.
    #[test]
    fn packed_schedule_roundtrip(kind in 1u32..6, chunk in 0u32..=MAX_CHUNK) {
        let sched = PackedSchedule {
            kind: match kind {
                1 => SchedKind::Static,
                2 => SchedKind::Dynamic,
                3 => SchedKind::Guided,
                4 => SchedKind::Runtime,
                _ => SchedKind::Auto,
            },
            chunk: (chunk > 0).then_some(chunk),
        };
        prop_assert_eq!(PackedSchedule::decode(sched.encode()), sched);
    }

    /// Packed flags round-trip every field combination.
    #[test]
    fn packed_flags_roundtrip(default in 0u8..3, nowait in any::<bool>(),
                              collapse in 0u8..16, hnt in any::<bool>()) {
        let f = PackedFlags {
            default: match default {
                1 => zomp_front::ast::DefaultKind::Shared,
                2 => zomp_front::ast::DefaultKind::None,
                _ => zomp_front::ast::DefaultKind::NotSpecified,
            },
            nowait,
            collapse,
            has_num_threads: hnt,
        };
        prop_assert_eq!(PackedFlags::decode(f.encode()), f);
    }

    /// Clause blocks round-trip arbitrary list contents through extra_data.
    #[test]
    fn clause_block_roundtrip(
        private in proptest::collection::vec(0u32..10_000, 0..8),
        shared in proptest::collection::vec(0u32..10_000, 0..8),
        red_toks in proptest::collection::vec(0u32..10_000, 0..6),
        nt in proptest::option::of(1u32..5000),
    ) {
        let c = Clauses {
            schedule: Some(PackedSchedule { kind: SchedKind::Dynamic, chunk: Some(3) }),
            num_threads: nt,
            private: private.clone(),
            shared: shared.clone(),
            reduction: red_toks.iter().map(|&t| (RedOpCode::Add, t)).collect(),
            ..Default::default()
        };
        let mut extra = vec![7u32; 3];
        let base = c.write(&mut extra);
        let back = Clauses::read(&extra, base);
        prop_assert_eq!(back.private, private);
        prop_assert_eq!(back.shared, shared);
        prop_assert_eq!(back.reduction.len(), red_toks.len());
        prop_assert_eq!(back.num_threads, nt);
    }
}

/// Random pragma-program generator: a parallel region holding a randomised
/// worksharing loop (schedule, chunk, nowait, reduction op) plus optional
/// simple directives. Every generated program must preprocess to a
/// pragma-free fixed point that parses.
fn arb_program() -> impl Strategy<Value = String> {
    let sched = prop_oneof![
        Just(String::new()),
        Just("schedule(static)".to_string()),
        (1u32..64).prop_map(|c| format!("schedule(static, {c})")),
        (1u32..64).prop_map(|c| format!("schedule(dynamic, {c})")),
        Just("schedule(guided)".to_string()),
        Just("schedule(runtime)".to_string()),
    ];
    let red = prop_oneof![
        Just(("".to_string(), false)),
        Just(("reduction(+: acc)".to_string(), true)),
        Just(("reduction(max: acc)".to_string(), true)),
    ];
    let nowait = any::<bool>();
    let nthreads = 1u32..6;
    let trip = 1u32..200;
    let extras = prop_oneof![
        Just(""),
        Just("//$omp barrier\n"),
        Just("//$omp master\n{ acc = acc; }\n"),
        Just("//$omp single nowait\n{ acc = acc; }\n"),
    ];

    (sched, red, nowait, nthreads, trip, extras).prop_map(
        |(sched, (red, has_red), nowait, nthreads, trip, extras)| {
            let nowait = if nowait && !has_red { "nowait" } else { "" };
            let acc_update = if has_red { "acc = acc + 1;" } else { "_ = i;" };
            format!(
                "fn main() void {{\n\
                 var acc: i64 = 0;\n\
                 //$omp parallel num_threads({nthreads}) shared(acc)\n\
                 {{\n\
                 var i: i64 = 0;\n\
                 //$omp while {sched} {red} {nowait}\n\
                 while (i < {trip}) : (i += 1) {{\n{acc_update}\n}}\n\
                 {extras}\
                 }}\n\
                 _ = acc;\n\
                 }}\n"
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Preprocessing converges, eliminates all pragmas, yields parseable
    /// output, and is idempotent — for arbitrary clause combinations.
    #[test]
    fn preprocessor_reaches_pragma_free_fixed_point(src in arb_program()) {
        let once = preprocess(&src)
            .map_err(|e| TestCaseError::fail(format!("{}\n{src}", e.render(&src))))?;
        let ast = parse(&once)
            .map_err(|e| TestCaseError::fail(format!("output does not parse: {}\n{once}", e.render(&once))))?;
        prop_assert!(!ast.has_pragmas(), "pragmas left:\n{once}");
        let twice = preprocess(&once).unwrap();
        prop_assert_eq!(&once, &twice, "not idempotent");
    }
}

/// The generated programs do not just preprocess — they run and produce the
/// right answer (sampled more sparsely: each case spins up real threads).
#[test]
fn random_programs_execute_correctly() {
    use proptest::strategy::ValueTree;
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    for _ in 0..12 {
        let src = arb_program().new_tree(&mut runner).unwrap().current();
        let out = zomp_vm::Vm::run(&src)
            .map_err(|e| panic!("{e}\n--- source ---\n{src}"))
            .unwrap();
        assert!(out.is_empty(), "no prints expected");
    }
}
