//! A canonical formatter: AST back to Zag source.
//!
//! Directives are reconstructed *from their packed clause blocks*, so a
//! format→parse round trip exercises the full Fig. 2 encode/decode path.
//! The output is canonical rather than byte-faithful: expressions are
//! fully parenthesised and one statement goes per line — but re-parsing
//! yields a structurally identical AST (same node-tag sequence), which the
//! round-trip tests pin.

use crate::ast::{Ast, Clauses, DefaultKind, NodeId, RedOpCode, SchedKind, Tag};

/// Format the whole program.
pub fn format(ast: &Ast) -> String {
    let mut out = String::new();
    let root = *ast.node(ast.root);
    for &decl in ast.range(&root) {
        fmt_stmt(ast, decl, 0, &mut out);
        out.push('\n');
    }
    out
}

fn indent(depth: usize, out: &mut String) {
    out.push_str(&"    ".repeat(depth));
}

fn fmt_stmt(ast: &Ast, id: NodeId, depth: usize, out: &mut String) {
    let node = *ast.node(id);
    match node.tag {
        Tag::FnDecl => {
            let n = node.rhs as usize;
            let params = ast.extra(node.lhs, node.lhs + n as u32).to_vec();
            let body = ast.extra_data[(node.lhs as usize) + n];
            indent(depth, out);
            out.push_str(&format!("fn {}(", ast.token_text(node.main_token)));
            for (i, &p) in params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let pn = ast.node(p);
                out.push_str(&format!(
                    "{}: {}",
                    ast.token_text(pn.main_token),
                    ast.token_text(pn.lhs)
                ));
            }
            out.push_str(") void ");
            fmt_block(ast, body, depth, out);
            out.push('\n');
        }
        Tag::Block => {
            indent(depth, out);
            fmt_block(ast, id, depth, out);
            out.push('\n');
        }
        Tag::VarDecl | Tag::ConstDecl => {
            indent(depth, out);
            let kw = if node.tag == Tag::VarDecl {
                "var"
            } else {
                "const"
            };
            out.push_str(&format!("{kw} {}", ast.token_text(node.main_token)));
            if node.lhs > 0 {
                out.push_str(&format!(": {}", ast.token_text(node.lhs - 1)));
            }
            out.push_str(" = ");
            fmt_expr(ast, node.rhs - 1, out);
            out.push_str(";\n");
        }
        Tag::Assign => {
            indent(depth, out);
            fmt_expr(ast, node.lhs, out);
            out.push_str(" = ");
            fmt_expr(ast, node.rhs, out);
            out.push_str(";\n");
        }
        Tag::CompoundAssign => {
            indent(depth, out);
            fmt_expr(ast, node.lhs, out);
            out.push_str(&format!(" {} ", ast.token_text(node.main_token)));
            fmt_expr(ast, node.rhs, out);
            out.push_str(";\n");
        }
        Tag::While => {
            indent(depth, out);
            fmt_while_header(ast, &node, out);
            let body = ast.extra_data[node.rhs as usize];
            fmt_attached(ast, body, depth, out);
        }
        Tag::If => {
            indent(depth, out);
            out.push_str("if (");
            fmt_expr(ast, node.lhs, out);
            out.push_str(") ");
            let then = ast.extra_data[node.rhs as usize];
            let els = ast.extra_data[node.rhs as usize + 1];
            fmt_block(ast, then, depth, out);
            if els > 0 {
                out.push_str(" else ");
                let e = els - 1;
                if ast.node(e).tag == Tag::If {
                    // else-if chains continue on the same line.
                    let mut chain = String::new();
                    fmt_stmt(ast, e, 0, &mut chain);
                    out.push_str(chain.trim_start());
                    return;
                }
                fmt_block(ast, e, depth, out);
            }
            out.push('\n');
        }
        Tag::Return => {
            indent(depth, out);
            out.push_str("return");
            if node.lhs > 0 {
                out.push(' ');
                fmt_expr(ast, node.lhs - 1, out);
            }
            out.push_str(";\n");
        }
        Tag::Break => {
            indent(depth, out);
            out.push_str("break;\n");
        }
        Tag::Continue => {
            indent(depth, out);
            out.push_str("continue;\n");
        }
        Tag::Discard => {
            indent(depth, out);
            out.push_str("_ = ");
            fmt_expr(ast, node.lhs, out);
            out.push_str(";\n");
        }
        Tag::ExprStmt => {
            indent(depth, out);
            fmt_expr(ast, node.lhs, out);
            out.push_str(";\n");
        }
        Tag::OmpParallel
        | Tag::OmpWhile
        | Tag::OmpBarrier
        | Tag::OmpCritical
        | Tag::OmpMaster
        | Tag::OmpSingle
        | Tag::OmpAtomic
        | Tag::OmpThreadprivate => fmt_directive(ast, id, depth, out),
        other => {
            indent(depth, out);
            out.push_str(&format!("/* unformattable {other:?} */\n"));
        }
    }
}

fn fmt_while_header(ast: &Ast, node: &crate::ast::Node, out: &mut String) {
    out.push_str("while (");
    fmt_expr(ast, node.lhs, out);
    out.push(')');
    let cont = ast.extra_data[node.rhs as usize + 1];
    if cont > 0 {
        out.push_str(" : (");
        let c = *ast.node(cont - 1);
        match c.tag {
            Tag::Assign => {
                fmt_expr(ast, c.lhs, out);
                out.push_str(" = ");
                fmt_expr(ast, c.rhs, out);
            }
            Tag::CompoundAssign => {
                fmt_expr(ast, c.lhs, out);
                out.push_str(&format!(" {} ", ast.token_text(c.main_token)));
                fmt_expr(ast, c.rhs, out);
            }
            _ => {
                fmt_expr(ast, c.lhs, out);
            }
        }
        out.push(')');
    }
    out.push(' ');
}

fn fmt_attached(ast: &Ast, body: NodeId, depth: usize, out: &mut String) {
    if ast.node(body).tag == Tag::Block {
        fmt_block(ast, body, depth, out);
        out.push('\n');
    } else {
        out.push('\n');
        fmt_stmt(ast, body, depth + 1, out);
    }
}

fn fmt_block(ast: &Ast, block: NodeId, depth: usize, out: &mut String) {
    let node = *ast.node(block);
    out.push_str("{\n");
    for &stmt in ast.range(&node) {
        fmt_stmt(ast, stmt, depth + 1, out);
    }
    indent(depth, out);
    out.push('}');
}

fn red_op_text(op: RedOpCode) -> &'static str {
    match op {
        RedOpCode::Add => "+",
        RedOpCode::Mul => "*",
        RedOpCode::Min => "min",
        RedOpCode::Max => "max",
        RedOpCode::BitAnd => "&",
        RedOpCode::BitOr => "|",
        RedOpCode::BitXor => "^",
        RedOpCode::LogAnd => "and",
        RedOpCode::LogOr => "or",
    }
}

/// Reconstruct a pragma line from the packed clause block.
fn fmt_directive(ast: &Ast, id: NodeId, depth: usize, out: &mut String) {
    let node = *ast.node(id);
    let c = Clauses::read(&ast.extra_data, node.lhs);
    indent(depth, out);
    out.push_str("//$omp ");
    out.push_str(match node.tag {
        Tag::OmpParallel => "parallel",
        Tag::OmpWhile => "while",
        Tag::OmpBarrier => "barrier",
        Tag::OmpCritical => "critical",
        Tag::OmpMaster => "master",
        Tag::OmpSingle => "single",
        Tag::OmpAtomic => "atomic",
        Tag::OmpThreadprivate => "threadprivate",
        _ => unreachable!(),
    });

    // Critical's optional name rides on main_token.
    if node.tag == Tag::OmpCritical
        && ast.tokens[node.main_token as usize].tag == crate::token::Tag::Ident
    {
        out.push_str(&format!(" ({})", ast.token_text(node.main_token)));
    }
    if node.tag == Tag::OmpThreadprivate {
        out.push_str(&format!(
            "({})",
            c.private
                .iter()
                .map(|&t| ast.token_text(t))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push('\n');
        return;
    }

    if let Some(e) = c.num_threads {
        out.push_str(" num_threads(");
        fmt_expr(ast, e, out);
        out.push(')');
    }
    if let Some(e) = c.if_expr {
        out.push_str(" if(");
        fmt_expr(ast, e, out);
        out.push(')');
    }
    if let Some(s) = c.schedule {
        let kind = match s.kind {
            SchedKind::Static => "static",
            SchedKind::Dynamic => "dynamic",
            SchedKind::Guided => "guided",
            SchedKind::Runtime => "runtime",
            SchedKind::Auto => "auto",
            SchedKind::NotSpecified => "static",
        };
        match s.chunk {
            Some(ch) => out.push_str(&format!(" schedule({kind}, {ch})")),
            None => out.push_str(&format!(" schedule({kind})")),
        }
    }
    let place = |t: crate::ast::TokenId| {
        let deref = ast
            .tokens
            .get(t as usize + 1)
            .is_some_and(|n| n.tag == crate::token::Tag::DotStar);
        let base = ast.token_text(t);
        if deref {
            format!("{base}.*")
        } else {
            base.to_string()
        }
    };
    let list = |name: &str, toks: &[u32], out: &mut String| {
        if !toks.is_empty() {
            out.push_str(&format!(
                " {name}({})",
                toks.iter()
                    .map(|&t| place(t))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    };
    list("private", &c.private, out);
    list("firstprivate", &c.firstprivate, out);
    list("shared", &c.shared, out);
    // Reductions grouped per operator to keep the line canonical.
    for op in [
        RedOpCode::Add,
        RedOpCode::Mul,
        RedOpCode::Min,
        RedOpCode::Max,
        RedOpCode::BitAnd,
        RedOpCode::BitOr,
        RedOpCode::BitXor,
        RedOpCode::LogAnd,
        RedOpCode::LogOr,
    ] {
        let vars: Vec<String> = c
            .reduction
            .iter()
            .filter(|&&(o, _)| o == op)
            .map(|&(_, t)| place(t))
            .collect();
        if !vars.is_empty() {
            out.push_str(&format!(
                " reduction({}: {})",
                red_op_text(op),
                vars.join(", ")
            ));
        }
    }
    if c.flags.default == DefaultKind::Shared {
        out.push_str(" default(shared)");
    } else if c.flags.default == DefaultKind::None {
        out.push_str(" default(none)");
    }
    if c.flags.collapse > 1 {
        out.push_str(&format!(" collapse({})", c.flags.collapse));
    }
    if c.flags.nowait {
        out.push_str(" nowait");
    }
    out.push('\n');
    if node.rhs > 0 {
        fmt_stmt(ast, node.rhs, depth, out);
    }
}

fn fmt_expr(ast: &Ast, id: NodeId, out: &mut String) {
    let node = *ast.node(id);
    match node.tag {
        Tag::Ident | Tag::IntLit | Tag::FloatLit | Tag::StrLit | Tag::BoolLit => {
            out.push_str(ast.token_text(node.main_token));
        }
        Tag::UndefinedLit => out.push_str("undefined"),
        Tag::BinOp => {
            out.push('(');
            fmt_expr(ast, node.lhs, out);
            out.push_str(&format!(" {} ", ast.token_text(node.main_token)));
            fmt_expr(ast, node.rhs, out);
            out.push(')');
        }
        Tag::UnOp => {
            out.push_str(ast.token_text(node.main_token));
            fmt_expr(ast, node.lhs, out);
        }
        Tag::Call => {
            fmt_expr(ast, node.lhs, out);
            out.push('(');
            for (i, &a) in ast.call_args(&node).iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                fmt_expr(ast, a, out);
            }
            out.push(')');
        }
        Tag::BuiltinCall => {
            out.push_str(ast.token_text(node.main_token));
            out.push('(');
            let args = ast.extra(node.lhs, node.rhs).to_vec();
            for (i, &a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                fmt_expr(ast, a, out);
            }
            out.push(')');
        }
        Tag::Index => {
            fmt_expr(ast, node.lhs, out);
            out.push('[');
            fmt_expr(ast, node.rhs, out);
            out.push(']');
        }
        Tag::Member => {
            fmt_expr(ast, node.lhs, out);
            out.push('.');
            out.push_str(ast.token_text(node.main_token));
        }
        Tag::Deref => {
            fmt_expr(ast, node.lhs, out);
            out.push_str(".*");
        }
        other => out.push_str(&format!("/* expr {other:?} */")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn tags(ast: &Ast) -> Vec<Tag> {
        ast.nodes.iter().map(|n| n.tag).collect()
    }

    /// format → parse produces a structurally identical AST.
    fn roundtrip(src: &str) {
        let a1 = parse(src).map_err(|e| panic!("{}", e.render(src))).unwrap();
        let formatted = format(&a1);
        let a2 = parse(&formatted)
            .map_err(|e| panic!("{}\n--- formatted ---\n{formatted}", e.render(&formatted)))
            .unwrap();
        assert_eq!(tags(&a1), tags(&a2), "--- formatted ---\n{formatted}");
    }

    #[test]
    fn roundtrips_plain_program() {
        roundtrip(
            "fn f(a: i64, b: f64) i64 {\n\
             var x: i64 = a * 2 + 1;\n\
             if (x > 3) { x = x - 1; } else { x = 0; }\n\
             while (x > 0) : (x -= 1) { _ = x; }\n\
             return x;\n\
             }",
        );
    }

    #[test]
    fn roundtrips_pragmas_through_clause_encoding() {
        roundtrip(
            "fn main() void {\n\
             var s: f64 = 0.0;\n\
             var t: i64 = 0;\n\
             //$omp parallel num_threads(4) private(t) shared(s) reduction(+: s) default(shared)\n\
             {\n\
             var i: i64 = 0;\n\
             //$omp while schedule(dynamic, 16) nowait firstprivate(t)\n\
             while (i < 100) : (i += 1) { s = s + 1.0; }\n\
             //$omp barrier\n\
             //$omp critical (mylock)\n{ t = t + 1; }\n\
             //$omp single nowait\n{ t = 0; }\n\
             //$omp master\n{ t = 2; }\n\
             //$omp atomic\nt += 1;\n\
             }\n\
             _ = s;\n\
             }",
        );
    }

    #[test]
    fn roundtrips_collapse_and_min_reduction() {
        roundtrip(
            "fn f() void {\n\
             var lo: i64 = 100;\n\
             var i: i64 = 0;\n\
             //$omp while collapse(2) reduction(min: lo) schedule(static, 3)\n\
             while (i < 4) : (i += 1) {\n\
             var j: i64 = 0;\n\
             while (j < 4) : (j += 1) { _ = lo; }\n\
             }\n\
             }",
        );
    }

    #[test]
    fn roundtrips_expressions_and_builtins() {
        roundtrip(
            "fn f() void {\n\
             var a: []f64 = @allocF(8);\n\
             var p: *f64 = &a;\n\
             a[0] = @sqrt(2.0) * -a[1] + @intToFloat(3);\n\
             p.* = p.* + omp.get_wtime();\n\
             _ = omp.internal.if_threads(true, 4);\n\
             }",
        );
    }

    #[test]
    fn formatted_pragma_line_reconstructs_clauses() {
        let src = "fn f() void {\nvar i: i64 = 0;\n//$omp while schedule(guided, 9) nowait\nwhile (i < 5) : (i += 1) { }\n}";
        let formatted = format(&parse(src).unwrap());
        assert!(
            formatted.contains("//$omp while schedule(guided, 9) nowait"),
            "{formatted}"
        );
    }
}
