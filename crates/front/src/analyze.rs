//! Post-parse data-sharing analysis: the `zag --check` lint.
//!
//! The paper's preprocessor rewrites shared variables to pointer accesses
//! but leaves data-sharing *correctness* entirely to the programmer — a
//! write to a shared scalar inside a worksharing loop compiles silently
//! and races at runtime. This pass runs on the original, pragma-bearing
//! AST (before any preprocessing) and classifies every variable occurring
//! in a `parallel`/worksharing region into its sharing class:
//!
//! ```text
//!           unknown (undeclared: functions, modules like `omp`)
//!              │
//!           local      — declared inside the region: one per thread
//!              │
//!        ┌─ private ───────┐
//!        │  firstprivate   │   listed in a clause: privatized copies
//!        │  reduction(op)  │
//!        │  induction      │   the worksharing loop counter
//!        └────────┬────────┘
//!              shared      — explicit `shared(...)` or the default
//! ```
//!
//! and emits a [`Diag`] warning for each rule violation. Rules (the `code`
//! of the produced diagnostic is the rule id):
//!
//! * `race-shared-write` — a write to a shared scalar inside a
//!   worksharing loop body with no reduction/atomic/critical protection.
//! * `default-none-unlisted` — a `default(none)` region references an
//!   outer variable listed in no data-sharing clause.
//! * `reduction-outside-combine` — a reduction variable is read or
//!   written outside its combine pattern (`r op= e`, `r = r op e`,
//!   `r = @min(r, e)`).
//! * `induction-in-clause` — the loop induction variable appears in a
//!   `private`/`shared`/... clause of its own loop.
//! * `collapse-imperfect` — `collapse(n)` over a nest that is not
//!   perfectly nested (`{ var j = ...; while ... }` only).
//! * `collapse-nonrect` — a collapsed inner loop whose bounds depend on
//!   the outer induction variable (non-rectangular nest).
//! * `nowait-unsynced-read` — a `nowait` loop's written shareds are read
//!   again before the next barrier.
//! * `clause-conflict` — one variable in two data-sharing clauses of the
//!   same directive.
//!
//! Every diagnostic is labelled with the owning pragma's `unit:line`, the
//! same label [`crate::preprocess::preprocess_named`] threads into
//! `fork_call` for the observability layer.

use std::collections::{HashMap, HashSet};

use crate::ast::{Ast, Clauses, DefaultKind, Node, NodeId, RedOpCode, SchedKind, Tag as N};
use crate::diag::Diag;
use crate::preprocess::loop_shape;

/// Run the data-sharing lint over a parsed, still-pragma'd AST. `unit` is
/// the compilation-unit name used in diagnostic labels (`unit:line`).
/// Returns warnings only — the caller decides whether they deny.
pub fn analyze(ast: &Ast, unit: &str) -> Vec<Diag> {
    let mut a = Analyzer {
        ast,
        unit,
        diags: Vec::new(),
        scopes: Vec::new(),
        regions: Vec::new(),
        ws_loops: Vec::new(),
        protected: 0,
        threadprivate: HashSet::new(),
    };
    let root = ast.node(ast.root);
    // Top-level `threadprivate` directives declare per-thread storage:
    // writes to those names never race.
    for &id in ast.range(root) {
        if ast.node(id).tag == N::OmpThreadprivate {
            let c = Clauses::read(&ast.extra_data, ast.node(id).lhs);
            for &tok in &c.private {
                a.threadprivate.insert(ast.token_text(tok).to_string());
            }
        }
    }
    for &id in ast.range(root) {
        if ast.node(id).tag == N::FnDecl {
            a.walk_fn(id);
        }
    }
    a.diags
}

/// One textual `parallel` region being walked.
struct Region {
    /// `unit:line` of the pragma.
    label: String,
    /// Byte offset of the pragma (diagnostic anchor).
    offset: usize,
    default: DefaultKind,
    private: HashSet<String>,
    firstprivate: HashSet<String>,
    shared: HashSet<String>,
    reduction: HashMap<String, RedOpCode>,
    /// Scope-stack depth at region entry: names resolving below this
    /// depth were declared outside the region.
    outer_depth: usize,
    /// Names already reported by `default-none-unlisted` (dedup).
    flagged_none: HashSet<String>,
}

impl Region {
    fn listed(&self, name: &str) -> bool {
        self.private.contains(name)
            || self.firstprivate.contains(name)
            || self.shared.contains(name)
            || self.reduction.contains_key(name)
    }
}

/// One worksharing loop being walked.
struct WsLoop {
    label: String,
    private: HashSet<String>,
    firstprivate: HashSet<String>,
    reduction: HashSet<String>,
    induction: Option<String>,
    /// Names already reported by `race-shared-write` under this loop.
    flagged_race: HashSet<String>,
}

struct Analyzer<'a> {
    ast: &'a Ast,
    unit: &'a str,
    diags: Vec<Diag>,
    /// Lexical scopes of declared names (params, var/const decls).
    scopes: Vec<HashSet<String>>,
    regions: Vec<Region>,
    ws_loops: Vec<WsLoop>,
    /// Depth of enclosing `atomic`/`critical`/`master`/`single`
    /// constructs: writes under them are serialized, not racy.
    protected: usize,
    threadprivate: HashSet<String>,
}

impl<'a> Analyzer<'a> {
    // -- helpers ------------------------------------------------------------

    fn pragma_label(&self, id: NodeId) -> (String, usize) {
        let (start, _) = self.ast.byte_span(id);
        let line = self.ast.source[..start].matches('\n').count() + 1;
        (format!("{}:{line}", self.unit), start)
    }

    fn warn(&mut self, code: &'static str, offset: usize, label: &str, msg: String) -> &mut Diag {
        self.diags
            .push(Diag::warning(code, offset, msg).with_label(label));
        self.diags.last_mut().expect("just pushed")
    }

    /// Scope depth a name resolves at, innermost-out; `None` = undeclared
    /// (a function, a module path head like `omp`, or a typo the
    /// interpreter will report).
    fn resolve_depth(&self, name: &str) -> Option<usize> {
        (0..self.scopes.len())
            .rev()
            .find(|&d| self.scopes[d].contains(name))
    }

    fn declare(&mut self, name: &str) {
        if let Some(top) = self.scopes.last_mut() {
            top.insert(name.to_string());
        }
    }

    /// Does the subtree mention `name` as an identifier?
    fn mentions(&self, id: NodeId, name: &str) -> bool {
        let n = self.ast.node(id);
        if n.tag == N::Ident {
            return self.ast.token_text(n.main_token) == name;
        }
        self.children(id).iter().any(|&c| self.mentions(c, name))
    }

    /// Child node ids of a node, for generic traversal. Clause-block
    /// extra indices are not nodes; only the expression node ids stored
    /// in the clause header (num_threads, if) are yielded.
    fn children(&self, id: NodeId) -> Vec<NodeId> {
        let ast = self.ast;
        let n = ast.node(id);
        match n.tag {
            N::Root | N::Block => ast.range(n).to_vec(),
            N::FnDecl => {
                let (params, body) = ast.fn_parts(n);
                params.iter().copied().chain([body]).collect()
            }
            // VarDecl/ConstDecl store `init + 1` in rhs, Return stores
            // `expr + 1` in lhs (0 = absent).
            N::VarDecl | N::ConstDecl => {
                if n.rhs != 0 {
                    vec![n.rhs - 1]
                } else {
                    Vec::new()
                }
            }
            N::Assign | N::CompoundAssign | N::BinOp | N::Index => vec![n.lhs, n.rhs],
            N::While => {
                let (cond, body, cont) = ast.while_parts(n);
                let mut v = vec![cond, body];
                v.extend(cont);
                v
            }
            N::If => {
                let (cond, then, els) = ast.if_parts(n);
                let mut v = vec![cond, then];
                v.extend(els);
                v
            }
            N::Return => {
                if n.lhs != 0 {
                    vec![n.lhs - 1]
                } else {
                    Vec::new()
                }
            }
            N::Discard | N::ExprStmt | N::UnOp | N::Member | N::Deref => vec![n.lhs],
            N::Call => {
                let mut v = vec![n.lhs];
                v.extend_from_slice(ast.call_args(n));
                v
            }
            N::BuiltinCall => ast.extra(n.lhs, n.rhs).to_vec(),
            N::OmpParallel
            | N::OmpWhile
            | N::OmpBarrier
            | N::OmpCritical
            | N::OmpMaster
            | N::OmpSingle
            | N::OmpAtomic => {
                let c = Clauses::read(&ast.extra_data, n.lhs);
                let mut v = Vec::new();
                v.extend(c.num_threads);
                v.extend(c.if_expr);
                if n.rhs != 0 {
                    v.push(n.rhs);
                }
                v
            }
            N::Param
            | N::Ident
            | N::IntLit
            | N::FloatLit
            | N::StrLit
            | N::BoolLit
            | N::UndefinedLit
            | N::Break
            | N::Continue
            | N::OmpThreadprivate => Vec::new(),
        }
    }

    /// Peel `a[i]`, `a.b`, `p.*` down to the base identifier of a place
    /// expression, with a flag for whether any `Index` was peeled.
    fn place_base(&self, mut id: NodeId) -> Option<(String, bool)> {
        let mut indexed = false;
        loop {
            let n = self.ast.node(id);
            match n.tag {
                N::Ident => return Some((self.ast.token_text(n.main_token).to_string(), indexed)),
                N::Index => {
                    indexed = true;
                    id = n.lhs;
                }
                N::Member | N::Deref => id = n.lhs,
                _ => return None,
            }
        }
    }

    // -- function / statement walking ---------------------------------------

    fn walk_fn(&mut self, id: NodeId) {
        let node = *self.ast.node(id);
        let (params, body) = self.ast.fn_parts(&node);
        let mut scope = HashSet::new();
        for &p in params {
            let pn = self.ast.node(p);
            scope.insert(self.ast.token_text(pn.main_token).to_string());
        }
        self.scopes.push(scope);
        self.walk_stmt(body);
        self.scopes.pop();
    }

    fn walk_stmt(&mut self, id: NodeId) {
        let node = *self.ast.node(id);
        match node.tag {
            N::Block => {
                self.scopes.push(HashSet::new());
                if !self.regions.is_empty() {
                    self.check_nowait_reads(self.ast.range(&node).to_vec());
                }
                for &s in self.ast.range(&node) {
                    self.walk_stmt(s);
                }
                self.scopes.pop();
            }
            N::VarDecl | N::ConstDecl => {
                if node.rhs != 0 {
                    self.walk_expr(node.rhs - 1);
                }
                let name = self.ast.token_text(node.main_token).to_string();
                self.declare(&name);
            }
            N::Assign | N::CompoundAssign => {
                self.check_shared_write(&node);
                self.walk_expr(node.lhs);
                self.walk_expr(node.rhs);
            }
            N::While => {
                let (cond, body, cont) = self.ast.while_parts(&node);
                self.walk_expr(cond);
                self.walk_stmt(body);
                if let Some(c) = cont {
                    self.walk_stmt(c);
                }
            }
            N::If => {
                let (cond, then, els) = self.ast.if_parts(&node);
                self.walk_expr(cond);
                self.walk_stmt(then);
                if let Some(e) = els {
                    self.walk_stmt(e);
                }
            }
            N::OmpParallel => self.enter_parallel(id, &node),
            N::OmpWhile => self.enter_ws_loop(id, &node),
            N::OmpAtomic | N::OmpCritical | N::OmpMaster | N::OmpSingle => {
                self.protected += 1;
                if node.rhs != 0 {
                    self.walk_stmt(node.rhs);
                }
                self.protected -= 1;
            }
            N::OmpBarrier | N::OmpThreadprivate | N::Break | N::Continue | N::Param => {}
            N::Return => {
                if node.lhs != 0 {
                    self.walk_expr(node.lhs - 1);
                }
            }
            N::Discard | N::ExprStmt => self.walk_expr(node.lhs),
            _ => self.walk_expr(id),
        }
    }

    fn walk_expr(&mut self, id: NodeId) {
        let node = *self.ast.node(id);
        if node.tag == N::Ident {
            self.check_default_none(&node);
            return;
        }
        for c in self.children(id) {
            self.walk_expr(c);
        }
    }

    // -- region / loop entry ------------------------------------------------

    fn enter_parallel(&mut self, id: NodeId, node: &Node) {
        let clauses = Clauses::read(&self.ast.extra_data, node.lhs);
        let (label, offset) = self.pragma_label(id);
        self.check_clause_conflicts(&clauses, &label, offset);
        let names = |toks: &[u32]| -> HashSet<String> {
            toks.iter()
                .map(|&t| self.ast.token_text(t).to_string())
                .collect()
        };
        let region = Region {
            label: label.clone(),
            offset,
            default: clauses.flags.default,
            private: names(&clauses.private),
            firstprivate: names(&clauses.firstprivate),
            shared: names(&clauses.shared),
            reduction: clauses
                .reduction
                .iter()
                .map(|&(op, t)| (self.ast.token_text(t).to_string(), op))
                .collect(),
            outer_depth: self.scopes.len(),
            flagged_none: HashSet::new(),
        };
        self.regions.push(region);
        if let Some(e) = clauses.num_threads {
            self.walk_expr(e);
        }
        if let Some(e) = clauses.if_expr {
            self.walk_expr(e);
        }
        if node.rhs != 0 {
            self.walk_stmt(node.rhs);
        }
        let region = self.regions.pop().expect("region just pushed");
        // Rule: reduction vars of the region must only appear in combine
        // form inside the region body.
        if node.rhs != 0 {
            for name in region.reduction.keys() {
                self.check_reduction_uses(node.rhs, name, &region.label);
            }
        }
    }

    fn enter_ws_loop(&mut self, id: NodeId, node: &Node) {
        let clauses = Clauses::read(&self.ast.extra_data, node.lhs);
        let (label, offset) = self.pragma_label(id);
        self.check_clause_conflicts(&clauses, &label, offset);

        let shape = if node.rhs != 0 && self.ast.node(node.rhs).tag == N::While {
            loop_shape(self.ast, node.rhs).ok()
        } else {
            None
        };

        // Rule: the induction variable is privatized by the lowering
        // itself; listing it in a clause is a contradiction.
        if let Some(shape) = &shape {
            let listed_as = [
                (&clauses.private, "private"),
                (&clauses.firstprivate, "firstprivate"),
                (&clauses.shared, "shared"),
            ]
            .iter()
            .find_map(|(toks, kind)| {
                toks.iter()
                    .any(|&t| self.ast.token_text(t) == shape.var)
                    .then_some(*kind)
            })
            .or_else(|| {
                clauses
                    .reduction
                    .iter()
                    .any(|&(_, t)| self.ast.token_text(t) == shape.var)
                    .then_some("reduction")
            });
            if let Some(kind) = listed_as {
                self.warn(
                    "induction-in-clause",
                    offset,
                    &label,
                    format!(
                        "loop induction variable `{}` also appears in a `{kind}` clause",
                        shape.var
                    ),
                )
                .note = Some(
                    "the worksharing lowering already gives each thread a private copy \
                     of the induction variable"
                        .to_string(),
                );
            }
        }

        self.check_collapse(node, &clauses, &label, offset);

        let names = |toks: &[u32]| -> HashSet<String> {
            toks.iter()
                .map(|&t| self.ast.token_text(t).to_string())
                .collect()
        };
        self.ws_loops.push(WsLoop {
            label: label.clone(),
            private: names(&clauses.private),
            firstprivate: names(&clauses.firstprivate),
            reduction: clauses
                .reduction
                .iter()
                .map(|&(_, t)| self.ast.token_text(t).to_string())
                .collect(),
            induction: shape.as_ref().map(|s| s.var.clone()),
            flagged_race: HashSet::new(),
        });
        if node.rhs != 0 {
            self.walk_stmt(node.rhs);
        }
        self.ws_loops.pop();

        // Rule: loop-level reduction vars only combine inside the body.
        if let Some(shape) = &shape {
            for &(_, tok) in &clauses.reduction {
                let name = self.ast.token_text(tok).to_string();
                self.check_reduction_uses(shape.body, &name, &label);
            }
        }
    }

    // -- rule: clause-conflict ----------------------------------------------

    fn check_clause_conflicts(&mut self, clauses: &Clauses, label: &str, offset: usize) {
        let mut seen: HashMap<String, &'static str> = HashMap::new();
        let mut flagged: HashSet<String> = HashSet::new();
        let red: Vec<u32> = clauses.reduction.iter().map(|&(_, t)| t).collect();
        for (toks, kind) in [
            (&clauses.private, "private"),
            (&clauses.firstprivate, "firstprivate"),
            (&clauses.shared, "shared"),
            (&red, "reduction"),
        ] {
            for &t in toks {
                let name = self.ast.token_text(t).to_string();
                if let Some(prev) = seen.get(name.as_str()) {
                    if flagged.insert(name.clone()) {
                        let msg = if *prev == kind {
                            format!("`{name}` is listed twice in the `{kind}` clause")
                        } else {
                            format!("`{name}` appears in both `{prev}` and `{kind}` clauses")
                        };
                        self.warn("clause-conflict", offset, label, msg).note = Some(
                            "a variable has exactly one data-sharing class per directive"
                                .to_string(),
                        );
                    }
                } else {
                    seen.insert(name, kind);
                }
            }
        }
    }

    // -- rule: collapse-imperfect / collapse-nonrect ------------------------

    fn check_collapse(&mut self, node: &Node, clauses: &Clauses, label: &str, offset: usize) {
        let depth = clauses.flags.collapse;
        if depth < 2 || node.rhs == 0 || self.ast.node(node.rhs).tag != N::While {
            return;
        }
        let mut outer_vars: Vec<String> = Vec::new();
        let mut while_id = node.rhs;
        for level in 1..depth {
            let Ok(shape) = loop_shape(self.ast, while_id) else {
                return; // the preprocessor reports malformed loop headers
            };
            outer_vars.push(shape.var.clone());
            // A perfectly nested level is exactly `{ var j = ...; while ... }`.
            let body = self.ast.node(shape.body);
            let stmts = if body.tag == N::Block {
                self.ast.range(body).to_vec()
            } else {
                Vec::new()
            };
            let inner_ok = stmts.len() == 2
                && self.ast.node(stmts[0]).tag == N::VarDecl
                && self.ast.node(stmts[1]).tag == N::While;
            if !inner_ok {
                self.warn(
                    "collapse-imperfect",
                    offset,
                    label,
                    format!(
                        "collapse({depth}) requires a perfectly nested loop at depth {}: \
                         the body must be exactly `{{ var j = ...; while (...) ... }}`",
                        level + 1
                    ),
                )
                .note = Some(
                    "statements between collapsed loop headers would run once per outer \
                     iteration, not once per collapsed iteration"
                        .to_string(),
                );
                return;
            }
            while_id = stmts[1];
            // Non-rectangular check: the inner loop's bound or step must
            // not depend on any outer induction variable.
            if let Ok(inner) = loop_shape(self.ast, while_id) {
                for outer in &outer_vars {
                    if contains_ident(&inner.ub_text, outer)
                        || contains_ident(&inner.incr_text, outer)
                    {
                        self.warn(
                            "collapse-nonrect",
                            offset,
                            label,
                            format!(
                                "collapsed inner loop bound depends on outer induction \
                                 variable `{outer}`: the nest is not rectangular"
                            ),
                        )
                        .note = Some(
                            "the collapsed iteration space is computed as a product of \
                             fixed trip counts; non-rectangular nests miscount"
                                .to_string(),
                        );
                        return;
                    }
                }
            }
        }
    }

    // -- rule: race-shared-write --------------------------------------------

    fn check_shared_write(&mut self, node: &Node) {
        if self.protected > 0 || self.regions.is_empty() || self.ws_loops.is_empty() {
            return;
        }
        // Only bare scalar writes race by construction; array-element
        // writes (`a[i] = ...`) are normally partitioned by iteration.
        let lhs = self.ast.node(node.lhs);
        if lhs.tag != N::Ident {
            return;
        }
        let name = self.ast.token_text(lhs.main_token).to_string();
        if self.threadprivate.contains(&name) {
            return;
        }
        let region = self.regions.last().expect("regions checked non-empty");
        // Declared inside the region (or the loop): per-thread, no race.
        match self.resolve_depth(&name) {
            None => return,
            Some(d) if d >= region.outer_depth => return,
            Some(_) => {}
        }
        // Privatized by the region or by any enclosing worksharing loop.
        if region.private.contains(&name)
            || region.firstprivate.contains(&name)
            || region.reduction.contains_key(&name)
        {
            return;
        }
        if self.ws_loops.iter().any(|l| {
            l.private.contains(&name)
                || l.firstprivate.contains(&name)
                || l.reduction.contains(&name)
                || l.induction.as_deref() == Some(name.as_str())
        }) {
            return;
        }
        // default(none) + unlisted is the unlisted-variable rule's job.
        if region.default == DefaultKind::None && !region.shared.contains(&name) {
            return;
        }
        let (label, offset) = {
            let l = self.ws_loops.last().expect("ws_loops checked non-empty");
            (l.label.clone(), self.ast.byte_span(node.lhs).0)
        };
        let loop_info = self
            .ws_loops
            .last_mut()
            .expect("ws_loops checked non-empty");
        if !loop_info.flagged_race.insert(name.clone()) {
            return;
        }
        self.warn(
            "race-shared-write",
            offset,
            &label,
            format!(
                "write to shared variable `{name}` inside a worksharing loop: \
                 concurrent iterations race"
            ),
        )
        .note = Some(format!(
            "privatize `{name}`, protect the update with `//$omp atomic` or \
             `//$omp critical`, or use `reduction(op: {name})`"
        ));
    }

    // -- rule: default-none-unlisted ----------------------------------------

    fn check_default_none(&mut self, node: &Node) {
        if self.regions.is_empty() {
            return;
        }
        let name = self.ast.token_text(node.main_token).to_string();
        let Some(depth) = self.resolve_depth(&name) else {
            return; // functions, module paths, typos
        };
        let region = self.regions.last_mut().expect("regions checked non-empty");
        if region.default != DefaultKind::None
            || depth >= region.outer_depth
            || region.listed(&name)
        {
            return;
        }
        // The worksharing induction variable is privatized implicitly.
        if self
            .ws_loops
            .iter()
            .any(|l| l.induction.as_deref() == Some(name.as_str()))
        {
            return;
        }
        if !region.flagged_none.insert(name.clone()) {
            return;
        }
        let (label, offset) = (region.label.clone(), region.offset);
        self.warn(
            "default-none-unlisted",
            offset,
            &label,
            format!(
                "`{name}` is referenced in a `default(none)` region but listed \
                 in no data-sharing clause"
            ),
        )
        .note = Some(format!(
            "add `{name}` to a `shared`, `private`, `firstprivate`, or \
             `reduction` clause"
        ));
    }

    // -- rule: reduction-outside-combine ------------------------------------

    /// Walk `root` looking for uses of reduction variable `name` outside
    /// an accepted combine statement. Reports at most once.
    fn check_reduction_uses(&mut self, root: NodeId, name: &str, label: &str) {
        if let Some(bad) = self.find_bad_reduction_use(root, name) {
            self.warn(
                "reduction-outside-combine",
                bad,
                label,
                format!(
                    "reduction variable `{name}` is used outside its combine \
                     pattern"
                ),
            )
            .note = Some(format!(
                "inside the construct, `{name}` is a thread-private partial \
                 value: only `{name} op= expr`, `{name} = {name} op expr`, or \
                 `{name} = @min/@max({name}, expr)` are meaningful"
            ));
        }
    }

    /// Byte offset of the first use of `name` outside a combine pattern,
    /// or `None`. A declaration of the same name shadows the reduction
    /// variable for the rest of its block.
    fn find_bad_reduction_use(&self, id: NodeId, name: &str) -> Option<usize> {
        let node = self.ast.node(id);
        match node.tag {
            N::Ident => {
                (self.ast.token_text(node.main_token) == name).then(|| self.ast.byte_span(id).0)
            }
            N::Block => {
                for &s in self.ast.range(node) {
                    let sn = self.ast.node(s);
                    if matches!(sn.tag, N::VarDecl | N::ConstDecl)
                        && self.ast.token_text(sn.main_token) == name
                    {
                        // Shadowed: check only the initializer, then stop.
                        if sn.rhs != 0 {
                            if let Some(bad) = self.find_bad_reduction_use(sn.rhs - 1, name) {
                                return Some(bad);
                            }
                        }
                        return None;
                    }
                    if let Some(bad) = self.find_bad_reduction_use(s, name) {
                        return Some(bad);
                    }
                }
                None
            }
            N::CompoundAssign if self.is_ident(node.lhs, name) => {
                // `r op= e`: fine as long as `e` does not read `r`.
                self.find_bad_reduction_use(node.rhs, name)
            }
            N::Assign if self.is_ident(node.lhs, name) => {
                if self.is_combine_rhs(node.rhs, name) {
                    None
                } else {
                    Some(self.ast.byte_span(node.lhs).0)
                }
            }
            _ => self
                .children(id)
                .iter()
                .find_map(|&c| self.find_bad_reduction_use(c, name)),
        }
    }

    fn is_ident(&self, id: NodeId, name: &str) -> bool {
        let n = self.ast.node(id);
        n.tag == N::Ident && self.ast.token_text(n.main_token) == name
    }

    /// Is `rhs` an accepted combine expression for `name`:
    /// `name op e` / `e op name` (with `name` free in `e`), or
    /// `@min/@max(name, e)`.
    fn is_combine_rhs(&self, rhs: NodeId, name: &str) -> bool {
        let n = self.ast.node(rhs);
        match n.tag {
            N::BinOp => {
                if self.is_ident(n.lhs, name) {
                    self.find_bad_reduction_use(n.rhs, name).is_none()
                } else if self.is_ident(n.rhs, name) {
                    self.find_bad_reduction_use(n.lhs, name).is_none()
                } else {
                    false
                }
            }
            N::BuiltinCall => {
                let callee = self.ast.token_text(n.main_token);
                if callee != "@min" && callee != "@max" {
                    return false;
                }
                let args = self.ast.extra(n.lhs, n.rhs);
                let direct = args.iter().filter(|&&a| self.is_ident(a, name)).count();
                direct == 1
                    && args
                        .iter()
                        .filter(|&&a| !self.is_ident(a, name))
                        .all(|&a| self.find_bad_reduction_use(a, name).is_none())
            }
            _ => false,
        }
    }

    // -- rule: nowait-unsynced-read -----------------------------------------

    /// Scan a statement list for `nowait` worksharing loops whose written
    /// shared variables are read again before the next barrier.
    fn check_nowait_reads(&mut self, stmts: Vec<NodeId>) {
        for (i, &s) in stmts.iter().enumerate() {
            let n = *self.ast.node(s);
            if n.tag != N::OmpWhile {
                continue;
            }
            let clauses = Clauses::read(&self.ast.extra_data, n.lhs);
            // A reduction forces the lowering to keep the trailing
            // barrier even under `nowait`.
            if !clauses.flags.nowait || !clauses.reduction.is_empty() {
                continue;
            }
            let written = self.shared_writes_of(s, &clauses);
            if written.is_empty() {
                continue;
            }
            let (label, _) = self.pragma_label(s);
            let writer_aligned = is_static_unchunked(&clauses);
            let mut flagged: HashSet<String> = HashSet::new();
            for &t in &stmts[i + 1..] {
                let tn = *self.ast.node(t);
                match tn.tag {
                    N::OmpBarrier => break,
                    N::OmpWhile => {
                        let tc = Clauses::read(&self.ast.extra_data, tn.lhs);
                        // Aligned static partitions: a static-unchunked
                        // reader rereads exactly the iterations this
                        // thread wrote (the CG idiom) — not a race.
                        let exempt = writer_aligned && is_static_unchunked(&tc);
                        if !exempt {
                            self.report_nowait_reads(t, &written, &mut flagged, &label);
                        }
                        let has_barrier = !tc.flags.nowait || !tc.reduction.is_empty();
                        if has_barrier {
                            break;
                        }
                    }
                    N::OmpSingle => {
                        // One thread runs the body while others may still
                        // be in the nowait loop; the trailing barrier (if
                        // any) only synchronizes afterwards.
                        self.report_nowait_reads(t, &written, &mut flagged, &label);
                        let tc = Clauses::read(&self.ast.extra_data, tn.lhs);
                        if !tc.flags.nowait {
                            break;
                        }
                    }
                    _ => {
                        self.report_nowait_reads(t, &written, &mut flagged, &label);
                    }
                }
            }
        }
    }

    fn report_nowait_reads(
        &mut self,
        stmt: NodeId,
        written: &HashSet<String>,
        flagged: &mut HashSet<String>,
        label: &str,
    ) {
        for name in written {
            if !flagged.contains(name) && self.mentions(stmt, name) {
                flagged.insert(name.clone());
                let at = self.ast.byte_span(stmt).0;
                self.warn(
                    "nowait-unsynced-read",
                    at,
                    label,
                    format!(
                        "`{name}` is written by a `nowait` worksharing loop and \
                         read again before the next barrier"
                    ),
                )
                .note = Some(
                    "other threads may still be executing the loop: drop `nowait` \
                     or insert `//$omp barrier` before this use"
                        .to_string(),
                );
            }
        }
    }

    /// Shared (region-level) variables the loop body writes, by scalar
    /// assignment or through an indexed place (`a[i] = ...`).
    fn shared_writes_of(&self, ws_id: NodeId, clauses: &Clauses) -> HashSet<String> {
        let Some(region) = self.regions.last() else {
            return HashSet::new();
        };
        let loop_private: HashSet<String> = clauses
            .private
            .iter()
            .chain(&clauses.firstprivate)
            .map(|&t| self.ast.token_text(t).to_string())
            .collect();
        let mut declared = HashSet::new();
        self.collect_decls(ws_id, &mut declared);
        let mut out = HashSet::new();
        self.collect_writes(ws_id, &mut out);
        out.retain(|name| {
            !declared.contains(name)
                && !loop_private.contains(name)
                && !self.threadprivate.contains(name)
                && !region.private.contains(name)
                && !region.firstprivate.contains(name)
                && !region.reduction.contains_key(name)
                && match self.resolve_depth(name) {
                    // Declared inside the region: thread-local, no handoff.
                    Some(d) => d < region.outer_depth,
                    None => false,
                }
        });
        out
    }

    fn collect_decls(&self, id: NodeId, out: &mut HashSet<String>) {
        let n = self.ast.node(id);
        if matches!(n.tag, N::VarDecl | N::ConstDecl) {
            out.insert(self.ast.token_text(n.main_token).to_string());
        }
        for c in self.children(id) {
            self.collect_decls(c, out);
        }
    }

    fn collect_writes(&self, id: NodeId, out: &mut HashSet<String>) {
        let n = self.ast.node(id);
        if matches!(n.tag, N::Assign | N::CompoundAssign) {
            if let Some((name, _)) = self.place_base(n.lhs) {
                out.insert(name);
            }
        }
        for c in self.children(id) {
            self.collect_writes(c, out);
        }
    }
}

/// Is a worksharing loop lowered to the aligned static-unchunked
/// partition (no `schedule` clause, or `schedule(static)` with no chunk)?
fn is_static_unchunked(clauses: &Clauses) -> bool {
    match clauses.schedule {
        None => true,
        Some(s) => s.kind == SchedKind::Static && s.chunk.is_none(),
    }
}

/// Does `text` contain `name` as a whole identifier (not as a substring
/// of a longer identifier)?
fn contains_ident(text: &str, name: &str) -> bool {
    let bytes = text.as_bytes();
    let is_word = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(pos) = text[from..].find(name) {
        let start = from + pos;
        let end = start + name.len();
        let before_ok = start == 0 || !is_word(bytes[start - 1]);
        let after_ok = end == bytes.len() || !is_word(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lint(src: &str) -> Vec<Diag> {
        let ast = parse(src).expect("test source parses");
        analyze(&ast, "test.zag")
    }

    fn codes(src: &str) -> Vec<&'static str> {
        lint(src).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_reduction_loop_has_no_findings() {
        let src = r#"
fn main() void {
    var total: i64 = 0;
    //$omp parallel
    {
        var i: i64 = 0;
        //$omp while reduction(+: total)
        while (i < 100) : (i += 1) {
            total += i;
        }
    }
}
"#;
        assert!(codes(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn shared_scalar_write_in_ws_loop_races() {
        let src = r#"
fn main() void {
    var total: i64 = 0;
    //$omp parallel
    {
        var i: i64 = 0;
        //$omp while
        while (i < 100) : (i += 1) {
            total = total + i;
        }
    }
}
"#;
        let diags = lint(src);
        assert_eq!(codes(src), vec!["race-shared-write"], "{diags:?}");
        let d = &diags[0];
        assert_eq!(d.label.as_deref(), Some("test.zag:7"));
        assert!(d.message.contains("total"), "{}", d.message);
    }

    #[test]
    fn atomic_protected_write_is_clean() {
        let src = r#"
fn main() void {
    var hits: i64 = 0;
    //$omp parallel
    {
        var i: i64 = 0;
        //$omp while
        while (i < 100) : (i += 1) {
            //$omp atomic
            hits += 1;
        }
    }
}
"#;
        assert!(codes(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn array_element_writes_are_not_flagged() {
        let src = r#"
fn main() void {
    var a: []f64 = @allocF(100);
    //$omp parallel
    {
        var i: i64 = 0;
        //$omp while
        while (i < 100) : (i += 1) {
            a[i] = 2.0;
        }
    }
}
"#;
        assert!(codes(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn default_none_reports_unlisted_variable_once() {
        let src = r#"
fn main() void {
    var n: i64 = 100;
    var m: i64 = 2;
    //$omp parallel default(none) shared(n)
    {
        print(n);
        print(m);
        print(m);
    }
}
"#;
        let diags = lint(src);
        assert_eq!(codes(src), vec!["default-none-unlisted"], "{diags:?}");
        assert!(diags[0].message.contains("`m`"), "{}", diags[0].message);
    }

    #[test]
    fn reduction_read_outside_combine_flagged() {
        let src = r#"
fn main() void {
    var s: i64 = 0;
    var peek: i64 = 0;
    //$omp parallel
    {
        var i: i64 = 0;
        //$omp while reduction(+: s)
        while (i < 10) : (i += 1) {
            s += i;
            peek = s;
        }
    }
}
"#;
        // `peek = s` reads the partial value; `peek` itself is a shared
        // scalar write, so both rules fire.
        let c = codes(src);
        assert!(c.contains(&"reduction-outside-combine"), "{:?}", lint(src));
    }

    #[test]
    fn reduction_combine_forms_accepted() {
        let src = r#"
fn main() void {
    var s: i64 = 0;
    var lo: i64 = 99;
    //$omp parallel
    {
        var i: i64 = 0;
        //$omp while reduction(+: s) reduction(min: lo)
        while (i < 10) : (i += 1) {
            s = s + i;
            lo = @min(lo, i);
        }
    }
}
"#;
        assert!(codes(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn induction_variable_in_private_clause_flagged() {
        let src = r#"
fn main() void {
    //$omp parallel
    {
        var i: i64 = 0;
        //$omp while private(i)
        while (i < 10) : (i += 1) {
        }
    }
}
"#;
        assert_eq!(codes(src), vec!["induction-in-clause"], "{:?}", lint(src));
    }

    #[test]
    fn imperfect_collapse_nest_flagged() {
        let src = r#"
fn main() void {
    var s: i64 = 0;
    //$omp parallel
    {
        var i: i64 = 0;
        //$omp while collapse(2) reduction(+: s)
        while (i < 10) : (i += 1) {
            var extra: i64 = 7;
            var j: i64 = 0;
            while (j < 10) : (j += 1) {
                s += extra;
            }
        }
    }
}
"#;
        assert_eq!(codes(src), vec!["collapse-imperfect"], "{:?}", lint(src));
    }

    #[test]
    fn nonrectangular_collapse_flagged() {
        let src = r#"
fn main() void {
    var s: i64 = 0;
    //$omp parallel
    {
        var i: i64 = 0;
        //$omp while collapse(2) reduction(+: s)
        while (i < 10) : (i += 1) {
            var j: i64 = 0;
            while (j < i) : (j += 1) {
                s += 1;
            }
        }
    }
}
"#;
        assert_eq!(codes(src), vec!["collapse-nonrect"], "{:?}", lint(src));
    }

    #[test]
    fn nowait_then_unsynced_read_flagged() {
        let src = r#"
fn main() void {
    var a: []f64 = @allocF(64);
    var total: f64 = 0.0;
    //$omp parallel
    {
        var i: i64 = 0;
        //$omp while nowait
        while (i < 64) : (i += 1) {
            a[i] = 1.0;
        }
        //$omp single
        {
            total = a[0];
        }
    }
}
"#;
        assert_eq!(codes(src), vec!["nowait-unsynced-read"], "{:?}", lint(src));
    }

    #[test]
    fn nowait_into_aligned_static_loop_is_exempt() {
        // The CG idiom: a nowait static loop writing an array, then
        // another static-unchunked loop reading the same partition.
        let src = r#"
fn main() void {
    var a: []f64 = @allocF(64);
    var b: []f64 = @allocF(64);
    //$omp parallel
    {
        var i: i64 = 0;
        //$omp while nowait
        while (i < 64) : (i += 1) {
            a[i] = 1.0;
        }
        var j: i64 = 0;
        //$omp while
        while (j < 64) : (j += 1) {
            b[j] = a[j] * 2.0;
        }
    }
}
"#;
        assert!(codes(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn barrier_stops_the_nowait_scan() {
        let src = r#"
fn main() void {
    var a: []f64 = @allocF(64);
    var total: f64 = 0.0;
    //$omp parallel
    {
        var i: i64 = 0;
        //$omp while nowait
        while (i < 64) : (i += 1) {
            a[i] = 1.0;
        }
        //$omp barrier
        //$omp single
        {
            total = a[0];
        }
    }
}
"#;
        assert!(codes(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn clause_conflict_flagged() {
        let src = r#"
fn main() void {
    var x: i64 = 0;
    //$omp parallel private(x) shared(x)
    {
        print(x);
    }
}
"#;
        assert_eq!(codes(src), vec!["clause-conflict"], "{:?}", lint(src));
    }

    #[test]
    fn threadprivate_writes_are_clean() {
        let src = r#"
//$omp threadprivate(counter)
fn main() void {
    var counter: i64 = 0;
    //$omp parallel
    {
        var i: i64 = 0;
        //$omp while
        while (i < 10) : (i += 1) {
            counter += 1;
        }
    }
}
"#;
        let diags = lint(src);
        assert!(
            !diags.iter().any(|d| d.code == "race-shared-write"),
            "{diags:?}"
        );
    }

    #[test]
    fn diagnostics_carry_unit_line_labels() {
        let src = "fn main() void {\n    var t: i64 = 0;\n    //$omp parallel\n    {\n        var i: i64 = 0;\n        //$omp while\n        while (i < 9) : (i += 1) {\n            t = 1;\n        }\n    }\n}\n";
        let diags = lint(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].label.as_deref(), Some("test.zag:6"));
    }

    #[test]
    fn contains_ident_is_word_boundary_aware() {
        assert!(contains_ident("i + 1", "i"));
        assert!(contains_ident("(n - i)", "i"));
        assert!(!contains_ident("width", "i"));
        assert!(!contains_ident("ii", "i"));
    }
}
