//! The Zag tokenizer.
//!
//! Pragmas are *sentinel comments*: a comment beginning `//$omp` starts an
//! OpenMP directive, "similar to how they are supported in Fortran"
//! (§III-A). The tokenizer follows the paper's option **B** (Fig. 1): the
//! sentinel becomes one `PragmaSentinel` token, and the remainder of the
//! pragma line is tokenised as ordinary code — possible because pragmas
//! consist entirely of tokens Zag already has. A `PragmaEnd` token marks
//! the end of the line so the parser knows where the directive stops.
//!
//! OpenMP directive and clause names (`parallel`, `private`, ...) are *not*
//! keywords — adding them "would break compatibility with existing codes" —
//! so they come out of the tokenizer as plain [`Tag::Ident`] tokens and are
//! recognised later (see [`crate::omp_kw`]).

/// Token kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    // Literals and names.
    Ident,
    IntLit,
    FloatLit,
    StrLit,
    /// `@name` compiler builtins (`@intToFloat`, `@sqrt`, ...).
    Builtin,

    // Language keywords (real keywords; OpenMP names are NOT here).
    KwFn,
    KwVar,
    KwConst,
    KwWhile,
    KwIf,
    KwElse,
    KwReturn,
    KwBreak,
    KwContinue,
    KwTrue,
    KwFalse,
    KwAnd,
    KwOr,
    KwUndefined,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semicolon,
    Colon,
    Comma,
    Dot,
    DotStar, // `.*` pointer dereference
    Amp,     // `&` address-of
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    EqEq,
    BangEq,
    Lt,
    LtEq,
    Gt,
    GtEq,

    // OpenMP sentinel comment machinery.
    PragmaSentinel,
    PragmaEnd,

    Eof,
}

/// One token: a tag plus its byte span in the source (spans are what the
/// preprocessor uses to splice replacement text).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub tag: Tag,
    pub start: u32,
    pub end: u32,
}

impl Token {
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start as usize..self.end as usize]
    }
}

/// The pragma sentinel, as a comment prefix.
pub const SENTINEL: &str = "//$omp";

fn keyword_tag(s: &str) -> Option<Tag> {
    Some(match s {
        "fn" => Tag::KwFn,
        "var" => Tag::KwVar,
        "const" => Tag::KwConst,
        "while" => Tag::KwWhile,
        "if" => Tag::KwIf,
        "else" => Tag::KwElse,
        "return" => Tag::KwReturn,
        "break" => Tag::KwBreak,
        "continue" => Tag::KwContinue,
        "true" => Tag::KwTrue,
        "false" => Tag::KwFalse,
        "and" => Tag::KwAnd,
        "or" => Tag::KwOr,
        "undefined" => Tag::KwUndefined,
        _ => return None,
    })
}

/// Tokenize the whole source. Never fails: unknown bytes become an error at
/// parse time by producing no valid token sequence — the tokenizer reports
/// them via `Err` with the byte offset.
pub fn tokenize(source: &str) -> Result<Vec<Token>, crate::Diag> {
    let b = source.as_bytes();
    let mut toks = Vec::with_capacity(source.len() / 4);
    let mut i = 0usize;
    // Are we inside a pragma line (between sentinel and end of line)?
    let mut in_pragma = false;

    macro_rules! push {
        ($tag:expr, $start:expr, $end:expr) => {
            toks.push(Token {
                tag: $tag,
                start: $start as u32,
                end: $end as u32,
            })
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' if in_pragma => {
                push!(Tag::PragmaEnd, i, i);
                in_pragma = false;
                i += 1;
            }
            c if (c as char).is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                // Comment — or the OpenMP sentinel.
                if source[i..].starts_with(SENTINEL) {
                    push!(Tag::PragmaSentinel, i, i + SENTINEL.len());
                    in_pragma = true;
                    i += SENTINEL.len();
                } else {
                    while i < b.len() && b[i] != b'\n' {
                        i += 1;
                    }
                }
            }
            b'@' => {
                let start = i;
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                if i == start + 1 {
                    return Err(crate::Diag::lex(start, "lone '@'"));
                }
                push!(Tag::Builtin, start, i);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = &source[start..i];
                push!(keyword_tag(text).unwrap_or(Tag::Ident), start, i);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let mut tag = Tag::IntLit;
                // A fractional part — but not a method call like `0.foo` or
                // a deref `x.*` (digits can't be followed by those anyway).
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    tag = Tag::FloatLit;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // Exponent.
                if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                    let mut j = i + 1;
                    if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                        j += 1;
                    }
                    if j < b.len() && b[j].is_ascii_digit() {
                        tag = Tag::FloatLit;
                        i = j;
                        while i < b.len() && b[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                push!(tag, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                if i >= b.len() {
                    return Err(crate::Diag::lex(start, "unterminated string"));
                }
                i += 1;
                push!(Tag::StrLit, start, i);
            }
            _ => {
                let start = i;
                // `get` (not slicing) so a multi-byte UTF-8 character cannot
                // split and panic; unknown bytes fall through to the error.
                let two = source.get(i..i + 2).unwrap_or("");
                let (tag, len) = match two {
                    ".*" => (Tag::DotStar, 2),
                    "+=" => (Tag::PlusEq, 2),
                    "-=" => (Tag::MinusEq, 2),
                    "*=" => (Tag::StarEq, 2),
                    "/=" => (Tag::SlashEq, 2),
                    "==" => (Tag::EqEq, 2),
                    "!=" => (Tag::BangEq, 2),
                    "<=" => (Tag::LtEq, 2),
                    ">=" => (Tag::GtEq, 2),
                    _ => match c {
                        b'(' => (Tag::LParen, 1),
                        b')' => (Tag::RParen, 1),
                        b'{' => (Tag::LBrace, 1),
                        b'}' => (Tag::RBrace, 1),
                        b'[' => (Tag::LBracket, 1),
                        b']' => (Tag::RBracket, 1),
                        b';' => (Tag::Semicolon, 1),
                        b':' => (Tag::Colon, 1),
                        b',' => (Tag::Comma, 1),
                        b'.' => (Tag::Dot, 1),
                        b'&' => (Tag::Amp, 1),
                        b'+' => (Tag::Plus, 1),
                        b'-' => (Tag::Minus, 1),
                        b'*' => (Tag::Star, 1),
                        b'/' => (Tag::Slash, 1),
                        b'%' => (Tag::Percent, 1),
                        b'!' => (Tag::Bang, 1),
                        b'=' => (Tag::Eq, 1),
                        b'<' => (Tag::Lt, 1),
                        b'>' => (Tag::Gt, 1),
                        other => {
                            return Err(crate::Diag::lex(
                                start,
                                format!("unexpected character {:?}", other as char),
                            ))
                        }
                    },
                };
                push!(tag, start, start + len);
                i = start + len;
            }
        }
    }
    if in_pragma {
        push!(Tag::PragmaEnd, i, i);
    }
    push!(Tag::Eof, i, i);
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(src: &str) -> Vec<Tag> {
        tokenize(src).unwrap().iter().map(|t| t.tag).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            tags("var x: i64 = 1;"),
            vec![
                Tag::KwVar,
                Tag::Ident,
                Tag::Colon,
                Tag::Ident,
                Tag::Eq,
                Tag::IntLit,
                Tag::Semicolon,
                Tag::Eof
            ]
        );
    }

    #[test]
    fn float_and_exponent_literals() {
        assert_eq!(tags("1.5"), vec![Tag::FloatLit, Tag::Eof]);
        assert_eq!(tags("2e10"), vec![Tag::FloatLit, Tag::Eof]);
        assert_eq!(tags("3.25e-4"), vec![Tag::FloatLit, Tag::Eof]);
        assert_eq!(tags("7"), vec![Tag::IntLit, Tag::Eof]);
    }

    #[test]
    fn sentinel_comment_becomes_pragma_tokens() {
        // The paper's option B: sentinel token + ordinary tokens + end.
        let t = tags("//$omp parallel private(x)\n{ }");
        assert_eq!(
            t,
            vec![
                Tag::PragmaSentinel,
                Tag::Ident, // parallel — an identifier, not a keyword!
                Tag::Ident, // private
                Tag::LParen,
                Tag::Ident,
                Tag::RParen,
                Tag::PragmaEnd,
                Tag::LBrace,
                Tag::RBrace,
                Tag::Eof
            ]
        );
    }

    #[test]
    fn ordinary_comments_are_skipped() {
        assert_eq!(tags("// just a comment\nx"), vec![Tag::Ident, Tag::Eof]);
        // Even one that merely mentions omp.
        assert_eq!(tags("// omp parallel\nx"), vec![Tag::Ident, Tag::Eof]);
    }

    #[test]
    fn pragma_at_eof_without_newline() {
        let t = tags("//$omp barrier");
        assert_eq!(
            t,
            vec![Tag::PragmaSentinel, Tag::Ident, Tag::PragmaEnd, Tag::Eof]
        );
    }

    #[test]
    fn deref_and_compound_ops() {
        assert_eq!(
            tags("p.* += 2;"),
            vec![
                Tag::Ident,
                Tag::DotStar,
                Tag::PlusEq,
                Tag::IntLit,
                Tag::Semicolon,
                Tag::Eof
            ]
        );
        assert_eq!(
            tags("a <= b"),
            vec![Tag::Ident, Tag::LtEq, Tag::Ident, Tag::Eof]
        );
    }

    #[test]
    fn builtins() {
        assert_eq!(
            tags("@intToFloat(i)"),
            vec![Tag::Builtin, Tag::LParen, Tag::Ident, Tag::RParen, Tag::Eof]
        );
    }

    #[test]
    fn member_access_vs_deref() {
        assert_eq!(
            tags("omp.internal.barrier()"),
            vec![
                Tag::Ident,
                Tag::Dot,
                Tag::Ident,
                Tag::Dot,
                Tag::Ident,
                Tag::LParen,
                Tag::RParen,
                Tag::Eof
            ]
        );
    }

    #[test]
    fn spans_are_exact() {
        let src = "var abc = 12;";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks[1].text(src), "abc");
        assert_eq!(toks[3].text(src), "12");
    }

    #[test]
    fn openmp_names_are_identifiers_outside_pragmas() {
        // `parallel` must remain usable as a normal variable name — the
        // compatibility constraint that forced the identifier+hash-map
        // design in the paper.
        assert_eq!(
            tags("var parallel = 1;"),
            vec![
                Tag::KwVar,
                Tag::Ident,
                Tag::Eq,
                Tag::IntLit,
                Tag::Semicolon,
                Tag::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("\"abc").is_err());
    }

    #[test]
    fn strings_with_escapes() {
        let src = r#""he\"llo""#;
        let toks = tokenize(src).unwrap();
        assert_eq!(toks[0].tag, Tag::StrLit);
        assert_eq!(toks[0].text(src), src);
    }
}
