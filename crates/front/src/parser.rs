//! Recursive-descent parser for Zag.
//!
//! The heart is [`Parser::eat_token`] — the analogue of the Zig parser's
//! `eatToken` — plus the paper's modification: [`Parser::eat_omp_keyword`]
//! accepts an *OpenMP keyword tag* and matches an identifier token whose
//! text resolves through the keyword hash map (§III-A). Directive nodes
//! store their clause block in `extra_data` via [`crate::ast::Clauses`].

use crate::ast::{
    Ast, Clauses, DefaultKind, Node, NodeId, PackedSchedule, RedOpCode, SchedKind, Tag as N,
    TokenId,
};
use crate::omp_kw::{lookup, OmpKw};
use crate::token::{tokenize, Tag as T, Token};
use crate::Diag;

pub struct Parser<'s> {
    source: &'s str,
    tokens: Vec<Token>,
    pos: usize,
    nodes: Vec<Node>,
    extra: Vec<u32>,
    /// Per-node (first token, last token) — exact spans for the
    /// preprocessor's source splicing.
    spans: Vec<(TokenId, TokenId)>,
}

type PResult<T> = Result<T, Diag>;

/// Parse a full source file.
pub fn parse(source: &str) -> PResult<Ast> {
    let tokens = tokenize(source)?;
    let mut p = Parser {
        source,
        tokens,
        pos: 0,
        nodes: Vec::new(),
        extra: Vec::new(),
        spans: Vec::new(),
    };
    let root = p.parse_root()?;
    Ok(Ast {
        source: source.to_string(),
        tokens: p.tokens,
        nodes: p.nodes,
        extra_data: p.extra,
        node_spans: p.spans,
        root,
    })
}

impl<'s> Parser<'s> {
    fn cur(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn cur_tag(&self) -> T {
        self.cur().tag
    }

    fn here(&self) -> usize {
        self.cur().start as usize
    }

    fn err<R>(&self, msg: impl Into<String>) -> PResult<R> {
        Err(Diag::parse(self.here(), msg))
    }

    /// The Zig-style `eatToken`: if the next token matches, consume and
    /// return its id, else `None`.
    fn eat_token(&mut self, tag: T) -> Option<TokenId> {
        if self.cur_tag() == tag {
            let id = self.pos as TokenId;
            self.pos += 1;
            Some(id)
        } else {
            None
        }
    }

    /// The paper's extension of `eatToken`: match an identifier that the
    /// keyword hash map resolves to the requested OpenMP keyword tag.
    #[allow(dead_code)] // kept as the paper-described API; parsing uses peek
    fn eat_omp_keyword(&mut self, kw: OmpKw) -> Option<TokenId> {
        if self.cur_tag() == T::Ident && lookup(self.cur().text(self.source)) == Some(kw) {
            let id = self.pos as TokenId;
            self.pos += 1;
            Some(id)
        } else {
            None
        }
    }

    /// Peek the OpenMP keyword of the current token, if any. Directive and
    /// clause names that collide with *language* keywords (`while`, `if`)
    /// arrive as keyword tokens rather than identifiers and are mapped
    /// explicitly.
    fn peek_omp_keyword(&self) -> Option<OmpKw> {
        match self.cur_tag() {
            T::Ident => lookup(self.cur().text(self.source)),
            T::KwWhile => Some(OmpKw::While),
            T::KwIf => Some(OmpKw::If),
            _ => None,
        }
    }

    fn expect(&mut self, tag: T, what: &str) -> PResult<TokenId> {
        self.eat_token(tag)
            .ok_or_else(|| Diag::parse(self.here(), format!("expected {what}")))
    }

    /// Create a node. `start` is its first token; its last token is the
    /// one just consumed (every node is created after its tokens).
    fn add_at(
        &mut self,
        tag: N,
        main_token: TokenId,
        start: TokenId,
        lhs: u32,
        rhs: u32,
    ) -> NodeId {
        self.nodes.push(Node {
            tag,
            main_token,
            lhs,
            rhs,
        });
        self.spans
            .push((start, (self.pos.saturating_sub(1)) as TokenId));
        (self.nodes.len() - 1) as NodeId
    }

    fn node_start(&self, id: NodeId) -> TokenId {
        self.spans[id as usize].0
    }

    fn add_range(&mut self, items: &[NodeId]) -> (u32, u32) {
        let start = self.extra.len() as u32;
        self.extra.extend_from_slice(items);
        (start, self.extra.len() as u32)
    }

    // -- declarations -------------------------------------------------------

    fn parse_root(&mut self) -> PResult<NodeId> {
        let mut decls = Vec::new();
        while self.cur_tag() != T::Eof {
            decls.push(self.parse_top_decl()?);
        }
        let (lo, hi) = self.add_range(&decls);
        Ok(self.add_at(N::Root, 0, 0, lo, hi))
    }

    fn parse_top_decl(&mut self) -> PResult<NodeId> {
        match self.cur_tag() {
            T::KwFn => self.parse_fn_decl(),
            T::KwConst => self.parse_var_or_const(false),
            T::PragmaSentinel => self.parse_pragma(),
            _ => self.err("expected a function or constant declaration"),
        }
    }

    fn parse_fn_decl(&mut self) -> PResult<NodeId> {
        let start = self.pos as TokenId;
        self.expect(T::KwFn, "'fn'")?;
        let name = self.expect(T::Ident, "function name")?;
        self.expect(T::LParen, "'('")?;
        let mut params = Vec::new();
        while self.cur_tag() != T::RParen {
            let pname = self.expect(T::Ident, "parameter name")?;
            self.expect(T::Colon, "':' after parameter name")?;
            let ty = self.parse_type()?;
            params.push(self.add_at(N::Param, pname, pname, ty, 0));
            if self.eat_token(T::Comma).is_none() {
                break;
            }
        }
        self.expect(T::RParen, "')'")?;
        let _ret = self.parse_type()?;
        let body = self.parse_block()?;
        let mut items = params.clone();
        items.push(body);
        let (lo, _hi) = self.add_range(&items);
        Ok(self.add_at(N::FnDecl, name, start, lo, params.len() as u32))
    }

    /// Types are structural decoration in Zag (the VM is dynamically
    /// typed under the hood, mirroring the paper's "lack of semantic
    /// context" during preprocessing); we record the main type token.
    fn parse_type(&mut self) -> PResult<TokenId> {
        if self.eat_token(T::LBracket).is_some() {
            self.expect(T::RBracket, "']' in slice type")?;
            return self.expect(T::Ident, "element type");
        }
        if self.eat_token(T::Star).is_some() {
            return self.expect(T::Ident, "pointee type");
        }
        self.expect(T::Ident, "type name")
    }

    fn parse_block(&mut self) -> PResult<NodeId> {
        let open = self.expect(T::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        while self.cur_tag() != T::RBrace {
            if self.cur_tag() == T::Eof {
                return self.err("unclosed block");
            }
            stmts.push(self.parse_stmt()?);
        }
        self.expect(T::RBrace, "'}'")?;
        let (lo, hi) = self.add_range(&stmts);
        Ok(self.add_at(N::Block, open, open, lo, hi))
    }

    // -- statements ---------------------------------------------------------

    fn parse_stmt(&mut self) -> PResult<NodeId> {
        match self.cur_tag() {
            T::KwVar => self.parse_var_or_const(true),
            T::KwConst => self.parse_var_or_const(false),
            T::KwWhile => self.parse_while(),
            T::KwIf => self.parse_if(),
            T::KwReturn => {
                let tok = self.expect(T::KwReturn, "'return'")?;
                let expr = if self.cur_tag() != T::Semicolon {
                    self.parse_expr()? + 1
                } else {
                    0
                };
                self.expect(T::Semicolon, "';' after return")?;
                Ok(self.add_at(N::Return, tok, tok, expr, 0))
            }
            T::KwBreak => {
                let tok = self.expect(T::KwBreak, "'break'")?;
                self.expect(T::Semicolon, "';' after break")?;
                Ok(self.add_at(N::Break, tok, tok, 0, 0))
            }
            T::KwContinue => {
                let tok = self.expect(T::KwContinue, "'continue'")?;
                self.expect(T::Semicolon, "';' after continue")?;
                Ok(self.add_at(N::Continue, tok, tok, 0, 0))
            }
            T::LBrace => self.parse_block(),
            T::PragmaSentinel => self.parse_pragma(),
            _ => self.parse_assign_or_expr_stmt(),
        }
    }

    fn parse_var_or_const(&mut self, is_var: bool) -> PResult<NodeId> {
        let start = self.pos as TokenId;
        let kw = if is_var {
            self.expect(T::KwVar, "'var'")?
        } else {
            self.expect(T::KwConst, "'const'")?
        };
        let _ = kw;
        let name = self.expect(T::Ident, "variable name")?;
        let ty = if self.eat_token(T::Colon).is_some() {
            self.parse_type()? + 1
        } else {
            0
        };
        self.expect(T::Eq, "'=' (Zag requires an initializer)")?;
        let init = self.parse_expr()?;
        self.expect(T::Semicolon, "';' after declaration")?;
        Ok(self.add_at(
            if is_var { N::VarDecl } else { N::ConstDecl },
            name,
            start,
            ty,
            init + 1,
        ))
    }

    fn parse_while(&mut self) -> PResult<NodeId> {
        let tok = self.expect(T::KwWhile, "'while'")?;
        self.expect(T::LParen, "'(' after while")?;
        let cond = self.parse_expr()?;
        self.expect(T::RParen, "')' after condition")?;
        // Optional Zig-style continuation: `: (i += 1)`.
        let cont = if self.eat_token(T::Colon).is_some() {
            self.expect(T::LParen, "'(' after ':'")?;
            let c = self.parse_small_stmt()?;
            self.expect(T::RParen, "')' after continuation")?;
            c + 1
        } else {
            0
        };
        let body = self.parse_stmt()?;
        let (lo, _) = self.add_range(&[body, cont]);
        Ok(self.add_at(N::While, tok, tok, cond, lo))
    }

    /// A statement without trailing `;` (the while continuation).
    fn parse_small_stmt(&mut self) -> PResult<NodeId> {
        let lhs = self.parse_expr()?;
        let op = self.cur_tag();
        match op {
            T::Eq => {
                let tok = self.pos as TokenId;
                self.pos += 1;
                let rhs = self.parse_expr()?;
                Ok(self.add_at(N::Assign, tok, self.node_start(lhs), lhs, rhs))
            }
            T::PlusEq | T::MinusEq | T::StarEq | T::SlashEq => {
                let tok = self.pos as TokenId;
                self.pos += 1;
                let rhs = self.parse_expr()?;
                Ok(self.add_at(N::CompoundAssign, tok, self.node_start(lhs), lhs, rhs))
            }
            _ => Ok(self.add_at(
                N::ExprStmt,
                self.nodes[lhs as usize].main_token,
                self.node_start(lhs),
                lhs,
                0,
            )),
        }
    }

    fn parse_if(&mut self) -> PResult<NodeId> {
        let tok = self.expect(T::KwIf, "'if'")?;
        self.expect(T::LParen, "'(' after if")?;
        let cond = self.parse_expr()?;
        self.expect(T::RParen, "')' after condition")?;
        let then = self.parse_block()?;
        let els = if self.eat_token(T::KwElse).is_some() {
            let e = if self.cur_tag() == T::KwIf {
                self.parse_if()?
            } else {
                self.parse_block()?
            };
            e + 1
        } else {
            0
        };
        let (lo, _) = self.add_range(&[then, els]);
        Ok(self.add_at(N::If, tok, tok, cond, lo))
    }

    fn parse_assign_or_expr_stmt(&mut self) -> PResult<NodeId> {
        // `_ = expr;` discard.
        if self.cur_tag() == T::Ident && self.cur().text(self.source) == "_" {
            let tok = self.pos as TokenId;
            self.pos += 1;
            self.expect(T::Eq, "'=' after '_'")?;
            let rhs = self.parse_expr()?;
            self.expect(T::Semicolon, "';'")?;
            return Ok(self.add_at(N::Discard, tok, tok, rhs, 0));
        }
        let stmt = self.parse_small_stmt()?;
        self.expect(T::Semicolon, "';' after statement")?;
        Ok(stmt)
    }

    // -- expressions ----------------------------------------------------------

    fn parse_expr(&mut self) -> PResult<NodeId> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> PResult<NodeId> {
        let mut lhs = self.parse_and()?;
        while self.cur_tag() == T::KwOr {
            let tok = self.pos as TokenId;
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = self.add_at(N::BinOp, tok, self.node_start(lhs), lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> PResult<NodeId> {
        let mut lhs = self.parse_cmp()?;
        while self.cur_tag() == T::KwAnd {
            let tok = self.pos as TokenId;
            self.pos += 1;
            let rhs = self.parse_cmp()?;
            lhs = self.add_at(N::BinOp, tok, self.node_start(lhs), lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> PResult<NodeId> {
        let lhs = self.parse_add()?;
        match self.cur_tag() {
            T::EqEq | T::BangEq | T::Lt | T::LtEq | T::Gt | T::GtEq => {
                let tok = self.pos as TokenId;
                self.pos += 1;
                let rhs = self.parse_add()?;
                Ok(self.add_at(N::BinOp, tok, self.node_start(lhs), lhs, rhs))
            }
            _ => Ok(lhs),
        }
    }

    fn parse_add(&mut self) -> PResult<NodeId> {
        let mut lhs = self.parse_mul()?;
        loop {
            match self.cur_tag() {
                T::Plus | T::Minus => {
                    let tok = self.pos as TokenId;
                    self.pos += 1;
                    let rhs = self.parse_mul()?;
                    lhs = self.add_at(N::BinOp, tok, self.node_start(lhs), lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_mul(&mut self) -> PResult<NodeId> {
        let mut lhs = self.parse_unary()?;
        loop {
            match self.cur_tag() {
                T::Star | T::Slash | T::Percent => {
                    let tok = self.pos as TokenId;
                    self.pos += 1;
                    let rhs = self.parse_unary()?;
                    lhs = self.add_at(N::BinOp, tok, self.node_start(lhs), lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_unary(&mut self) -> PResult<NodeId> {
        match self.cur_tag() {
            T::Minus | T::Bang | T::Amp => {
                let tok = self.pos as TokenId;
                self.pos += 1;
                let operand = self.parse_unary()?;
                Ok(self.add_at(N::UnOp, tok, tok, operand, 0))
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> PResult<NodeId> {
        let mut e = self.parse_primary()?;
        loop {
            match self.cur_tag() {
                T::LParen => {
                    self.pos += 1;
                    let args = self.parse_args()?;
                    let (lo, hi) = self.add_range(&args);
                    // Call.rhs points at a 2-entry extra record [lo, hi]
                    // bounding the argument list.
                    let rec = self.extra.len() as u32;
                    self.extra.push(lo);
                    self.extra.push(hi);
                    let main = self.nodes[e as usize].main_token;
                    e = self.add_at(N::Call, main, self.node_start(e), e, rec);
                }
                T::LBracket => {
                    self.pos += 1;
                    let idx = self.parse_expr()?;
                    self.expect(T::RBracket, "']'")?;
                    let main = self.nodes[e as usize].main_token;
                    e = self.add_at(N::Index, main, self.node_start(e), e, idx);
                }
                T::DotStar => {
                    let tok = self.pos as TokenId;
                    self.pos += 1;
                    e = self.add_at(N::Deref, tok, self.node_start(e), e, 0);
                }
                T::Dot => {
                    self.pos += 1;
                    let field = self.expect(T::Ident, "field name after '.'")?;
                    e = self.add_at(N::Member, field, self.node_start(e), e, 0);
                }
                _ => return Ok(e),
            }
        }
    }

    fn parse_args(&mut self) -> PResult<Vec<NodeId>> {
        let mut args = Vec::new();
        while self.cur_tag() != T::RParen {
            args.push(self.parse_expr()?);
            if self.eat_token(T::Comma).is_none() {
                break;
            }
        }
        self.expect(T::RParen, "')' after arguments")?;
        Ok(args)
    }

    fn parse_primary(&mut self) -> PResult<NodeId> {
        let tok = self.pos as TokenId;
        match self.cur_tag() {
            T::IntLit => {
                self.pos += 1;
                Ok(self.add_at(N::IntLit, tok, tok, 0, 0))
            }
            T::FloatLit => {
                self.pos += 1;
                Ok(self.add_at(N::FloatLit, tok, tok, 0, 0))
            }
            T::StrLit => {
                self.pos += 1;
                Ok(self.add_at(N::StrLit, tok, tok, 0, 0))
            }
            T::KwTrue | T::KwFalse => {
                self.pos += 1;
                Ok(self.add_at(N::BoolLit, tok, tok, 0, 0))
            }
            T::KwUndefined => {
                self.pos += 1;
                Ok(self.add_at(N::UndefinedLit, tok, tok, 0, 0))
            }
            T::Ident => {
                self.pos += 1;
                Ok(self.add_at(N::Ident, tok, tok, 0, 0))
            }
            T::Builtin => {
                self.pos += 1;
                self.expect(T::LParen, "'(' after builtin")?;
                let args = self.parse_args()?;
                let (lo, hi) = self.add_range(&args);
                let n = self.add_at(N::BuiltinCall, tok, tok, lo, hi);
                Ok(n)
            }
            T::LParen => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect(T::RParen, "')'")?;
                Ok(e)
            }
            _ => self.err(format!("unexpected token {:?}", self.cur_tag())),
        }
    }

    // -- OpenMP pragmas -------------------------------------------------------

    fn parse_pragma(&mut self) -> PResult<NodeId> {
        let sentinel = self.expect(T::PragmaSentinel, "pragma sentinel")?;
        let kw = self
            .peek_omp_keyword()
            .ok_or_else(|| Diag::parse(self.here(), "expected an OpenMP directive name"))?;
        self.pos += 1;

        match kw {
            OmpKw::Parallel => {
                let clauses = self.parse_clauses()?;
                self.expect(T::PragmaEnd, "end of pragma line")?;
                let stmt = self.parse_block()?;
                let base = clauses.write(&mut self.extra);
                Ok(self.add_at(N::OmpParallel, sentinel, sentinel, base, stmt))
            }
            OmpKw::While => {
                let clauses = self.parse_clauses()?;
                self.expect(T::PragmaEnd, "end of pragma line")?;
                if self.cur_tag() != T::KwWhile {
                    return self.err("an 'omp while' directive must be followed by a while loop");
                }
                let stmt = self.parse_while()?;
                let base = clauses.write(&mut self.extra);
                Ok(self.add_at(N::OmpWhile, sentinel, sentinel, base, stmt))
            }
            OmpKw::Barrier => {
                self.expect(T::PragmaEnd, "end of pragma line")?;
                let base = Clauses::default().write(&mut self.extra);
                Ok(self.add_at(N::OmpBarrier, sentinel, sentinel, base, 0))
            }
            OmpKw::Critical => {
                // Optional `(name)`.
                let name_tok = if self.eat_token(T::LParen).is_some() {
                    let t = self.expect(T::Ident, "critical section name")?;
                    self.expect(T::RParen, "')' after critical name")?;
                    t
                } else {
                    sentinel
                };
                self.expect(T::PragmaEnd, "end of pragma line")?;
                let stmt = self.parse_block()?;
                let base = Clauses::default().write(&mut self.extra);
                // main_token points at the name ident when one was given
                // (the sentinel token otherwise).
                Ok(self.add_at(N::OmpCritical, name_tok, sentinel, base, stmt))
            }
            OmpKw::Master => {
                self.expect(T::PragmaEnd, "end of pragma line")?;
                let stmt = self.parse_block()?;
                let base = Clauses::default().write(&mut self.extra);
                Ok(self.add_at(N::OmpMaster, sentinel, sentinel, base, stmt))
            }
            OmpKw::Single => {
                let clauses = self.parse_clauses()?;
                self.expect(T::PragmaEnd, "end of pragma line")?;
                let stmt = self.parse_block()?;
                let base = clauses.write(&mut self.extra);
                Ok(self.add_at(N::OmpSingle, sentinel, sentinel, base, stmt))
            }
            OmpKw::Atomic => {
                self.expect(T::PragmaEnd, "end of pragma line")?;
                let stmt = self.parse_assign_or_expr_stmt()?;
                if self.nodes[stmt as usize].tag != N::CompoundAssign {
                    return self.err(
                        "'omp atomic' must be followed by a compound assignment (x op= expr)",
                    );
                }
                let base = Clauses::default().write(&mut self.extra);
                Ok(self.add_at(N::OmpAtomic, sentinel, sentinel, base, stmt))
            }
            OmpKw::Threadprivate => {
                let mut clauses = Clauses::default();
                self.expect(T::LParen, "'(' after threadprivate")?;
                clauses.private = self.parse_ident_list()?;
                self.expect(T::PragmaEnd, "end of pragma line")?;
                let base = clauses.write(&mut self.extra);
                Ok(self.add_at(N::OmpThreadprivate, sentinel, sentinel, base, 0))
            }
            other => self.err(format!("{other:?} is not a directive name")),
        }
    }

    fn parse_ident_list(&mut self) -> PResult<Vec<TokenId>> {
        // Caller has consumed '('.
        let mut out = Vec::new();
        loop {
            out.push(self.expect(T::Ident, "identifier in clause list")?);
            // A trailing `.*` marks a place rewritten by an earlier
            // preprocessor pass (a shared scalar turned pointer); the
            // clause stores the identifier token and consumers detect the
            // deref from the following token.
            let _ = self.eat_token(T::DotStar);
            if self.eat_token(T::Comma).is_none() {
                break;
            }
        }
        self.expect(T::RParen, "')' after clause list")?;
        Ok(out)
    }

    fn parse_clauses(&mut self) -> PResult<Clauses> {
        let mut c = Clauses::default();
        loop {
            let Some(kw) = self.peek_omp_keyword() else {
                if self.cur_tag() == T::PragmaEnd {
                    return Ok(c);
                }
                return self.err("expected a clause or end of pragma");
            };
            self.pos += 1;
            match kw {
                OmpKw::Private => {
                    self.expect(T::LParen, "'(' after private")?;
                    c.private.extend(self.parse_ident_list()?);
                }
                OmpKw::Firstprivate => {
                    self.expect(T::LParen, "'(' after firstprivate")?;
                    c.firstprivate.extend(self.parse_ident_list()?);
                }
                OmpKw::Shared => {
                    self.expect(T::LParen, "'(' after shared")?;
                    c.shared.extend(self.parse_ident_list()?);
                }
                OmpKw::Reduction => {
                    self.expect(T::LParen, "'(' after reduction")?;
                    let op = self.parse_reduction_op()?;
                    self.expect(T::Colon, "':' after reduction operator")?;
                    for tok in self.parse_ident_list()? {
                        c.reduction.push((op, tok));
                    }
                }
                OmpKw::Schedule => {
                    self.expect(T::LParen, "'(' after schedule")?;
                    let kind = match self.peek_omp_keyword() {
                        Some(OmpKw::Static) => SchedKind::Static,
                        Some(OmpKw::Dynamic) => SchedKind::Dynamic,
                        Some(OmpKw::Guided) => SchedKind::Guided,
                        Some(OmpKw::Runtime) => SchedKind::Runtime,
                        Some(OmpKw::Auto) => SchedKind::Auto,
                        _ => return self.err("expected a schedule kind"),
                    };
                    self.pos += 1;
                    let chunk = if self.eat_token(T::Comma).is_some() {
                        let lit = self.expect(T::IntLit, "chunk size literal")?;
                        let v: u32 = self.tokens[lit as usize]
                            .text(self.source)
                            .parse()
                            .map_err(|_| Diag::parse(self.here(), "bad chunk size"))?;
                        if v == 0 {
                            return self.err("chunk size must be greater than 0");
                        }
                        Some(v)
                    } else {
                        None
                    };
                    self.expect(T::RParen, "')' after schedule")?;
                    c.schedule = Some(PackedSchedule { kind, chunk });
                }
                OmpKw::Nowait => c.flags.nowait = true,
                OmpKw::Default => {
                    self.expect(T::LParen, "'(' after default")?;
                    c.flags.default = match self.peek_omp_keyword() {
                        Some(OmpKw::Shared) => DefaultKind::Shared,
                        Some(OmpKw::None) => DefaultKind::None,
                        _ => return self.err("expected shared or none"),
                    };
                    self.pos += 1;
                    self.expect(T::RParen, "')' after default")?;
                }
                OmpKw::NumThreads => {
                    self.expect(T::LParen, "'(' after num_threads")?;
                    let e = self.parse_expr()?;
                    self.expect(T::RParen, "')' after num_threads")?;
                    c.num_threads = Some(e);
                }
                OmpKw::Collapse => {
                    self.expect(T::LParen, "'(' after collapse")?;
                    let lit = self.expect(T::IntLit, "collapse depth literal")?;
                    let v: u8 = self.tokens[lit as usize]
                        .text(self.source)
                        .parse()
                        .map_err(|_| Diag::parse(self.here(), "bad collapse depth"))?;
                    if v == 0 || v >= 16 {
                        return self.err("collapse depth must be in 1..16");
                    }
                    self.expect(T::RParen, "')' after collapse")?;
                    c.flags.collapse = v;
                }
                OmpKw::If => {
                    self.expect(T::LParen, "'(' after if")?;
                    let e = self.parse_expr()?;
                    self.expect(T::RParen, "')' after if clause")?;
                    c.if_expr = Some(e);
                }
                other => return self.err(format!("{other:?} is not a clause here")),
            }
        }
    }

    fn parse_reduction_op(&mut self) -> PResult<RedOpCode> {
        let op = match self.cur_tag() {
            T::Plus | T::Minus => RedOpCode::Add,
            T::Star => RedOpCode::Mul,
            T::Amp => RedOpCode::BitAnd,
            T::Ident => match self.peek_omp_keyword() {
                Some(OmpKw::Min) => RedOpCode::Min,
                Some(OmpKw::Max) => RedOpCode::Max,
                _ => return self.err("unknown reduction operator"),
            },
            T::KwAnd => RedOpCode::LogAnd,
            T::KwOr => RedOpCode::LogOr,
            _ => return self.err("unknown reduction operator"),
        };
        self.pos += 1;
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Tag;

    fn parse_ok(src: &str) -> Ast {
        parse(src).map_err(|e| panic!("{}", e.render(src))).unwrap()
    }

    fn find(ast: &Ast, tag: Tag) -> Vec<NodeId> {
        (0..ast.nodes.len() as u32)
            .filter(|&i| ast.node(i).tag == tag)
            .collect()
    }

    #[test]
    fn parses_minimal_program() {
        let ast = parse_ok("fn main() void { var x: i64 = 1; x = x + 2; }");
        assert_eq!(find(&ast, Tag::FnDecl).len(), 1);
        assert_eq!(find(&ast, Tag::VarDecl).len(), 1);
        assert_eq!(find(&ast, Tag::Assign).len(), 1);
    }

    #[test]
    fn parses_zig_style_while() {
        let ast = parse_ok("fn f() void { var i: i64 = 0; while (i < 10) : (i += 1) { i = i; } }");
        let whiles = find(&ast, Tag::While);
        assert_eq!(whiles.len(), 1);
        let w = ast.node(whiles[0]);
        // continuation is present.
        let body_cont = ast.extra(w.rhs, w.rhs + 2);
        assert_ne!(body_cont[1], 0, "continuation expected");
    }

    #[test]
    fn parses_parallel_pragma_with_clauses() {
        let src = "fn main() void {\n\
                   var s: f64 = 0.0;\n\
                   //$omp parallel num_threads(4) private(t) firstprivate(a) shared(s) reduction(+: s) default(shared)\n\
                   { s = 1.0; }\n\
                   }";
        let ast = parse_ok(src);
        let ps = find(&ast, Tag::OmpParallel);
        assert_eq!(ps.len(), 1);
        let node = ast.node(ps[0]);
        let c = Clauses::read(&ast.extra_data, node.lhs);
        assert!(c.num_threads.is_some());
        assert_eq!(c.private.len(), 1);
        assert_eq!(ast.token_text(c.private[0]), "t");
        assert_eq!(ast.token_text(c.firstprivate[0]), "a");
        assert_eq!(ast.token_text(c.shared[0]), "s");
        assert_eq!(c.reduction.len(), 1);
        assert_eq!(c.reduction[0].0, RedOpCode::Add);
        assert_eq!(c.flags.default, DefaultKind::Shared);
        // The attached statement is a block.
        assert_eq!(ast.node(node.rhs).tag, Tag::Block);
    }

    #[test]
    fn parses_omp_while_with_schedule() {
        let src = "fn f() void {\n\
                   var i: i64 = 0;\n\
                   //$omp while schedule(dynamic, 16) nowait\n\
                   while (i < 100) : (i += 1) { }\n\
                   }";
        let ast = parse_ok(src);
        let ws = find(&ast, Tag::OmpWhile);
        assert_eq!(ws.len(), 1);
        let c = Clauses::read(&ast.extra_data, ast.node(ws[0]).lhs);
        let s = c.schedule.unwrap();
        assert_eq!(s.kind, SchedKind::Dynamic);
        assert_eq!(s.chunk, Some(16));
        assert!(c.flags.nowait);
    }

    #[test]
    fn omp_while_requires_a_loop() {
        let src = "fn f() void {\n//$omp while\nvar x: i64 = 1;\n}";
        assert!(parse(src).is_err());
    }

    #[test]
    fn chunk_zero_rejected() {
        let src = "fn f() void { var i: i64 = 0;\n//$omp while schedule(static, 0)\nwhile (i < 1) : (i += 1) {} }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn parses_simple_directives() {
        let src = "fn f() void {\n\
                   //$omp barrier\n\
                   //$omp critical (mylock)\n{ }\n\
                   //$omp master\n{ }\n\
                   //$omp single nowait\n{ }\n\
                   var x: i64 = 0;\n\
                   //$omp atomic\nx += 1;\n\
                   }";
        let ast = parse_ok(src);
        assert_eq!(find(&ast, Tag::OmpBarrier).len(), 1);
        let crit = find(&ast, Tag::OmpCritical);
        assert_eq!(crit.len(), 1);
        assert_eq!(ast.token_text(ast.node(crit[0]).main_token), "mylock");
        assert_eq!(find(&ast, Tag::OmpMaster).len(), 1);
        let single = find(&ast, Tag::OmpSingle);
        assert_eq!(single.len(), 1);
        assert!(
            Clauses::read(&ast.extra_data, ast.node(single[0]).lhs)
                .flags
                .nowait
        );
        assert_eq!(find(&ast, Tag::OmpAtomic).len(), 1);
    }

    #[test]
    fn atomic_requires_compound_assignment() {
        let src = "fn f() void { var x: i64 = 0;\n//$omp atomic\nx = 1;\n}";
        assert!(parse(src).is_err());
    }

    #[test]
    fn openmp_names_usable_as_variables() {
        // The compatibility property the keyword-map design preserves.
        let ast = parse_ok("fn f() void { var parallel: i64 = 1; parallel = parallel + 1; }");
        assert_eq!(find(&ast, Tag::OmpParallel).len(), 0);
        assert_eq!(find(&ast, Tag::VarDecl).len(), 1);
    }

    #[test]
    fn member_calls_and_builtins() {
        let ast =
            parse_ok("fn f() void { var x: f64 = @intToFloat(omp.internal.get_tid()); x = x; }");
        assert_eq!(find(&ast, Tag::BuiltinCall).len(), 1);
        assert!(find(&ast, Tag::Member).len() >= 2);
    }

    #[test]
    fn address_of_and_deref() {
        let ast = parse_ok("fn f() void { var x: i64 = 0; var p: *i64 = &x; p.* = 3; p.* += 1; }");
        assert!(find(&ast, Tag::Deref).len() >= 2);
        assert_eq!(find(&ast, Tag::UnOp).len(), 1);
    }

    #[test]
    fn has_pragmas_reports_correctly() {
        let with = parse_ok("fn f() void {\n//$omp barrier\n}");
        assert!(with.has_pragmas());
        let without = parse_ok("fn f() void { }");
        assert!(!without.has_pragmas());
    }

    #[test]
    fn threadprivate_directive() {
        let ast = parse_ok("//$omp threadprivate(counter)\nfn f() void { }");
        let tp = find(&ast, Tag::OmpThreadprivate);
        assert_eq!(tp.len(), 1);
        let c = Clauses::read(&ast.extra_data, ast.node(tp[0]).lhs);
        assert_eq!(ast.token_text(c.private[0]), "counter");
    }
}
