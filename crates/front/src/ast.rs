//! The flat AST and its `extra_data` side array.
//!
//! Following the Zig compiler's design (and therefore the paper's): nodes
//! live in one flat vector; each node carries a tag, its main token, and
//! two `u32` operands. Anything that does not fit in two operands spills
//! into `extra_data: Vec<u32>` — "an array of 32 bit integers ... used to
//! annotate miscellaneous data about nodes" (§III-A).
//!
//! OpenMP clause storage reproduces §III-A1/A2 exactly:
//!
//! * **List clauses** (`private`, `firstprivate`, `shared`, `reduction`) —
//!   their identifiers' token indices are stored contiguously in
//!   `extra_data`, with begin/end indices of the slice stored in the clause
//!   block (Fig. 2).
//! * **Packed clauses** — the schedule is a 3-bit kind plus a 29-bit chunk
//!   in a single `u32` ([`PackedSchedule`]; chunk 0 = unspecified, since
//!   chunks must be positive); `default` (2 bits), `nowait` (1 bit) and
//!   `collapse` (4 bits) share one packed `u32` ([`PackedFlags`]).

use crate::token::Token;

pub type NodeId = u32;
pub type TokenId = u32;
pub type ExtraId = u32;

/// Node kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// Root: `lhs..rhs` extra range of top-level declarations.
    Root,
    /// `fn name(params) ret { body }`: lhs = extra range [params..., body],
    /// rhs = param count. main_token = name.
    FnDecl,
    /// Parameter: main_token = name, lhs = type token.
    Param,
    /// `{ stmts }`: lhs..rhs extra range of statements.
    Block,
    /// `var name: T = init;`: main_token = name, lhs = type token id (or 0),
    /// rhs = init node (or 0).
    VarDecl,
    /// `const name = init;` / `const name: T = init;`
    ConstDecl,
    /// `lhs = rhs;` where lhs is a place expression.
    Assign,
    /// `lhs op= rhs;`: main_token = the operator token.
    CompoundAssign,
    /// `while (cond) [: (cont)] body`: lhs = cond, rhs = extra [body, cont(0)].
    While,
    /// `if (cond) then [else els]`: lhs = cond, rhs = extra [then, els(0)].
    If,
    /// `return expr;` (lhs = expr or 0).
    Return,
    Break,
    Continue,
    /// `_ = expr;` discard.
    Discard,
    /// Expression statement (a call).
    ExprStmt,

    // Expressions.
    /// Binary op: main_token = operator, lhs/rhs = operands.
    BinOp,
    /// Unary: main_token = operator (`-`, `!`, `&`), lhs = operand.
    UnOp,
    /// Call: lhs = callee, rhs = index of a 2-entry extra record
    /// `[args_start, args_end)` bounding the argument node list.
    Call,
    /// `lhs[rhs]`.
    Index,
    /// `lhs.field`: main_token = field ident.
    Member,
    /// `lhs.*`.
    Deref,
    Ident,
    IntLit,
    FloatLit,
    StrLit,
    BoolLit,
    UndefinedLit,
    /// `@name(args)`: main_token = builtin token, rhs = extra range args.
    BuiltinCall,

    // OpenMP directives (lhs = extra index of the clause block,
    // rhs = attached statement node or 0).
    OmpParallel,
    OmpWhile,
    OmpBarrier,
    OmpCritical,
    OmpMaster,
    OmpSingle,
    OmpAtomic,
    OmpThreadprivate,
}

/// One AST node.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    pub tag: Tag,
    pub main_token: TokenId,
    pub lhs: u32,
    pub rhs: u32,
}

/// The parse result: source, tokens, flat nodes, side array.
#[derive(Debug, Clone)]
pub struct Ast {
    pub source: String,
    pub tokens: Vec<Token>,
    pub nodes: Vec<Node>,
    pub extra_data: Vec<u32>,
    /// Per-node (first token, last token), parallel to `nodes`.
    pub node_spans: Vec<(TokenId, TokenId)>,
    /// Index of the `Root` node.
    pub root: NodeId,
}

impl Ast {
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    pub fn token_text(&self, id: TokenId) -> &str {
        self.tokens[id as usize].text(&self.source)
    }

    /// The extra_data slice `[start, end)`.
    pub fn extra(&self, start: ExtraId, end: ExtraId) -> &[u32] {
        &self.extra_data[start as usize..end as usize]
    }

    /// All node ids of a `Root`/`Block` style extra range.
    pub fn range(&self, node: &Node) -> &[u32] {
        self.extra(node.lhs, node.rhs)
    }

    /// Byte span of a node in the source (for preprocessor splicing).
    pub fn byte_span(&self, id: NodeId) -> (usize, usize) {
        let (first, last) = self.node_spans[id as usize];
        (
            self.tokens[first as usize].start as usize,
            self.tokens[last as usize].end as usize,
        )
    }

    /// Source text of a node.
    pub fn node_text(&self, id: NodeId) -> &str {
        let (s, e) = self.byte_span(id);
        &self.source[s..e]
    }

    /// Call arguments of a `Call` node.
    pub fn call_args(&self, node: &Node) -> &[u32] {
        let rec = node.rhs as usize;
        let (lo, hi) = (self.extra_data[rec], self.extra_data[rec + 1]);
        self.extra(lo, hi)
    }

    /// Decompose a `FnDecl` node: (parameter node ids, body block id).
    /// The name is `token_text(node.main_token)`.
    pub fn fn_parts(&self, node: &Node) -> (&[u32], NodeId) {
        debug_assert_eq!(node.tag, Tag::FnDecl);
        let nparams = node.rhs as usize;
        let params = self.extra(node.lhs, node.lhs + nparams as u32);
        let body = self.extra_data[node.lhs as usize + nparams];
        (params, body)
    }

    /// Decompose a `While` node: (condition, body, optional continue stmt).
    pub fn while_parts(&self, node: &Node) -> (NodeId, NodeId, Option<NodeId>) {
        debug_assert_eq!(node.tag, Tag::While);
        let body = self.extra_data[node.rhs as usize];
        let cont = self.extra_data[node.rhs as usize + 1];
        (node.lhs, body, (cont > 0).then(|| cont - 1))
    }

    /// Decompose an `If` node: (condition, then stmt, optional else stmt).
    pub fn if_parts(&self, node: &Node) -> (NodeId, NodeId, Option<NodeId>) {
        debug_assert_eq!(node.tag, Tag::If);
        let then = self.extra_data[node.rhs as usize];
        let els = self.extra_data[node.rhs as usize + 1];
        (node.lhs, then, (els > 0).then(|| els - 1))
    }

    /// Does the AST still contain any OpenMP directive node?
    pub fn has_pragmas(&self) -> bool {
        self.nodes.iter().any(|n| {
            matches!(
                n.tag,
                Tag::OmpParallel
                    | Tag::OmpWhile
                    | Tag::OmpBarrier
                    | Tag::OmpCritical
                    | Tag::OmpMaster
                    | Tag::OmpSingle
                    | Tag::OmpAtomic
                    | Tag::OmpThreadprivate
            )
        })
    }
}

// ---------------------------------------------------------------------------
// Packed clause encodings (§III-A2)
// ---------------------------------------------------------------------------

/// Schedule kinds, 3 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SchedKind {
    NotSpecified = 0,
    Static = 1,
    Dynamic = 2,
    Guided = 3,
    Runtime = 4,
    Auto = 5,
}

impl SchedKind {
    fn from_bits(v: u32) -> SchedKind {
        match v {
            1 => SchedKind::Static,
            2 => SchedKind::Dynamic,
            3 => SchedKind::Guided,
            4 => SchedKind::Runtime,
            5 => SchedKind::Auto,
            _ => SchedKind::NotSpecified,
        }
    }
}

/// The `schedule` clause packed into one `u32`: a 3-bit kind followed by a
/// 29-bit chunk size, "which allows for a maximum chunk of 536870912
/// iterations. Because the chunk size must be greater than 0, the value 0
/// is used to represent no chunk size having been specified."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedSchedule {
    pub kind: SchedKind,
    /// `None` encoded as 0.
    pub chunk: Option<u32>,
}

/// Maximum encodable chunk: 2^29 - 1 iterations fit; the paper quotes the
/// count of expressible values (2^29).
pub const MAX_CHUNK: u32 = (1 << 29) - 1;

impl PackedSchedule {
    pub fn encode(self) -> u32 {
        let chunk = self.chunk.unwrap_or(0);
        assert!(chunk <= MAX_CHUNK, "chunk {chunk} exceeds 29 bits");
        ((self.kind as u32) & 0b111) | (chunk << 3)
    }

    pub fn decode(v: u32) -> PackedSchedule {
        let kind = SchedKind::from_bits(v & 0b111);
        let chunk = v >> 3;
        PackedSchedule {
            kind,
            chunk: (chunk > 0).then_some(chunk),
        }
    }
}

/// `default` clause argument, 2 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum DefaultKind {
    NotSpecified = 0,
    Shared = 1,
    None = 2,
}

/// The sub-32-bit clauses grouped into one packed `u32` (§III-A2): the
/// `default` clause (2 bits), `nowait` (1 bit), and `collapse` (4 bits —
/// "it is unlikely that a user would wish to collapse more than 16 loops").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedFlags {
    pub default: DefaultKind,
    pub nowait: bool,
    /// 0 = not specified (treated as 1).
    pub collapse: u8,
    /// Was a `num_threads` clause present?
    pub has_num_threads: bool,
}

impl PackedFlags {
    pub fn encode(self) -> u32 {
        assert!(
            self.collapse < 16,
            "collapse {} exceeds 4 bits",
            self.collapse
        );
        (self.default as u32)
            | ((self.nowait as u32) << 2)
            | ((self.collapse as u32) << 3)
            | ((self.has_num_threads as u32) << 7)
    }

    pub fn decode(v: u32) -> PackedFlags {
        PackedFlags {
            default: match v & 0b11 {
                1 => DefaultKind::Shared,
                2 => DefaultKind::None,
                _ => DefaultKind::NotSpecified,
            },
            nowait: (v >> 2) & 1 == 1,
            collapse: ((v >> 3) & 0b1111) as u8,
            has_num_threads: (v >> 7) & 1 == 1,
        }
    }
}

impl Default for PackedFlags {
    fn default() -> Self {
        PackedFlags {
            default: DefaultKind::NotSpecified,
            nowait: false,
            collapse: 0,
            has_num_threads: false,
        }
    }
}

/// Reduction operators, stored as a 4-bit code next to each reduction list
/// entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RedOpCode {
    Add = 0,
    Mul = 1,
    Min = 2,
    Max = 3,
    BitAnd = 4,
    BitOr = 5,
    BitXor = 6,
    LogAnd = 7,
    LogOr = 8,
}

impl RedOpCode {
    pub fn from_u32(v: u32) -> Option<RedOpCode> {
        Some(match v {
            0 => RedOpCode::Add,
            1 => RedOpCode::Mul,
            2 => RedOpCode::Min,
            3 => RedOpCode::Max,
            4 => RedOpCode::BitAnd,
            5 => RedOpCode::BitOr,
            6 => RedOpCode::BitXor,
            7 => RedOpCode::LogAnd,
            8 => RedOpCode::LogOr,
            _ => return None,
        })
    }
}

/// The decoded clause block of one directive. The encoded form in
/// `extra_data` is:
///
/// ```text
/// [base + 0]  PackedSchedule
/// [base + 1]  PackedFlags
/// [base + 2]  num_threads expression node id (0 = none)
/// [base + 3]  if-clause expression node id (0 = none)
/// [base + 4]  private    slice start   ┐ token-id slices, stored
/// [base + 5]  private    slice end     │ contiguously after the header —
/// [base + 6]  firstprivate start       │ the Fig. 2 layout
/// [base + 7]  firstprivate end         │
/// [base + 8]  shared     start         │
/// [base + 9]  shared     end           ┘
/// [base +10]  reduction  start  — pairs of (op code, ident token id)
/// [base +11]  reduction  end
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clauses {
    pub schedule: Option<PackedSchedule>,
    pub flags: PackedFlags,
    pub num_threads: Option<NodeId>,
    pub if_expr: Option<NodeId>,
    pub private: Vec<TokenId>,
    pub firstprivate: Vec<TokenId>,
    pub shared: Vec<TokenId>,
    pub reduction: Vec<(RedOpCode, TokenId)>,
}

pub const CLAUSE_HEADER_LEN: usize = 12;

impl Clauses {
    /// Serialise into `extra_data`, returning the base index the directive
    /// node stores in `lhs`.
    pub fn write(&self, extra: &mut Vec<u32>) -> ExtraId {
        let base = extra.len() as u32;
        extra.resize(extra.len() + CLAUSE_HEADER_LEN, 0);
        let sched = self
            .schedule
            .unwrap_or(PackedSchedule {
                kind: SchedKind::NotSpecified,
                chunk: None,
            })
            .encode();
        let mut flags = self.flags;
        flags.has_num_threads = self.num_threads.is_some();
        let b = base as usize;
        extra[b] = sched;
        extra[b + 1] = flags.encode();
        extra[b + 2] = self.num_threads.unwrap_or(0);
        extra[b + 3] = self.if_expr.unwrap_or(0);
        let write_slice = |extra: &mut Vec<u32>, at: usize, items: &[u32]| {
            let start = extra.len() as u32;
            extra.extend_from_slice(items);
            let end = extra.len() as u32;
            extra[b + at] = start;
            extra[b + at + 1] = end;
        };
        write_slice(extra, 4, &self.private);
        write_slice(extra, 6, &self.firstprivate);
        write_slice(extra, 8, &self.shared);
        let red: Vec<u32> = self
            .reduction
            .iter()
            .flat_map(|&(op, tok)| [op as u32, tok])
            .collect();
        write_slice(extra, 10, &red);
        base
    }

    /// Deserialise from `extra_data`.
    pub fn read(extra: &[u32], base: ExtraId) -> Clauses {
        let b = base as usize;
        let sched = PackedSchedule::decode(extra[b]);
        let flags = PackedFlags::decode(extra[b + 1]);
        let slice = |at: usize| -> Vec<u32> {
            let (s, e) = (extra[b + at] as usize, extra[b + at + 1] as usize);
            extra[s..e].to_vec()
        };
        let red_raw = slice(10);
        let reduction = red_raw
            .chunks(2)
            .map(|p| (RedOpCode::from_u32(p[0]).expect("valid reduction op"), p[1]))
            .collect();
        Clauses {
            schedule: (sched.kind != SchedKind::NotSpecified).then_some(sched),
            flags,
            num_threads: (extra[b + 2] != 0).then_some(extra[b + 2]),
            if_expr: (extra[b + 3] != 0).then_some(extra[b + 3]),
            private: slice(4),
            firstprivate: slice(6),
            shared: slice(8),
            reduction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_packing_roundtrips() {
        for kind in [
            SchedKind::Static,
            SchedKind::Dynamic,
            SchedKind::Guided,
            SchedKind::Runtime,
        ] {
            for chunk in [None, Some(1), Some(7), Some(MAX_CHUNK)] {
                let s = PackedSchedule { kind, chunk };
                let decoded = PackedSchedule::decode(s.encode());
                assert_eq!(decoded, s);
            }
        }
    }

    #[test]
    fn schedule_fits_one_u32_with_3_bit_kind() {
        let s = PackedSchedule {
            kind: SchedKind::Guided,
            chunk: Some(MAX_CHUNK),
        };
        let v = s.encode();
        assert_eq!(v & 0b111, SchedKind::Guided as u32);
        assert_eq!(v >> 3, MAX_CHUNK);
    }

    #[test]
    #[should_panic(expected = "exceeds 29 bits")]
    fn oversized_chunk_rejected() {
        PackedSchedule {
            kind: SchedKind::Static,
            chunk: Some(MAX_CHUNK + 1),
        }
        .encode();
    }

    #[test]
    fn flags_packing_roundtrips() {
        for default in [
            DefaultKind::NotSpecified,
            DefaultKind::Shared,
            DefaultKind::None,
        ] {
            for nowait in [false, true] {
                for collapse in [0u8, 1, 15] {
                    let f = PackedFlags {
                        default,
                        nowait,
                        collapse,
                        has_num_threads: nowait, // arbitrary mix
                    };
                    assert_eq!(PackedFlags::decode(f.encode()), f);
                }
            }
        }
    }

    #[test]
    fn clause_block_roundtrips_through_extra_data() {
        let mut extra = vec![99, 98]; // pre-existing data must be preserved
        let c = Clauses {
            schedule: Some(PackedSchedule {
                kind: SchedKind::Dynamic,
                chunk: Some(16),
            }),
            flags: PackedFlags {
                default: DefaultKind::Shared,
                nowait: true,
                collapse: 2,
                has_num_threads: false,
            },
            num_threads: Some(42),
            if_expr: None,
            private: vec![10, 11, 12],
            firstprivate: vec![20],
            shared: vec![30, 31],
            reduction: vec![(RedOpCode::Add, 40), (RedOpCode::Mul, 41)],
        };
        let base = c.write(&mut extra);
        assert_eq!(&extra[..2], &[99, 98]);
        let back = Clauses::read(&extra, base);
        assert_eq!(back.schedule, c.schedule);
        assert!(back.flags.nowait);
        assert_eq!(back.flags.default, DefaultKind::Shared);
        assert_eq!(back.flags.collapse, 2);
        assert!(back.flags.has_num_threads);
        assert_eq!(back.num_threads, Some(42));
        assert_eq!(back.private, vec![10, 11, 12]);
        assert_eq!(back.firstprivate, vec![20]);
        assert_eq!(back.shared, vec![30, 31]);
        assert_eq!(
            back.reduction,
            vec![(RedOpCode::Add, 40), (RedOpCode::Mul, 41)]
        );
    }

    #[test]
    fn empty_clause_block_roundtrips() {
        let mut extra = Vec::new();
        let base = Clauses::default().write(&mut extra);
        let back = Clauses::read(&extra, base);
        assert!(back.schedule.is_none());
        assert!(back.private.is_empty());
        assert!(back.reduction.is_empty());
        assert!(!back.flags.nowait);
    }
}
