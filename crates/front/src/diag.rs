//! The unified diagnostics type of the front-end.
//!
//! Every error and warning the pipeline can produce — tokenizer, parser,
//! preprocessor, the data-sharing analysis of [`crate::analyze`], and the
//! VM's program loader — is one [`Diag`]: a severity, a stable rule code,
//! a byte offset into the source it was produced against, an optional
//! pragma label (`unit:line`, the same label `preprocess_named` threads
//! into `fork_call` for the observability layer), the message, and an
//! optional note. Consumers render all of them through [`Diag::render`],
//! so `zag` has exactly one diagnostic formatter.

/// How bad is it: `Error` refuses the program, `Warning` reports and
/// continues (unless the user asked for `--check=deny`), `Remark` is
/// purely informational (optimization remarks, `zag --remarks`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
    Remark,
}

/// One structured diagnostic.
#[derive(Debug, Clone)]
pub struct Diag {
    pub severity: Severity,
    /// Stable machine-readable id: `"lex"`, `"parse"`, `"preprocess"` for
    /// pipeline errors; the rule name (`"race-shared-write"`, ...) for
    /// analysis findings.
    pub code: &'static str,
    /// Byte offset of the primary location in the source the diagnostic
    /// was produced against.
    pub offset: usize,
    /// The owning pragma's `unit:line` label, when the diagnostic belongs
    /// to a directive (analysis findings always carry one).
    pub label: Option<String>,
    pub message: String,
    /// An optional secondary remark (how to fix, what the rule protects).
    pub note: Option<String>,
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.severity {
            Severity::Error => write!(f, "error at byte {}: {}", self.offset, self.message),
            Severity::Warning => {
                write!(
                    f,
                    "warning[{}] at byte {}: {}",
                    self.code, self.offset, self.message
                )
            }
            Severity::Remark => {
                write!(
                    f,
                    "remark[{}] at byte {}: {}",
                    self.code, self.offset, self.message
                )
            }
        }
    }
}

impl std::error::Error for Diag {}

impl Diag {
    /// Plain error with the generic code.
    pub fn new(offset: usize, message: impl Into<String>) -> Diag {
        Diag::error("error", offset, message)
    }

    /// An error diagnostic carrying a stable code.
    pub fn error(code: &'static str, offset: usize, message: impl Into<String>) -> Diag {
        Diag {
            severity: Severity::Error,
            code,
            offset,
            label: None,
            message: message.into(),
            note: None,
        }
    }

    /// A warning diagnostic carrying a stable code.
    pub fn warning(code: &'static str, offset: usize, message: impl Into<String>) -> Diag {
        Diag {
            severity: Severity::Warning,
            code,
            offset,
            label: None,
            message: message.into(),
            note: None,
        }
    }

    /// An optimization remark carrying a stable code (`zag --remarks`).
    pub fn remark(code: &'static str, offset: usize, message: impl Into<String>) -> Diag {
        Diag {
            severity: Severity::Remark,
            code,
            offset,
            label: None,
            message: message.into(),
            note: None,
        }
    }

    /// A tokenizer error.
    pub fn lex(offset: usize, message: impl Into<String>) -> Diag {
        Diag::error("lex", offset, message)
    }

    /// A parser error.
    pub fn parse(offset: usize, message: impl Into<String>) -> Diag {
        Diag::error("parse", offset, message)
    }

    /// A preprocessor error.
    pub fn preprocess(offset: usize, message: impl Into<String>) -> Diag {
        Diag::error("preprocess", offset, message)
    }

    /// Attach the owning pragma's `unit:line` label.
    pub fn with_label(mut self, label: impl Into<String>) -> Diag {
        self.label = Some(label.into());
        self
    }

    /// Attach a secondary note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diag {
        self.note = Some(note.into());
        self
    }

    /// The 1-based `(line, column)` of [`Diag::offset`] against the source
    /// the diagnostic was produced for. This is the structured form of the
    /// location [`Diag::render`] prints — consumers that ship diagnostics
    /// as data (the `zagd` service returns them as JSON values) use this
    /// rather than re-deriving it from the rendered string.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let upto = &source[..self.offset.min(source.len())];
        let line = upto.matches('\n').count() + 1;
        let col = self.offset.min(source.len()) - upto.rfind('\n').map(|p| p + 1).unwrap_or(0) + 1;
        (line, col)
    }

    /// Render with line/column context against the source the diagnostic
    /// was produced for. Errors keep the historical `line:col: message`
    /// shape; warnings add their rule code and pragma label, and notes
    /// continue on an indented second line.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.line_col(source);
        let mut out = match self.severity {
            Severity::Error => format!("{}:{}: {}", line, col, self.message),
            Severity::Warning => {
                format!("{}:{}: warning[{}]: {}", line, col, self.code, self.message)
            }
            Severity::Remark => {
                format!("{}:{}: remark[{}]: {}", line, col, self.code, self.message)
            }
        };
        if let Some(label) = &self.label {
            out.push_str(&format!(" (pragma at {label})"));
        }
        if let Some(note) = &self.note {
            out.push_str(&format!("\n  note: {note}"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_render_keeps_line_col_message_shape() {
        let d = Diag::parse(10, "expected ';'");
        let src = "fn f() {\n x\n}";
        // Offset 10 is on line 2.
        assert_eq!(d.render(src), "2:2: expected ';'");
    }

    #[test]
    fn warning_render_includes_code_label_and_note() {
        let d = Diag::warning("race-shared-write", 0, "write to shared `s`")
            .with_label("demo.zag:3")
            .with_note("use reduction(+: s)");
        let r = d.render("x");
        assert!(r.contains("warning[race-shared-write]"), "{r}");
        assert!(r.contains("(pragma at demo.zag:3)"), "{r}");
        assert!(r.contains("note: use reduction(+: s)"), "{r}");
    }

    #[test]
    fn display_distinguishes_severity() {
        assert!(Diag::new(3, "boom")
            .to_string()
            .starts_with("error at byte 3"));
        assert!(Diag::warning("x", 3, "boom")
            .to_string()
            .starts_with("warning[x] at byte 3"));
    }

    #[test]
    fn offset_past_end_clamps() {
        let d = Diag::new(999, "late");
        assert_eq!(d.render("ab"), "1:3: late");
    }

    #[test]
    fn line_col_matches_render() {
        let src = "fn f() {\n x\n}";
        let d = Diag::parse(10, "expected ';'");
        assert_eq!(d.line_col(src), (2, 2));
        assert_eq!(Diag::new(0, "start").line_col(src), (1, 1));
    }
}
