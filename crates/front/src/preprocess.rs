//! The multi-pass source-to-source preprocessor (paper Listing 5).
//!
//! The paper's attempts to graft runtime calls directly into the Zig AST
//! failed (nodes are welded to source locations), so the adopted design is
//! a *preprocessor built into the compiler*: parse, find the directive
//! nodes of the current step, compute a replacement payload per node, apply
//! the replacements while **adjusting source offsets** after each splice,
//! and recurse until no pragmas remain. Replacement order matters: all
//! **parallel regions** are replaced before **worksharing loops**, then the
//! simple directives — "consequently, nested constructs do not require
//! special handling ... as long as they are of different types".
//!
//! Lowering targets are the `omp.internal.*` builtins (the paper's
//! `.omp.internal` namespace, §III-C), including its generic wrappers for
//! the `__kmpc_for_static_*` / `__kmpc_dispatch_*` families (`ws_begin` /
//! `ws_next` / `ws_fini` here).
//!
//! Variable rewriting (§III-B3) happens with **no semantic information**,
//! exactly as in the paper: two identifiers in the same scope refer to the
//! same entity as long as neither is preceded by a period, so shared
//! variables are renamed token-wise (`s` → `__shr_s.*`) across the whole
//! outlined body — including inside nested pragma lines, whose clause
//! grammar therefore accepts dereferenced places.

use crate::ast::{Ast, Clauses, Node, NodeId, RedOpCode, SchedKind, Tag as N, TokenId};
use crate::parser::parse;
use crate::token::Tag as T;
use crate::Diag;

/// Preprocess until no pragmas remain; returns the final pragma-free
/// source.
pub fn preprocess(source: &str) -> Result<String, Diag> {
    Ok(preprocess_inner(source, None)?.0)
}

/// [`preprocess`] with a compilation-unit name (normally the source file
/// path). Each lowered parallel region then carries its pragma's
/// `unit:line` as a leading string argument of `fork_call`, which the
/// runtime's observability layer uses to label the region — trace slices
/// and profile rows point back at the pragma instead of at the VM.
pub fn preprocess_named(source: &str, unit: &str) -> Result<String, Diag> {
    Ok(preprocess_inner(source, Some(unit))?.0)
}

/// Like [`preprocess`], but also returns each intermediate pass output (for
/// tests and for showing the pipeline in examples).
pub fn preprocess_trace(source: &str) -> Result<(String, Vec<String>), Diag> {
    preprocess_inner(source, None)
}

fn preprocess_inner(source: &str, unit: Option<&str>) -> Result<(String, Vec<String>), Diag> {
    let mut src = source.to_string();
    let mut trace = Vec::new();
    let mut counter = 0usize;
    // Each iteration eliminates at least one directive; bound generously.
    for _ in 0..256 {
        let ast = parse(&src)?;
        if !ast.has_pragmas() {
            return Ok((src, trace));
        }
        let step = if contains(&ast, N::OmpParallel) {
            Step::Parallel
        } else if contains(&ast, N::OmpWhile) {
            Step::While
        } else {
            Step::Simple
        };
        src = run_pass(&ast, step, &mut counter, unit)?;
        trace.push(src.clone());
    }
    Err(Diag::preprocess(0, "preprocessor did not converge"))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Parallel,
    While,
    Simple,
}

fn contains(ast: &Ast, tag: N) -> bool {
    ast.nodes.iter().any(|n| n.tag == tag)
}

/// A single replacement payload: splice `text` over `span`, optionally
/// appending `appendix` (an outlined function) at end of file.
struct Payload {
    span: (usize, usize),
    text: String,
    appendix: String,
}

fn run_pass(
    ast: &Ast,
    step: Step,
    counter: &mut usize,
    unit: Option<&str>,
) -> Result<String, Diag> {
    // Collect the directive nodes of this step, outermost-first: nodes
    // nested inside another selected node are left for a later iteration.
    let wanted: Vec<NodeId> = (0..ast.nodes.len() as u32)
        .filter(|&id| {
            let t = ast.node(id).tag;
            match step {
                Step::Parallel => t == N::OmpParallel,
                Step::While => t == N::OmpWhile,
                Step::Simple => matches!(
                    t,
                    N::OmpBarrier
                        | N::OmpCritical
                        | N::OmpMaster
                        | N::OmpSingle
                        | N::OmpAtomic
                        | N::OmpThreadprivate
                ),
            }
        })
        .collect();
    let spans: Vec<(usize, usize)> = wanted.iter().map(|&id| ast.byte_span(id)).collect();
    let outermost: Vec<NodeId> = wanted
        .iter()
        .enumerate()
        .filter(|&(i, _)| {
            !spans
                .iter()
                .enumerate()
                .any(|(j, sj)| j != i && sj.0 <= spans[i].0 && spans[i].1 <= sj.1)
        })
        .map(|(_, &id)| id)
        .collect();

    let mut payloads = Vec::new();
    for id in outermost {
        let node = *ast.node(id);
        let payload = match node.tag {
            N::OmpParallel => replace_parallel(ast, id, &node, counter, unit)?,
            N::OmpWhile => replace_while(ast, id, &node, counter, unit)?,
            _ => replace_simple(ast, id, &node)?,
        };
        payloads.push(payload);
    }

    // Apply in source order, adjusting offsets after each replacement
    // (Listing 5's «adjust source offset»).
    payloads.sort_by_key(|p| p.span.0);
    let mut out = ast.source.clone();
    let mut appendix = String::new();
    let mut offset: isize = 0;
    for p in payloads {
        let (s, e) = (
            (p.span.0 as isize + offset) as usize,
            (p.span.1 as isize + offset) as usize,
        );
        out.replace_range(s..e, &p.text);
        offset += p.text.len() as isize - (p.span.1 - p.span.0) as isize;
        appendix.push_str(&p.appendix);
    }
    out.push_str(&appendix);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// A clause list entry resolved to source text: the identifier, and whether
/// the clause spelled it as a dereferenced place (`__shr_x.*`) — which
/// happens when an enclosing parallel pass already rewrote a shared
/// variable.
#[derive(Debug, Clone)]
struct Place {
    ident: String,
    deref: bool,
}

impl Place {
    /// The access expression for this place.
    fn access(&self) -> String {
        if self.deref {
            format!("{}.*", self.ident)
        } else {
            self.ident.clone()
        }
    }
}

fn place_of(ast: &Ast, tok: TokenId) -> Place {
    let deref = ast
        .tokens
        .get(tok as usize + 1)
        .is_some_and(|t| t.tag == T::DotStar);
    Place {
        ident: ast.token_text(tok).to_string(),
        deref,
    }
}

/// Token-wise identifier rewriting over a snippet of source (§III-B3): each
/// identifier token equal to `from` and *not preceded by a period* is
/// replaced by `to`; when `strip_deref`, a directly following `.*` is
/// swallowed (used when a dereferenced shared place becomes a plain local
/// accumulator).
fn rewrite_ident(snippet: &str, from: &str, to: &str, strip_deref: bool) -> String {
    let Ok(tokens) = crate::token::tokenize(snippet) else {
        return snippet.to_string();
    };
    let mut out = String::with_capacity(snippet.len() + 16);
    let mut cursor = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.tag == T::Ident && t.text(snippet) == from {
            let preceded_by_dot = i > 0 && tokens[i - 1].tag == T::Dot;
            if !preceded_by_dot {
                out.push_str(&snippet[cursor..t.start as usize]);
                out.push_str(to);
                cursor = t.end as usize;
                if strip_deref && tokens.get(i + 1).is_some_and(|n| n.tag == T::DotStar) {
                    cursor = tokens[i + 1].end as usize;
                    i += 1;
                }
            }
        }
        i += 1;
    }
    out.push_str(&snippet[cursor..]);
    out
}

/// The inner text of a block (without its braces).
fn block_inner(ast: &Ast, block: NodeId) -> Result<&str, Diag> {
    let node = ast.node(block);
    if node.tag != N::Block {
        let (s, _) = ast.byte_span(block);
        return Err(Diag::preprocess(s, "directive body must be a block"));
    }
    let (s, e) = ast.byte_span(block);
    Ok(&ast.source[s + 1..e - 1])
}

fn red_op_code(op: RedOpCode) -> u32 {
    op as u32
}

// ---------------------------------------------------------------------------
// Pass 1: parallel regions (function outlining, §III-B1)
// ---------------------------------------------------------------------------

fn replace_parallel(
    ast: &Ast,
    id: NodeId,
    node: &Node,
    counter: &mut usize,
    unit: Option<&str>,
) -> Result<Payload, Diag> {
    let clauses = Clauses::read(&ast.extra_data, node.lhs);
    let region = *counter;
    *counter += 1;
    let fname = format!("__omp_outlined_{region}");
    // Region label for the observability layer: the pragma's `unit:line`
    // in the *current pass* source (for top-level pragmas this is the
    // original line; outlined nested regions shift with the splices).
    let label = unit.map(|u| {
        let (start, _) = ast.byte_span(id);
        let line = ast.source[..start].matches('\n').count() + 1;
        format!("\"{u}:{line}\", ")
    });

    let mut body = block_inner(ast, node.rhs)?.to_string();

    // Argument groups of the variadic fork_call: firstprivate by value,
    // shared by pointer, reduction by cell (§III-B1's three ?*anyopaque
    // groups).
    let mut params: Vec<String> = Vec::new();
    let mut args: Vec<String> = Vec::new();
    let mut prologue = String::new();
    let mut epilogue = String::new();
    let mut pre_call = String::new();
    let mut post_call = String::new();

    for &tok in &clauses.firstprivate {
        let p = place_of(ast, tok);
        let local = p.ident.clone();
        params.push(format!("{local}: any"));
        args.push(p.access());
    }
    for &tok in &clauses.shared {
        let p = place_of(ast, tok);
        let renamed = format!("__shr_{}", p.ident);
        params.push(format!("{renamed}: any"));
        args.push(format!("&{}", p.access()));
        // Every use in the body — including in nested pragma clause
        // lists — becomes a pointer access.
        body = rewrite_ident(&body, &p.ident, &format!("{renamed}.*"), false);
    }
    for &(op, tok) in &clauses.reduction {
        let p = place_of(ast, tok);
        let cell = format!("__red_{}_{region}", p.ident);
        pre_call.push_str(&format!(
            "const {cell} = omp.internal.red_cell({}, {});\n",
            red_op_code(op),
            p.access()
        ));
        params.push(format!("{cell}: any"));
        args.push(cell.clone());
        prologue.push_str(&format!(
            "var {} : any = omp.internal.red_identity({cell});\n",
            p.ident
        ));
        epilogue.push_str(&format!("omp.internal.red_combine({cell}, {});\n", p.ident));
        post_call.push_str(&format!("{} = omp.internal.red_get({cell});\n", p.access()));
    }
    for &tok in &clauses.private {
        let p = place_of(ast, tok);
        prologue.push_str(&format!("var {} : any = undefined;\n", p.ident));
    }

    // num_threads / if clauses decide the requested team size.
    let nt = match (clauses.num_threads, clauses.if_expr) {
        (Some(e), None) => ast.node_text(e).to_string(),
        (None, None) => "0".to_string(),
        (nt, Some(cond)) => {
            let nt_text = nt
                .map(|e| ast.node_text(e).to_string())
                .unwrap_or("0".into());
            format!(
                "omp.internal.if_threads({}, {nt_text})",
                ast.node_text(cond)
            )
        }
    };

    let call = format!(
        "{{\n{pre_call}omp.internal.fork_call({}{nt}, {fname}{}{});\n{post_call}}}",
        label.as_deref().unwrap_or(""),
        if args.is_empty() { "" } else { ", " },
        args.join(", ")
    );
    let fn_text = format!(
        "\nfn {fname}({}) void {{\n{prologue}{body}\n{epilogue}}}\n",
        params.join(", ")
    );

    Ok(Payload {
        span: ast.byte_span(id),
        text: call,
        appendix: fn_text,
    })
}

// ---------------------------------------------------------------------------
// Pass 2: worksharing loops (§III-B2)
// ---------------------------------------------------------------------------

/// Extract (loop var, cmp code, ub text, incr text, cont text) from the
/// attached while loop, the way §III-B2 describes: comparison operator from
/// the condition, upper bound from its right-hand side, increment from the
/// continuation expression.
pub(crate) struct LoopShape {
    pub(crate) var: String,
    pub(crate) cmp_code: u32,
    pub(crate) ub_text: String,
    pub(crate) incr_text: String,
    pub(crate) cont_text: String,
    pub(crate) body: NodeId,
}

pub(crate) fn loop_shape(ast: &Ast, while_id: NodeId) -> Result<LoopShape, Diag> {
    loop_shape_inner(ast, while_id)
}

fn loop_shape_inner(ast: &Ast, while_id: NodeId) -> Result<LoopShape, Diag> {
    let w = ast.node(while_id);
    let (wstart, _) = ast.byte_span(while_id);
    let cond = ast.node(w.lhs);
    if cond.tag != N::BinOp {
        return Err(Diag::preprocess(
            wstart,
            "worksharing loop condition must be `var <cmp> bound`",
        ));
    }
    let cmp_tok = ast.tokens[cond.main_token as usize].tag;
    let cmp_code = match cmp_tok {
        T::Lt => 0,
        T::LtEq => 1,
        T::Gt => 2,
        T::GtEq => 3,
        _ => {
            return Err(Diag::preprocess(
                wstart,
                "worksharing loop comparison must be one of < <= > >=",
            ))
        }
    };
    let var_node = ast.node(cond.lhs);
    if var_node.tag != N::Ident {
        return Err(Diag::preprocess(
            wstart,
            "worksharing loop condition must compare the loop variable",
        ));
    }
    let var = ast.token_text(var_node.main_token).to_string();
    let ub_text = ast.node_text(cond.rhs).to_string();

    let body = ast.extra_data[w.rhs as usize];
    let cont = ast.extra_data[w.rhs as usize + 1];
    if cont == 0 {
        return Err(Diag::preprocess(
            wstart,
            "worksharing loops need a `: (i += step)` continuation",
        ));
    }
    let cont_id = cont - 1;
    let cont_node = ast.node(cont_id);
    if cont_node.tag != N::CompoundAssign {
        return Err(Diag::preprocess(
            wstart,
            "worksharing loop continuation must be `i += step` or `i -= step`",
        ));
    }
    let lhs = ast.node(cont_node.lhs);
    if lhs.tag != N::Ident || ast.token_text(lhs.main_token) != var {
        return Err(Diag::preprocess(
            wstart,
            "loop continuation must update the loop variable",
        ));
    }
    let step_text = ast.node_text(cont_node.rhs).to_string();
    let incr_text = match ast.tokens[cont_node.main_token as usize].tag {
        T::PlusEq => step_text,
        T::MinusEq => format!("-({step_text})"),
        _ => {
            return Err(Diag::preprocess(
                wstart,
                "loop continuation must use += or -=",
            ))
        }
    };
    let cont_text = ast.node_text(cont_id).to_string();
    Ok(LoopShape {
        var,
        cmp_code,
        ub_text,
        incr_text,
        cont_text,
        body,
    })
}

fn replace_while(
    ast: &Ast,
    id: NodeId,
    node: &Node,
    counter: &mut usize,
    unit: Option<&str>,
) -> Result<Payload, Diag> {
    let clauses = Clauses::read(&ast.extra_data, node.lhs);
    let k = *counter;
    *counter += 1;
    // Loop label for the observability layer, like `replace_parallel`'s
    // region label: the pragma's `unit:line` in the current pass source
    // (loops inside outlined regions shift with the splices). Rides as a
    // leading string argument of `ws_begin`.
    let ws_label = ws_label_arg(ast, id, unit);

    if clauses.flags.collapse > 2 {
        let (s, _) = ast.byte_span(id);
        return Err(Diag::preprocess(
            s,
            "collapse depths greater than 2 are parsed and stored but not lowered",
        ));
    }
    if clauses.flags.collapse == 2 {
        return replace_while_collapse2(ast, id, node, &clauses, k, unit);
    }

    let shape = loop_shape(ast, node.rhs)?;
    let mut body = block_inner(ast, shape.body)?.to_string();

    // Schedule kind codes for ws_begin: 0 static, 1 dynamic, 2 guided,
    // 3 runtime (auto maps to static).
    let (kind_code, chunk) = match clauses.schedule {
        None => (0u32, 0u32),
        Some(s) => {
            let code = match s.kind {
                SchedKind::Dynamic => 1,
                SchedKind::Guided => 2,
                SchedKind::Runtime => 3,
                _ => 0,
            };
            (code, s.chunk.unwrap_or(0))
        }
    };

    let mut pre = String::new();
    let mut post = String::new();

    // Loop privates: fresh names to honour Zig's no-shadowing rule.
    for &tok in &clauses.private {
        let p = place_of(ast, tok);
        let fresh = format!("__prv_{}_{k}", p.ident);
        pre.push_str(&format!("var {fresh}: any = undefined;\n"));
        body = rewrite_ident(&body, &p.ident, &fresh, false);
    }
    for &tok in &clauses.firstprivate {
        let p = place_of(ast, tok);
        let fresh = format!("__prv_{}_{k}", p.ident);
        pre.push_str(&format!("var {fresh}: any = {};\n", p.access()));
        body = rewrite_ident(&body, &p.ident, &fresh, false);
    }

    // Loop reductions: a team-shared cell per variable, a private
    // accumulator, and a write-back after the combine (the "reduction
    // temporaries which may not share their names with the shared variable"
    // of §III-B3).
    let mut has_reduction = false;
    for &(op, tok) in &clauses.reduction {
        has_reduction = true;
        let p = place_of(ast, tok);
        let cell = format!("__rc_{}_{k}", sanitize(&p.ident));
        let acc = format!("__acc_{}_{k}", sanitize(&p.ident));
        pre.push_str(&format!(
            "const {cell} = omp.internal.red_loop_begin({}, {});\n",
            red_op_code(op),
            p.access()
        ));
        pre.push_str(&format!(
            "var {acc}: any = omp.internal.red_identity({cell});\n"
        ));
        body = rewrite_ident(&body, &p.ident, &acc, p.deref);
        post.push_str(&format!(
            "{} = omp.internal.red_loop_end({cell}, {acc});\n",
            p.access()
        ));
    }

    // The loop itself: the generic wrapper over __kmpc_for_static_* /
    // __kmpc_dispatch_* (§III-C). Bounds are evaluated once at entry.
    let ws = format!("__ws_{k}");
    let ub = format!("__ub_{k}");
    let var = &shape.var;
    let inner_cmp = match shape.cmp_code {
        2 | 3 => format!("{var} > {ub}"),
        _ => format!("{var} < {ub}"),
    };
    // With a reduction the combined value is only safe to read after a
    // barrier, so the barrier stays even under nowait (what Clang does).
    let nowait_flag = if clauses.flags.nowait && !has_reduction {
        1
    } else {
        0
    };
    let text =
        format!(
        "{{\n{pre}const {ws} = omp.internal.ws_begin({ws_label}{kind_code}, {chunk}, {var}, {}, {}, {});\n\
         while (omp.internal.ws_next({ws})) {{\n\
         {var} = omp.internal.ws_lb({ws});\n\
         const {ub} = omp.internal.ws_ub({ws});\n\
         while ({inner_cmp}) : ({cont}) {{\n{body}\n}}\n\
         }}\n\
         omp.internal.ws_fini({ws}, {nowait_flag});\n{post}}}",
        shape.ub_text, shape.incr_text, shape.cmp_code,
        cont = shape.cont_text,
    );

    Ok(Payload {
        span: ast.byte_span(id),
        text,
        appendix: String::new(),
    })
}

/// `collapse(2)`: fuse two perfectly nested loops into one logical
/// iteration space of `tripA * tripB` and workshare over it. The canonical
/// shape is required — the outer body must be exactly an inner-counter
/// declaration followed by the inner while loop:
///
/// ```text
/// //$omp while collapse(2)
/// while (i < n) : (i += 1) {
///     var j: i64 = 0;
///     while (j < m) : (j += 1) { <body> }
/// }
/// ```
///
/// Both loops' bounds must be invariant across the collapsed space (the
/// OpenMP requirement for rectangular collapse).
fn replace_while_collapse2(
    ast: &Ast,
    id: NodeId,
    node: &Node,
    clauses: &Clauses,
    k: usize,
    unit: Option<&str>,
) -> Result<Payload, Diag> {
    let (start, _) = ast.byte_span(id);
    let ws_label = ws_label_arg(ast, id, unit);
    let outer = loop_shape(ast, node.rhs)?;

    // The outer body: [VarDecl inner-counter, While inner].
    let body_node = ast.node(outer.body);
    if body_node.tag != N::Block {
        return Err(Diag::preprocess(start, "collapse(2) needs a block body"));
    }
    let stmts = ast.range(body_node).to_vec();
    if stmts.len() != 2
        || ast.node(stmts[0]).tag != N::VarDecl
        || ast.node(stmts[1]).tag != N::While
    {
        return Err(Diag::preprocess(
            start,
            "collapse(2) requires the outer body to be exactly `var j = ...; while (...) : (...) { }`",
        ));
    }
    let decl = ast.node(stmts[0]);
    let inner_var = ast.token_text(decl.main_token).to_string();
    if decl.rhs == 0 {
        return Err(Diag::preprocess(
            start,
            "inner counter needs an initializer",
        ));
    }
    let inner_lb_text = ast.node_text(decl.rhs - 1).to_string();
    let inner = loop_shape_of_while(ast, stmts[1])?;
    if inner.var != inner_var {
        return Err(Diag::preprocess(
            start,
            "the declared counter must drive the inner loop",
        ));
    }
    let mut body = block_inner(ast, inner.body)?.to_string();

    let (kind_code, chunk) = match clauses.schedule {
        None => (0u32, 0u32),
        Some(s) => {
            let code = match s.kind {
                SchedKind::Dynamic => 1,
                SchedKind::Guided => 2,
                SchedKind::Runtime => 3,
                _ => 0,
            };
            (code, s.chunk.unwrap_or(0))
        }
    };

    let mut pre = String::new();
    let mut post = String::new();
    for &tok in &clauses.private {
        let p = place_of(ast, tok);
        let fresh = format!("__prv_{}_{k}", p.ident);
        pre.push_str(&format!("var {fresh}: any = undefined;\n"));
        body = rewrite_ident(&body, &p.ident, &fresh, false);
    }
    for &tok in &clauses.firstprivate {
        let p = place_of(ast, tok);
        let fresh = format!("__prv_{}_{k}", p.ident);
        pre.push_str(&format!("var {fresh}: any = {};\n", p.access()));
        body = rewrite_ident(&body, &p.ident, &fresh, false);
    }
    let mut has_reduction = false;
    for &(op, tok) in &clauses.reduction {
        has_reduction = true;
        let p = place_of(ast, tok);
        let cell = format!("__rc_{}_{k}", sanitize(&p.ident));
        let acc = format!("__acc_{}_{k}", sanitize(&p.ident));
        pre.push_str(&format!(
            "const {cell} = omp.internal.red_loop_begin({}, {});\n",
            red_op_code(op),
            p.access()
        ));
        pre.push_str(&format!(
            "var {acc}: any = omp.internal.red_identity({cell});\n"
        ));
        body = rewrite_ident(&body, &p.ident, &acc, p.deref);
        post.push_str(&format!(
            "{} = omp.internal.red_loop_end({cell}, {acc});\n",
            p.access()
        ));
    }

    let ws = format!("__ws_{k}");
    let (ta, tb) = (format!("__tripa_{k}"), format!("__tripb_{k}"));
    let (lba, lbb) = (format!("__lba_{k}"), format!("__lbb_{k}"));
    let idx = format!("__idx_{k}");
    let idxub = format!("__idxub_{k}");
    let ovar = &outer.var;
    let nowait_flag = if clauses.flags.nowait && !has_reduction {
        1
    } else {
        0
    };

    let text = format!(
        "{{\n{pre}         const {lba} = {ovar};\n         const {lbb} = {inner_lb};\n         const {ta} = omp.internal.trip_count({lba}, {uba}, {inca}, {cmpa});\n         const {tb} = omp.internal.trip_count({lbb}, {ubb}, {incb}, {cmpb});\n         const {ws} = omp.internal.ws_begin({ws_label}{kind_code}, {chunk}, 0, {ta} * {tb}, 1, 0);\n         while (omp.internal.ws_next({ws})) {{\n         var {idx}: i64 = omp.internal.ws_lb({ws});\n         const {idxub} = omp.internal.ws_ub({ws});\n         while ({idx} < {idxub}) : ({idx} += 1) {{\n         {ovar} = {lba} + ({idx} / {tb}) * ({inca});\n         var {ivar}: any = {lbb} + ({idx} % {tb}) * ({incb});\n         {body}\n         _ = {ivar};\n         }}\n         }}\n         omp.internal.ws_fini({ws}, {nowait_flag});\n{post}}}",
        inner_lb = inner_lb_text,
        uba = outer.ub_text,
        inca = outer.incr_text,
        cmpa = outer.cmp_code,
        ubb = inner.ub_text,
        incb = inner.incr_text,
        cmpb = inner.cmp_code,
        ivar = inner_var,
    );

    Ok(Payload {
        span: ast.byte_span(id),
        text,
        appendix: String::new(),
    })
}

/// The `"unit:line", ` leading-argument text for `ws_begin` when the
/// translation unit is named, `""` otherwise — the worksharing twin of
/// `replace_parallel`'s region label.
fn ws_label_arg(ast: &Ast, id: NodeId, unit: Option<&str>) -> String {
    unit.map(|u| {
        let (start, _) = ast.byte_span(id);
        let line = ast.source[..start].matches('\n').count() + 1;
        format!("\"{u}:{line}\", ")
    })
    .unwrap_or_default()
}

/// [`loop_shape`] for a bare `While` node (not a directive's rhs).
fn loop_shape_of_while(ast: &Ast, while_id: NodeId) -> Result<LoopShape, Diag> {
    loop_shape_inner(ast, while_id)
}

fn sanitize(ident: &str) -> String {
    ident.replace(|c: char| !c.is_ascii_alphanumeric(), "_")
}

// ---------------------------------------------------------------------------
// Pass 3: simple directives
// ---------------------------------------------------------------------------

fn replace_simple(ast: &Ast, id: NodeId, node: &Node) -> Result<Payload, Diag> {
    let span = ast.byte_span(id);
    let text = match node.tag {
        N::OmpBarrier => "omp.internal.barrier();".to_string(),
        N::OmpMaster => {
            let body = block_inner(ast, node.rhs)?;
            format!("if (omp.internal.is_master()) {{\n{body}\n}}")
        }
        N::OmpSingle => {
            let clauses = Clauses::read(&ast.extra_data, node.lhs);
            let body = block_inner(ast, node.rhs)?;
            format!(
                "if (omp.internal.single_begin()) {{\n{body}\n}}\nomp.internal.single_end({});",
                clauses.flags.nowait as u32
            )
        }
        N::OmpCritical => {
            let name = if ast.tokens[node.main_token as usize].tag == T::Ident {
                ast.token_text(node.main_token)
            } else {
                "" // the unnamed critical
            };
            let body = block_inner(ast, node.rhs)?;
            format!(
                "omp.internal.critical_enter(\"{name}\");\n{{\n{body}\n}}\nomp.internal.critical_exit(\"{name}\");"
            )
        }
        N::OmpAtomic => {
            let stmt = ast.node(node.rhs);
            debug_assert_eq!(stmt.tag, N::CompoundAssign);
            let lhs_text = ast.node_text(stmt.lhs);
            let rhs_text = ast.node_text(stmt.rhs);
            let op = match ast.tokens[stmt.main_token as usize].tag {
                T::PlusEq => 0,
                T::MinusEq => 9, // sub: distinct from Add for the VM RMW
                T::StarEq => 1,
                T::SlashEq => 10,
                _ => unreachable!("parser enforces compound assignment"),
            };
            format!("omp.internal.atomic_rmw(&({lhs_text}), {op}, {rhs_text});")
        }
        N::OmpThreadprivate => {
            return Err(Diag::preprocess(
                span.0,
                "threadprivate requires global variables, which Zag does not have; \
                 use the zomp runtime's ThreadPrivate<T> from Rust instead",
            ))
        }
        _ => unreachable!("replace_simple called on non-simple directive"),
    };
    Ok(Payload {
        span,
        text,
        appendix: String::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(src: &str) -> String {
        preprocess(src)
            .map_err(|e| panic!("{}", e.render(src)))
            .unwrap()
    }

    #[test]
    fn pragma_free_source_is_unchanged() {
        let src = "fn main() void { var x: i64 = 1; x = x + 1; }";
        assert_eq!(pp(src), src);
    }

    #[test]
    fn parallel_region_is_outlined() {
        let src = "fn main() void {\n\
                   var s: i64 = 0;\n\
                   //$omp parallel shared(s) num_threads(4)\n\
                   {\n s = 1;\n }\n\
                   }";
        let out = pp(src);
        assert!(out.contains("fn __omp_outlined_0"), "{out}");
        assert!(
            out.contains("omp.internal.fork_call(4, __omp_outlined_0, &s)"),
            "{out}"
        );
        // Shared access rewritten to a pointer access inside the outline.
        assert!(out.contains("__shr_s.* = 1;"), "{out}");
        // Result parses cleanly with no pragmas left.
        let ast = parse(&out).unwrap();
        assert!(!ast.has_pragmas());
    }

    #[test]
    fn named_units_label_fork_call_with_pragma_line() {
        let src = "fn main() void {\n\
                   var s: i64 = 0;\n\
                   //$omp parallel shared(s) num_threads(4)\n\
                   {\n s = 1;\n }\n\
                   }";
        let out = preprocess_named(src, "demo.zag").unwrap();
        // The pragma sits on line 3; the label rides as the first argument.
        assert!(
            out.contains("omp.internal.fork_call(\"demo.zag:3\", 4, __omp_outlined_0, &s)"),
            "{out}"
        );
        parse(&out).unwrap();
        // The unnamed path stays byte-identical (no label argument).
        assert!(!pp(src).contains("demo.zag"), "unnamed must not label");
    }

    #[test]
    fn named_units_label_ws_begin_with_pragma_line() {
        let src = "fn main() void {\n\
                   var i: i64 = 0;\n\
                   //$omp while schedule(dynamic, 8)\n\
                   while (i < 100) : (i += 1) {\n\
                   }\n\
                   }";
        let out = preprocess_named(src, "demo.zag").unwrap();
        // The worksharing pragma sits on line 3; the label rides as the
        // leading `ws_begin` argument (the loop twin of the fork label).
        assert!(
            out.contains("omp.internal.ws_begin(\"demo.zag:3\", 1, 8, i, 100, 1, 0)"),
            "{out}"
        );
        parse(&out).unwrap();
        // The unnamed path keeps the historical six-argument form.
        assert!(
            pp(src).contains("omp.internal.ws_begin(1, 8, i, 100, 1, 0)"),
            "unnamed must not label"
        );
    }

    #[test]
    fn firstprivate_passed_by_value_private_declared() {
        let src = "fn main() void {\n\
                   var a: i64 = 7;\n\
                   //$omp parallel firstprivate(a) private(t)\n\
                   {\n t = a;\n _ = t;\n }\n\
                   }";
        let out = pp(src);
        assert!(out.contains("fork_call(0, __omp_outlined_0, a)"), "{out}");
        assert!(out.contains("var t : any = undefined;"), "{out}");
        parse(&out).unwrap();
    }

    #[test]
    fn region_reduction_uses_cell_protocol() {
        let src = "fn main() void {\n\
                   var r: f64 = 0.0;\n\
                   //$omp parallel reduction(+: r)\n\
                   {\n r = r + 1.0;\n }\n\
                   _ = r;\n\
                   }";
        let out = pp(src);
        assert!(out.contains("omp.internal.red_cell(0, r)"), "{out}");
        assert!(out.contains("omp.internal.red_identity"), "{out}");
        assert!(out.contains("omp.internal.red_combine"), "{out}");
        assert!(out.contains("r = omp.internal.red_get"), "{out}");
        parse(&out).unwrap();
    }

    #[test]
    fn worksharing_loop_becomes_ws_driver() {
        let src = "fn f() void {\n\
                   var i: i64 = 0;\n\
                   //$omp while schedule(dynamic, 8) nowait\n\
                   while (i < 100) : (i += 1) {\n _ = i;\n }\n\
                   }";
        let out = pp(src);
        assert!(
            out.contains("omp.internal.ws_begin(1, 8, i, 100, 1, 0)"),
            "{out}"
        );
        assert!(out.contains("omp.internal.ws_next"), "{out}");
        assert!(out.contains("omp.internal.ws_fini(__ws_0, 1)"), "{out}");
        parse(&out).unwrap();
    }

    #[test]
    fn loop_reduction_renames_accumulator() {
        // The §III-B3 case: the loop reduction temporary must not share its
        // name with the variable being reduced into.
        let src = "fn f() void {\n\
                   var sum: f64 = 0.0;\n\
                   var i: i64 = 0;\n\
                   //$omp while reduction(+: sum)\n\
                   while (i < 10) : (i += 1) {\n sum = sum + 1.0;\n }\n\
                   _ = sum;\n\
                   }";
        let out = pp(src);
        assert!(out.contains("red_loop_begin(0, sum)"), "{out}");
        assert!(out.contains("__acc_sum_0 = __acc_sum_0 + 1.0;"), "{out}");
        assert!(out.contains("sum = omp.internal.red_loop_end"), "{out}");
        // Reduction forces the barrier: nowait flag 0.
        assert!(out.contains("ws_fini(__ws_0, 0)"), "{out}");
        parse(&out).unwrap();
    }

    #[test]
    fn parallel_then_inner_loop_lowered_over_two_passes() {
        // The canonical CG shape: a parallel region containing a
        // worksharing reduction loop over a shared variable. The parallel
        // pass rewrites `rho` into `__shr_rho.*` everywhere — including in
        // the inner pragma's clause list — and the while pass then reduces
        // into the dereferenced place.
        let src = "fn main() void {\n\
                   var rho: f64 = 0.0;\n\
                   var n: i64 = 64;\n\
                   //$omp parallel shared(rho) firstprivate(n)\n\
                   {\n\
                   var j: i64 = 0;\n\
                   //$omp while reduction(+: rho)\n\
                   while (j < n) : (j += 1) {\n rho = rho + 1.0;\n }\n\
                   }\n\
                   _ = rho;\n\
                   }";
        let (out, trace) = preprocess_trace(src).unwrap();
        assert!(trace.len() >= 2, "two passes minimum");
        // After pass 1 the inner pragma mentions the rewritten place.
        assert!(
            trace[0].contains("reduction(+: __shr_rho.*)"),
            "{}",
            trace[0]
        );
        // Final output reduces into the pointer access.
        assert!(out.contains("red_loop_begin(0, __shr_rho.*)"), "{out}");
        assert!(
            out.contains("__shr_rho.* = omp.internal.red_loop_end"),
            "{out}"
        );
        let ast = parse(&out).unwrap();
        assert!(!ast.has_pragmas());
    }

    #[test]
    fn simple_directives_lower() {
        let src = "fn f() void {\n\
                   var x: i64 = 0;\n\
                   //$omp barrier\n\
                   //$omp master\n{ x = 1; }\n\
                   //$omp single nowait\n{ x = 2; }\n\
                   //$omp critical (lock1)\n{ x = 3; }\n\
                   //$omp atomic\nx += 5;\n\
                   }";
        let out = pp(src);
        assert!(out.contains("omp.internal.barrier();"), "{out}");
        assert!(out.contains("if (omp.internal.is_master())"), "{out}");
        assert!(out.contains("omp.internal.single_begin()"), "{out}");
        assert!(out.contains("omp.internal.single_end(1);"), "{out}");
        assert!(out.contains("critical_enter(\"lock1\")"), "{out}");
        assert!(out.contains("atomic_rmw(&(x), 0, 5)"), "{out}");
        parse(&out).unwrap();
    }

    #[test]
    fn variable_rewrite_respects_member_access() {
        // `foo.s` must not be rewritten when `s` is shared — "two
        // identifiers refer to the same entity as long as neither is
        // preceded by a period".
        let r = rewrite_ident("s = foo.s + s;", "s", "__shr_s.*", false);
        assert_eq!(r, "__shr_s.* = foo.s + __shr_s.*;");
    }

    #[test]
    fn rewrite_strips_deref_for_accumulators() {
        let r = rewrite_ident("x.* = x.* + a[x.*];", "x", "acc", true);
        assert_eq!(r, "acc = acc + a[acc];");
    }

    #[test]
    fn offsets_adjust_across_multiple_replacements() {
        let src = "fn f() void {\n\
                   //$omp barrier\n\
                   var x: i64 = 0;\n\
                   //$omp barrier\n\
                   _ = x;\n\
                   //$omp barrier\n\
                   }";
        let out = pp(src);
        assert_eq!(out.matches("omp.internal.barrier();").count(), 3, "{out}");
        parse(&out).unwrap();
    }

    #[test]
    fn threadprivate_reports_clear_error() {
        let src = "//$omp threadprivate(g)\nfn f() void { }";
        let err = preprocess(src).unwrap_err();
        assert!(err.message.contains("threadprivate"));
    }

    #[test]
    fn downward_loop_shape() {
        let src = "fn f() void {\n\
                   var i: i64 = 10;\n\
                   //$omp while\n\
                   while (i > 0) : (i -= 1) {\n _ = i;\n }\n\
                   }";
        let out = pp(src);
        assert!(out.contains("ws_begin(0, 0, i, 0, -(1), 2)"), "{out}");
        assert!(out.contains("while (i > __ub_0)"), "{out}");
        parse(&out).unwrap();
    }
}
