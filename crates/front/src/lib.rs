//! # zomp-front — the Zag mini-language front-end with OpenMP pragmas
//!
//! The paper modifies the Zig compiler; since the Zig compiler cannot be
//! reproduced in Rust, this crate implements the same pipeline for **Zag**,
//! a Zig-like mini-language rich enough for the paper's OpenMP surface.
//! Every mechanism of §III exists here, structured as the paper describes:
//!
//! * [`token`] — the tokenizer. Pragmas are sentinel comments (`//$omp`);
//!   the sentinel is one token and the rest of the pragma is tokenised as
//!   ordinary code (option "B" of Fig. 1).
//! * [`omp_kw`] — OpenMP keywords **cannot** be language keywords (they
//!   would break existing identifiers), so they are ordinary identifiers
//!   disambiguated at parse time through a string → keyword-tag hash map.
//! * [`ast`] — the flat AST with its `extra_data: Vec<u32>` side array.
//!   Clause data is bit-packed exactly as §III-A2 describes
//!   ([`ast::PackedSchedule`], [`ast::PackedFlags`]) and list clauses are
//!   stored as contiguous `extra_data` slices (Fig. 2).
//! * [`parser`] — recursive descent around an `eat_token` that also accepts
//!   OpenMP keyword tags.
//! * [`preprocess`] — the multi-pass source-to-source preprocessor of
//!   Listing 5: parallel regions are outlined first, then worksharing
//!   loops are rewritten into `omp.internal.*` runtime-call driver loops,
//!   then the simple directives; source offsets are adjusted after each
//!   replacement, and shared scalars are rewritten to pointer accesses
//!   (§III-B3) using only the AST.
//! * [`analyze`] — the post-parse data-sharing lint: classifies every
//!   variable of each `parallel`/worksharing region into its sharing class
//!   and reports probable races and clause misuse as structured [`Diag`]
//!   warnings (`zag --check`).
//! * [`diag`] — the one diagnostics type every stage above emits.
//!
//! The output of preprocessing is pragma-free Zag source whose
//! `omp.internal.*` calls the `zomp-vm` crate binds to the real `zomp`
//! runtime — pragmas in, threads out.

pub mod analyze;
pub mod ast;
pub mod diag;
pub mod dump;
pub mod fmt;
pub mod omp_kw;
pub mod parser;
pub mod preprocess;
pub mod token;

pub use analyze::analyze;
pub use ast::Ast;
pub use diag::{Diag, Severity};
pub use parser::parse;
pub use preprocess::preprocess;
