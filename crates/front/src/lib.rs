//! # zomp-front — the Zag mini-language front-end with OpenMP pragmas
//!
//! The paper modifies the Zig compiler; since the Zig compiler cannot be
//! reproduced in Rust, this crate implements the same pipeline for **Zag**,
//! a Zig-like mini-language rich enough for the paper's OpenMP surface.
//! Every mechanism of §III exists here, structured as the paper describes:
//!
//! * [`token`] — the tokenizer. Pragmas are sentinel comments (`//$omp`);
//!   the sentinel is one token and the rest of the pragma is tokenised as
//!   ordinary code (option "B" of Fig. 1).
//! * [`omp_kw`] — OpenMP keywords **cannot** be language keywords (they
//!   would break existing identifiers), so they are ordinary identifiers
//!   disambiguated at parse time through a string → keyword-tag hash map.
//! * [`ast`] — the flat AST with its `extra_data: Vec<u32>` side array.
//!   Clause data is bit-packed exactly as §III-A2 describes
//!   ([`ast::PackedSchedule`], [`ast::PackedFlags`]) and list clauses are
//!   stored as contiguous `extra_data` slices (Fig. 2).
//! * [`parser`] — recursive descent around an `eat_token` that also accepts
//!   OpenMP keyword tags.
//! * [`preprocess`] — the multi-pass source-to-source preprocessor of
//!   Listing 5: parallel regions are outlined first, then worksharing
//!   loops are rewritten into `omp.internal.*` runtime-call driver loops,
//!   then the simple directives; source offsets are adjusted after each
//!   replacement, and shared scalars are rewritten to pointer accesses
//!   (§III-B3) using only the AST.
//!
//! The output of preprocessing is pragma-free Zag source whose
//! `omp.internal.*` calls the `zomp-vm` crate binds to the real `zomp`
//! runtime — pragmas in, threads out.

pub mod ast;
pub mod dump;
pub mod fmt;
pub mod omp_kw;
pub mod parser;
pub mod preprocess;
pub mod token;

pub use ast::Ast;
pub use parser::parse;
pub use preprocess::preprocess;

/// A front-end error with a byte offset into the offending source.
#[derive(Debug, Clone)]
pub struct FrontError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for FrontError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for FrontError {}

impl FrontError {
    pub fn new(offset: usize, message: impl Into<String>) -> Self {
        FrontError {
            offset,
            message: message.into(),
        }
    }

    /// Render with line/column context against the source.
    pub fn render(&self, source: &str) -> String {
        let upto = &source[..self.offset.min(source.len())];
        let line = upto.matches('\n').count() + 1;
        let col = self.offset - upto.rfind('\n').map(|p| p + 1).unwrap_or(0) + 1;
        format!("{}:{}: {}", line, col, self.message)
    }
}
