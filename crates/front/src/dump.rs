//! Human-readable dumps of the AST and its `extra_data` clause encoding —
//! the tooling view of Fig. 2: a directive node pointing into the side
//! array, packed words decoded bit by bit, list-clause slices printed with
//! their begin/end indices.

use crate::ast::{Ast, Clauses, NodeId, PackedFlags, PackedSchedule, Tag, CLAUSE_HEADER_LEN};

/// Render the node tree, indented, one node per line.
pub fn dump_tree(ast: &Ast) -> String {
    let mut out = String::new();
    dump_node(ast, ast.root, 0, &mut out);
    out
}

fn label(ast: &Ast, id: NodeId) -> String {
    let node = ast.node(id);
    let tok = ast.token_text(node.main_token);
    match node.tag {
        Tag::Ident | Tag::IntLit | Tag::FloatLit | Tag::BoolLit | Tag::StrLit => {
            format!("{:?} `{tok}`", node.tag)
        }
        Tag::FnDecl | Tag::VarDecl | Tag::ConstDecl | Tag::Param | Tag::Member => {
            format!("{:?} `{tok}`", node.tag)
        }
        Tag::BinOp | Tag::UnOp | Tag::CompoundAssign => format!("{:?} `{tok}`", node.tag),
        _ => format!("{:?}", node.tag),
    }
}

fn dump_node(ast: &Ast, id: NodeId, depth: usize, out: &mut String) {
    let node = *ast.node(id);
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!("[{id}] {}\n", label(ast, id)));
    let children = children_of(ast, id);
    // Directive nodes additionally dump their clause block.
    if matches!(
        node.tag,
        Tag::OmpParallel
            | Tag::OmpWhile
            | Tag::OmpBarrier
            | Tag::OmpCritical
            | Tag::OmpMaster
            | Tag::OmpSingle
            | Tag::OmpAtomic
            | Tag::OmpThreadprivate
    ) {
        for line in dump_clauses(ast, node.lhs).lines() {
            out.push_str(&"  ".repeat(depth + 1));
            out.push_str(line);
            out.push('\n');
        }
    }
    for c in children {
        dump_node(ast, c, depth + 1, out);
    }
}

/// Children of a node, following every tag's encoding.
pub fn children_of(ast: &Ast, id: NodeId) -> Vec<NodeId> {
    let node = *ast.node(id);
    match node.tag {
        Tag::Root | Tag::Block => ast.range(&node).to_vec(),
        Tag::FnDecl => {
            let n = node.rhs as usize;
            ast.extra(node.lhs, node.lhs + n as u32 + 1).to_vec()
        }
        Tag::VarDecl | Tag::ConstDecl => {
            if node.rhs > 0 {
                vec![node.rhs - 1]
            } else {
                vec![]
            }
        }
        Tag::Assign | Tag::CompoundAssign | Tag::BinOp | Tag::Index => {
            vec![node.lhs, node.rhs]
        }
        Tag::While | Tag::If => {
            let mut v = vec![node.lhs];
            let a = ast.extra_data[node.rhs as usize];
            let b = ast.extra_data[node.rhs as usize + 1];
            v.push(a);
            if b > 0 {
                v.push(b - 1);
            }
            v
        }
        Tag::Return => {
            if node.lhs > 0 {
                vec![node.lhs - 1]
            } else {
                vec![]
            }
        }
        Tag::Discard | Tag::ExprStmt | Tag::UnOp | Tag::Member | Tag::Deref => vec![node.lhs],
        Tag::Call => {
            let mut v = vec![node.lhs];
            v.extend_from_slice(ast.call_args(&node));
            v
        }
        Tag::BuiltinCall => ast.extra(node.lhs, node.rhs).to_vec(),
        Tag::OmpParallel
        | Tag::OmpWhile
        | Tag::OmpCritical
        | Tag::OmpMaster
        | Tag::OmpSingle
        | Tag::OmpAtomic => {
            let mut v = Vec::new();
            let c = Clauses::read(&ast.extra_data, node.lhs);
            if let Some(e) = c.num_threads {
                v.push(e);
            }
            if let Some(e) = c.if_expr {
                v.push(e);
            }
            if node.rhs > 0 {
                v.push(node.rhs);
            }
            v
        }
        _ => vec![],
    }
}

/// Decode and render one clause block at `base` — the Fig. 2 picture in
/// text: raw words, packed bit fields, and list slices.
pub fn dump_clauses(ast: &Ast, base: u32) -> String {
    let extra = &ast.extra_data;
    let b = base as usize;
    let mut out = String::new();
    out.push_str(&format!(
        "clauses @ extra_data[{b}..{}]\n",
        b + CLAUSE_HEADER_LEN
    ));
    let sched = PackedSchedule::decode(extra[b]);
    out.push_str(&format!(
        "  [+0] 0x{:08x} schedule: kind={:?} chunk={:?} (3-bit kind | 29-bit chunk)\n",
        extra[b], sched.kind, sched.chunk
    ));
    let flags = PackedFlags::decode(extra[b + 1]);
    out.push_str(&format!(
        "  [+1] 0x{:08x} flags: default={:?} nowait={} collapse={} has_num_threads={}\n",
        extra[b + 1],
        flags.default,
        flags.nowait,
        flags.collapse,
        flags.has_num_threads
    ));
    out.push_str(&format!(
        "  [+2] num_threads expr node = {}\n",
        extra[b + 2]
    ));
    out.push_str(&format!("  [+3] if expr node = {}\n", extra[b + 3]));
    let list = |name: &str, at: usize, out: &mut String| {
        let (s, e) = (extra[b + at] as usize, extra[b + at + 1] as usize);
        let toks: Vec<&str> = extra[s..e].iter().map(|&t| ast.token_text(t)).collect();
        out.push_str(&format!(
            "  [+{at}..+{}] {name}: slice [{s}, {e}) = {toks:?}\n",
            at + 1
        ));
    };
    list("private", 4, &mut out);
    list("firstprivate", 6, &mut out);
    list("shared", 8, &mut out);
    let (s, e) = (extra[b + 10] as usize, extra[b + 11] as usize);
    let reds: Vec<String> = extra[s..e]
        .chunks(2)
        .map(|p| format!("(op {} : `{}`)", p[0], ast.token_text(p[1])))
        .collect();
    out.push_str(&format!(
        "  [+10..+11] reduction: slice [{s}, {e}) = {reds:?}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    pub(super) const SRC: &str = "fn main() void {\n\
        var s: f64 = 0.0;\n\
        var i: i64 = 0;\n\
        //$omp parallel num_threads(4) private(t) shared(s) reduction(+: s) default(shared)\n\
        {\n\
        //$omp while schedule(dynamic, 16) nowait\n\
        while (i < 10) : (i += 1) { s = s + 1.0; }\n\
        }\n\
        }";

    #[test]
    fn tree_dump_shows_structure() {
        let ast = parse(SRC).unwrap();
        let dump = dump_tree(&ast);
        assert!(dump.contains("FnDecl `main`"), "{dump}");
        assert!(dump.contains("OmpParallel"), "{dump}");
        assert!(dump.contains("OmpWhile"), "{dump}");
        assert!(dump.contains("While"), "{dump}");
    }

    #[test]
    fn clause_dump_decodes_fig2_layout() {
        let ast = parse(SRC).unwrap();
        let par = (0..ast.nodes.len() as u32)
            .find(|&i| ast.node(i).tag == Tag::OmpParallel)
            .unwrap();
        let dump = dump_clauses(&ast, ast.node(par).lhs);
        assert!(dump.contains("private: slice"), "{dump}");
        assert!(dump.contains("[\"t\"]"), "{dump}");
        assert!(dump.contains("shared: slice"), "{dump}");
        assert!(dump.contains("default=Shared"), "{dump}");
        assert!(dump.contains("has_num_threads=true"), "{dump}");

        let wh = (0..ast.nodes.len() as u32)
            .find(|&i| ast.node(i).tag == Tag::OmpWhile)
            .unwrap();
        let dump = dump_clauses(&ast, ast.node(wh).lhs);
        assert!(dump.contains("kind=Dynamic chunk=Some(16)"), "{dump}");
        assert!(dump.contains("nowait=true"), "{dump}");
    }

    #[test]
    fn children_cover_every_node_once() {
        // Walking from the root reaches each node at most once (the AST is
        // a tree, not a DAG) and reaches all statement/expression nodes.
        let ast = parse(SRC).unwrap();
        let mut seen = vec![false; ast.nodes.len()];
        fn walk(ast: &Ast, id: NodeId, seen: &mut [bool]) {
            assert!(!seen[id as usize], "node {id} visited twice");
            seen[id as usize] = true;
            for c in children_of(ast, id) {
                walk(ast, c, seen);
            }
        }
        walk(&ast, ast.root, &mut seen);
        let unreached = seen.iter().filter(|&&s| !s).count();
        // Params and directive clause-expression nodes may be shared
        // entry points; everything else must be reached.
        assert!(
            unreached <= 2,
            "{unreached} unreached nodes of {}",
            ast.nodes.len()
        );
    }
}
