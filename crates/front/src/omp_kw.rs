//! OpenMP keyword recognition.
//!
//! The paper's first plan — tokenising `parallel`, `default` etc. as real
//! keywords — had to be abandoned: "in Zig keywords may not be used as
//! identifiers, and adding these would break compatibility with existing
//! codes". The adopted design stores OpenMP keywords as identifiers and
//! differentiates them during parsing with "a hash map of strings to
//! keyword tokens" (§III-A). [`lookup`] is that hash map.

use std::collections::HashMap;
use std::sync::OnceLock;

/// The OpenMP keyword tags — a parallel token-tag space that only the
/// parser's `eat_omp_keyword` consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OmpKw {
    // Directives.
    Parallel,
    /// The worksharing loop directive. C/C++ spell it `for`; Zig and Zag
    /// spell it `while` after their loop keyword.
    While,
    Barrier,
    Critical,
    Master,
    Single,
    Atomic,
    Threadprivate,

    // Clauses.
    Private,
    Firstprivate,
    Shared,
    Reduction,
    Schedule,
    Nowait,
    Default,
    NumThreads,
    Collapse,
    If,

    // Schedule kinds and default() arguments.
    Static,
    Dynamic,
    Guided,
    Runtime,
    Auto,
    None,
    Min,
    Max,
}

fn map() -> &'static HashMap<&'static str, OmpKw> {
    static MAP: OnceLock<HashMap<&'static str, OmpKw>> = OnceLock::new();
    MAP.get_or_init(|| {
        HashMap::from([
            ("parallel", OmpKw::Parallel),
            ("while", OmpKw::While),
            ("for", OmpKw::While), // accepted alias for readers used to C
            ("barrier", OmpKw::Barrier),
            ("critical", OmpKw::Critical),
            ("master", OmpKw::Master),
            ("single", OmpKw::Single),
            ("atomic", OmpKw::Atomic),
            ("threadprivate", OmpKw::Threadprivate),
            ("private", OmpKw::Private),
            ("firstprivate", OmpKw::Firstprivate),
            ("shared", OmpKw::Shared),
            ("reduction", OmpKw::Reduction),
            ("schedule", OmpKw::Schedule),
            ("nowait", OmpKw::Nowait),
            ("default", OmpKw::Default),
            ("num_threads", OmpKw::NumThreads),
            ("collapse", OmpKw::Collapse),
            ("if", OmpKw::If),
            ("static", OmpKw::Static),
            ("dynamic", OmpKw::Dynamic),
            ("guided", OmpKw::Guided),
            ("runtime", OmpKw::Runtime),
            ("auto", OmpKw::Auto),
            ("none", OmpKw::None),
            ("min", OmpKw::Min),
            ("max", OmpKw::Max),
        ])
    })
}

/// Is this identifier an OpenMP keyword (inside a pragma)?
pub fn lookup(ident: &str) -> Option<OmpKw> {
    map().get(ident).copied()
}

/// Every `(spelling, keyword)` pair of the map, sorted by spelling.
///
/// Exposed so the keyword↔parser agreement test can iterate the map
/// instead of hard-coding a copy that would drift.
pub fn entries() -> Vec<(&'static str, OmpKw)> {
    let mut all: Vec<(&'static str, OmpKw)> = map().iter().map(|(&s, &k)| (s, k)).collect();
    all.sort_unstable_by_key(|&(s, _)| s);
    all
}

/// Every [`OmpKw`] variant, for coverage assertions: adding a variant
/// without a spelling in the map (or here) is a test failure.
pub const VARIANTS: &[OmpKw] = &[
    OmpKw::Parallel,
    OmpKw::While,
    OmpKw::Barrier,
    OmpKw::Critical,
    OmpKw::Master,
    OmpKw::Single,
    OmpKw::Atomic,
    OmpKw::Threadprivate,
    OmpKw::Private,
    OmpKw::Firstprivate,
    OmpKw::Shared,
    OmpKw::Reduction,
    OmpKw::Schedule,
    OmpKw::Nowait,
    OmpKw::Default,
    OmpKw::NumThreads,
    OmpKw::Collapse,
    OmpKw::If,
    OmpKw::Static,
    OmpKw::Dynamic,
    OmpKw::Guided,
    OmpKw::Runtime,
    OmpKw::Auto,
    OmpKw::None,
    OmpKw::Min,
    OmpKw::Max,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directives_and_clauses_resolve() {
        assert_eq!(lookup("parallel"), Some(OmpKw::Parallel));
        assert_eq!(lookup("private"), Some(OmpKw::Private));
        assert_eq!(lookup("num_threads"), Some(OmpKw::NumThreads));
        assert_eq!(lookup("guided"), Some(OmpKw::Guided));
    }

    #[test]
    fn for_is_an_alias_for_while() {
        assert_eq!(lookup("for"), Some(OmpKw::While));
        assert_eq!(lookup("while"), Some(OmpKw::While));
    }

    #[test]
    fn ordinary_identifiers_do_not_resolve() {
        assert_eq!(lookup("parallelism"), None);
        assert_eq!(lookup("x"), None);
        assert_eq!(lookup("PARALLEL"), None); // pragmas are case-sensitive
    }
}
