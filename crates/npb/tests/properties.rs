//! Property-based tests of the NPB substrates: the 46-bit LCG, stream
//! jumping, the IS rank invariants, EP batch independence, and the CG
//! matrix construction invariants at randomised small sizes.

#![allow(clippy::needless_range_loop)] // dense symmetry checks read clearer indexed

use proptest::prelude::*;

use npb::cg::makea::makea;
use npb::class::{CgParams, Class};
use npb::is::{full_verify, rank_parallel, rank_serial};
use npb::randlc::{lcg_jump, randlc, DEFAULT_MULT, DEFAULT_SEED};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The double-split randlc equals exact 46-bit modular arithmetic from
    /// any odd seed below 2^46.
    #[test]
    fn randlc_matches_integer_lcg(seed_raw in 1u64..(1 << 45)) {
        let seed = (seed_raw | 1) as f64; // odd, < 2^46
        let mut x = seed;
        let mut xi = seed as u64;
        const M: u128 = 1 << 46;
        for _ in 0..64 {
            randlc(&mut x, DEFAULT_MULT);
            xi = ((xi as u128 * DEFAULT_MULT as u128) % M) as u64;
            prop_assert_eq!(x as u64, xi);
        }
    }

    /// Jumping the stream by n equals stepping it n times, any n.
    #[test]
    fn lcg_jump_equals_stepping(n in 0u64..3000) {
        let jumped = lcg_jump(DEFAULT_SEED, DEFAULT_MULT, n);
        let mut stepped = DEFAULT_SEED;
        for _ in 0..n {
            randlc(&mut stepped, DEFAULT_MULT);
        }
        prop_assert_eq!(jumped, stepped);
    }

    /// IS: parallel rank equals serial rank exactly for arbitrary key sets
    /// and thread counts; full_verify accepts the result.
    #[test]
    fn is_rank_parallel_equals_serial(
        keys_raw in proptest::collection::vec(0u32..(1 << 10), 16..800),
        threads in 1usize..5,
    ) {
        let params = npb::is::custom_params(10, 10, 4);
        let want = rank_serial(&keys_raw, &params);
        let got = rank_parallel(&keys_raw, &params, threads);
        prop_assert_eq!(&got, &want);
        prop_assert!(full_verify(&keys_raw, &got));
    }

    /// IS: ranks are a valid cumulative histogram (monotone, ending at the
    /// key count).
    #[test]
    fn is_rank_is_cumulative(keys in proptest::collection::vec(0u32..(1 << 8), 1..500)) {
        let params = npb::is::custom_params(9, 8, 3);
        let ranks = rank_serial(&keys, &params);
        prop_assert!(ranks.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*ranks.last().unwrap() as usize, keys.len());
    }
}

proptest! {
    // The CG matrix generation is the expensive one; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// makea invariants hold for randomised miniature problems: symmetric,
    /// sorted unique columns, full diagonal.
    #[test]
    fn makea_invariants(na in 16usize..120, nonzer in 2usize..6, shift_i in 1i32..40) {
        let params = CgParams {
            class: Class::S,
            na,
            nonzer,
            niter: 1,
            shift: shift_i as f64,
            zeta_verify: f64::NAN,
        };
        let m = makea(&params);
        // CSR shape.
        prop_assert_eq!(m.rowstr.len(), na + 1);
        prop_assert_eq!(*m.rowstr.last().unwrap(), m.nnz());
        // Columns sorted strictly, in range, diagonal present.
        for j in 0..na {
            let cols = &m.colidx[m.rowstr[j]..m.rowstr[j + 1]];
            prop_assert!(cols.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(cols.iter().all(|&c| c < na));
            prop_assert!(cols.contains(&j), "row {j} lost its diagonal");
        }
        // Symmetry (dense check is fine at this size).
        let mut dense = vec![vec![0.0f64; na]; na];
        for j in 0..na {
            for k in m.rowstr[j]..m.rowstr[j + 1] {
                dense[j][m.colidx[k]] = m.a[k];
            }
        }
        for r in 0..na {
            for c in (r + 1)..na {
                prop_assert!((dense[r][c] - dense[c][r]).abs() < 1e-12);
            }
        }
    }

    /// EP batches are stream-independent: computing batches in any order
    /// gives identical sums (the property that makes EP embarrassingly
    /// parallel).
    #[test]
    fn ep_results_independent_of_thread_count(threads in 2usize..6) {
        let p = npb::ep::custom_params(17);
        let serial = npb::ep::run_serial(&p);
        let par = npb::ep::run_parallel(&p, threads);
        prop_assert_eq!(par.q, serial.q);
        prop_assert!(((par.sx - serial.sx) / serial.sx).abs() < 1e-12);
    }
}
