//! # npb — NAS Parallel Benchmarks in Rust
//!
//! Rust ports of the three NPB kernels the paper evaluates (§V):
//!
//! * [`cg`] — Conjugate Gradient: irregular sparse matrix-vector products,
//!   the kernel with the richest OpenMP surface (parallel regions,
//!   worksharing loops, `private`/`shared`/`firstprivate`, `nowait`,
//!   reductions on both regions and loops).
//! * [`ep`] — Embarrassingly Parallel: Gaussian deviates via the Marsaglia
//!   polar method; pure compute, `threadprivate` + region reduction.
//! * [`is`] — Integer Sort: bucketed counting sort with indirect memory
//!   access; pressurises the memory subsystem; `static,1` schedule.
//!
//! Each kernel provides a **serial** reference implementation and a
//! **parallel** implementation running on the [`zomp`] runtime — the
//! equivalent of the paper's Zig ports. Problem classes S, W, A, B and C use
//! the official NPB 3.x parameters; verification combines the official NPB
//! acceptance criteria with serial-vs-parallel cross checks (see each
//! module for the exact guarantee).
//!
//! The [`model`] module describes each kernel's parallel regions as workload
//! models (flops, bytes, synchronisation events) consumed by the
//! `archer-sim` crate to reproduce the paper's 128-core strong-scaling
//! results on hosts without 128 cores.

pub mod cg;
pub mod class;
pub mod ep;
pub mod is;
pub mod model;
pub mod randlc;
pub mod timers;
pub mod verify;

pub use class::Class;
pub use verify::VerifyStatus;
