//! NPB-style named timers.
//!
//! The paper measures "using the internal timers provided within the
//! reference implementations" (§IV) — the `timer_clear`/`timer_start`/
//! `timer_stop`/`timer_read` quartet every NPB kernel carries. This is that
//! interface, thread-safe so the parallel drivers can time regions too.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// A bank of named timers (NPB uses small integer ids; names read better).
pub struct Timers {
    slots: Mutex<Vec<(String, TimerState)>>,
}

#[derive(Debug, Clone, Copy, Default)]
struct TimerState {
    accumulated: Duration,
    started: Option<Instant>,
}

impl Default for Timers {
    fn default() -> Self {
        Self::new()
    }
}

impl Timers {
    pub fn new() -> Timers {
        Timers {
            slots: Mutex::new(Vec::new()),
        }
    }

    fn with_slot<R>(&self, name: &str, f: impl FnOnce(&mut TimerState) -> R) -> R {
        let mut slots = self.slots.lock();
        if let Some(entry) = slots.iter_mut().find(|(n, _)| n == name) {
            f(&mut entry.1)
        } else {
            slots.push((name.to_string(), TimerState::default()));
            f(&mut slots.last_mut().unwrap().1)
        }
    }

    /// `timer_clear`.
    pub fn clear(&self, name: &str) {
        self.with_slot(name, |s| *s = TimerState::default());
    }

    /// `timer_start`. Starting a running timer restarts its current lap.
    pub fn start(&self, name: &str) {
        self.with_slot(name, |s| s.started = Some(Instant::now()));
    }

    /// `timer_stop`: accumulate the lap. Stopping a stopped timer is a
    /// no-op, as in the reference.
    pub fn stop(&self, name: &str) {
        self.with_slot(name, |s| {
            if let Some(t0) = s.started.take() {
                s.accumulated += t0.elapsed();
            }
        });
    }

    /// `timer_read`: accumulated seconds (excluding a running lap).
    pub fn read(&self, name: &str) -> f64 {
        self.with_slot(name, |s| s.accumulated.as_secs_f64())
    }

    /// Time a closure under `name`, returning its value.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        self.start(name);
        let out = f();
        self.stop(name);
        out
    }

    /// All timers with non-zero accumulation, in insertion order.
    pub fn report(&self) -> Vec<(String, f64)> {
        self.slots
            .lock()
            .iter()
            .filter(|(_, s)| s.accumulated > Duration::ZERO)
            .map(|(n, s)| (n.clone(), s.accumulated.as_secs_f64()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_laps() {
        let t = Timers::new();
        t.start("a");
        std::thread::sleep(Duration::from_millis(2));
        t.stop("a");
        let first = t.read("a");
        assert!(first > 0.0);
        t.start("a");
        std::thread::sleep(Duration::from_millis(2));
        t.stop("a");
        assert!(t.read("a") > first);
    }

    #[test]
    fn clear_resets() {
        let t = Timers::new();
        t.time("x", || std::thread::sleep(Duration::from_millis(1)));
        assert!(t.read("x") > 0.0);
        t.clear("x");
        assert_eq!(t.read("x"), 0.0);
    }

    #[test]
    fn stop_without_start_is_noop() {
        let t = Timers::new();
        t.stop("never");
        assert_eq!(t.read("never"), 0.0);
    }

    #[test]
    fn report_lists_used_timers_in_order() {
        let t = Timers::new();
        t.time("first", || {});
        t.time("second", || std::thread::sleep(Duration::from_millis(1)));
        let names: Vec<String> = t.report().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"second".to_string()));
    }

    #[test]
    fn timers_are_thread_safe() {
        let t = Timers::new();
        std::thread::scope(|s| {
            for i in 0..4 {
                let t = &t;
                s.spawn(move || {
                    let name = format!("t{i}");
                    t.time(&name, || std::thread::sleep(Duration::from_millis(1)));
                });
            }
        });
        assert_eq!(t.report().len(), 4);
    }
}
