//! `npb-run` — NPB-style benchmark driver.
//!
//! ```text
//! npb-run cg S              # serial CG, class S, NPB-style report
//! npb-run ep A --threads 4  # parallel EP, class A, 4 threads
//! npb-run is W --threads 2 --serial-check
//! npb-run cg A --threads 4 --trace trace.json   # chrome://tracing events
//! npb-run ep A --threads 4 --metrics m.json     # aggregated counters
//! ```
//!
//! Prints a report shaped like the reference implementations': class,
//! size, iteration count, time, Mop/s, verification status.

use std::time::Instant;

use npb::class::{CgParams, Class, EpParams, IsParams};
use npb::verify::VerifyStatus;
use zomp::ExecConfig;

struct Args {
    kernel: String,
    class: Class,
    threads: Option<usize>,
    serial_check: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: npb-run <cg|ep|is> <S|W|A|B|C> [--threads N] [--serial-check]\n\
         \t\t[--trace FILE] [--metrics FILE]\n\
         \n\
         --threads N      run the zomp-parallel implementation on N threads\n\
         --serial-check   also run serially and cross-check the results\n\
         --trace FILE     write a chrome://tracing JSON event file\n\
         --metrics FILE   write aggregated runtime counters as JSON"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    // The shared execution flags (`--threads`, `--trace`, `--metrics`,
    // `--schedule`, `--safety`) come from the `ExecConfig` builder; the
    // kernel/class positionals and `--serial-check` stay local.
    let mut cfg = ExecConfig::new();
    let mut kernel = None;
    let mut class = None;
    let mut serial_check = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match cfg.parse_flag(&a, &mut it) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("npb-run: {e}");
                usage();
            }
        }
        match a.as_str() {
            "--serial-check" => serial_check = true,
            "--help" | "-h" => usage(),
            other if kernel.is_none() => kernel = Some(other.to_ascii_lowercase()),
            other if class.is_none() => {
                class = Class::parse(other).map(Some).unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    cfg.apply_global();
    Args {
        kernel: kernel.unwrap_or_else(|| usage()),
        class: class.unwrap_or_else(|| usage()),
        threads: cfg.threads,
        serial_check,
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the NPB c_print_results signature
fn report(
    name: &str,
    class: Class,
    size: String,
    niter: usize,
    secs: f64,
    mops: f64,
    threads: usize,
    status: VerifyStatus,
) {
    println!("\n NAS Parallel Benchmarks (zomp Rust reproduction) - {name} Benchmark\n");
    println!(" Class           = {class}");
    println!(" Size            = {size}");
    println!(" Iterations      = {niter}");
    println!(" Threads         = {threads}");
    println!(" Time in seconds = {secs:.2}");
    println!(" Mop/s total     = {mops:.2}");
    println!(" Verification    = {status}");
}

fn run_cg(class: Class, threads: Option<usize>, serial_check: bool) {
    use npb::cg::{makea::makea, run_with_matrix, Mode};
    let params = CgParams::for_class(class);
    eprintln!("generating matrix ({} rows)...", params.na);
    let mat = makea(&params);
    let mode = threads.map(Mode::Parallel).unwrap_or(Mode::Serial);
    let t0 = Instant::now();
    let result = run_with_matrix(&params, &mat, mode);
    let secs = t0.elapsed().as_secs_f64();
    // NPB CG Mop count: per the reference, ~ niter*(2*nnz*(25+1) + vector ops).
    let flops =
        params.niter as f64 * (2.0 * mat.nnz() as f64 * 26.0 + 12.0 * params.na as f64 * 25.0);
    let status = result.verify(&params);
    if serial_check && mode != Mode::Serial {
        let s = run_with_matrix(&params, &mat, Mode::Serial);
        assert!(
            (s.zeta - result.zeta).abs() < 1e-10,
            "serial cross-check failed: {} vs {}",
            s.zeta,
            result.zeta
        );
        eprintln!("serial cross-check passed");
    }
    report(
        "CG",
        class,
        format!("{}", params.na),
        params.niter,
        secs,
        flops / secs / 1e6,
        threads.unwrap_or(1),
        status,
    );
    println!(" zeta            = {:.13}", result.zeta);
}

fn run_ep(class: Class, threads: Option<usize>, serial_check: bool) {
    use npb::ep::{run_parallel, run_serial};
    let params = EpParams::for_class(class);
    let t0 = Instant::now();
    let result = match threads {
        Some(t) => run_parallel(&params, t),
        None => run_serial(&params),
    };
    let secs = t0.elapsed().as_secs_f64();
    let status = result.verify(&params);
    if serial_check && threads.is_some() {
        let s = run_serial(&params);
        assert_eq!(s.q, result.q, "serial cross-check failed");
        eprintln!("serial cross-check passed");
    }
    report(
        "EP",
        class,
        format!("2^{}", params.m),
        1,
        secs,
        params.pairs() as f64 / secs / 1e6, // Mop = random pairs/s, as ep.f reports
        threads.unwrap_or(1),
        status,
    );
    println!(" sx              = {:.10e}", result.sx);
    println!(" sy              = {:.10e}", result.sy);
}

fn run_is(class: Class, threads: Option<usize>, serial_check: bool) {
    use npb::is::{run, Mode};
    let params = IsParams::for_class(class);
    let mode = threads.map(Mode::Parallel).unwrap_or(Mode::Serial);
    let t0 = Instant::now();
    let result = run(&params, mode);
    let secs = t0.elapsed().as_secs_f64();
    let status = result.verify();
    if serial_check && mode != Mode::Serial {
        // `run` in parallel mode already cross-checks every iteration.
        assert!(result.iterations_consistent, "serial cross-check failed");
        eprintln!("serial cross-check passed");
    }
    report(
        "IS",
        class,
        format!(
            "2^{} keys, 2^{} max key",
            params.total_keys_log2, params.max_key_log2
        ),
        IsParams::MAX_ITERATIONS,
        secs,
        (params.num_keys() * IsParams::MAX_ITERATIONS) as f64 / secs / 1e6,
        threads.unwrap_or(1),
        status,
    );
}

fn main() {
    let args = parse_args();
    match args.kernel.as_str() {
        "cg" => run_cg(args.class, args.threads, args.serial_check),
        "ep" => run_ep(args.class, args.threads, args.serial_check),
        "is" => run_is(args.class, args.threads, args.serial_check),
        _ => usage(),
    }
    match zomp::trace::finish() {
        Ok(written) => {
            for p in written {
                eprintln!("wrote {p}");
            }
        }
        Err(e) => {
            eprintln!("npb-run: could not write trace output: {e}");
            std::process::exit(1);
        }
    }
}
