//! Verification outcomes.
//!
//! Every kernel reports one of three statuses: verified against the
//! **official** NPB acceptance value, verified only against this port's own
//! serial implementation (used in tests to pin parallel == serial), or
//! failed. The NPB tolerance is 1e-10 relative for CG's zeta and 1e-8
//! relative for EP's sums; IS verifies exact ranks.

use std::fmt;

/// Outcome of a benchmark verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyStatus {
    /// Matches the official NPB verification value.
    Verified,
    /// Matches this port's serial reference (cross-check only).
    SelfVerified,
    /// Verification failed.
    Failed,
}

impl VerifyStatus {
    pub fn passed(self) -> bool {
        self != VerifyStatus::Failed
    }
}

impl fmt::Display for VerifyStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyStatus::Verified => write!(f, "VERIFICATION SUCCESSFUL"),
            VerifyStatus::SelfVerified => write!(f, "SELF-VERIFIED (serial cross-check)"),
            VerifyStatus::Failed => write!(f, "VERIFICATION FAILED"),
        }
    }
}

/// Relative-error acceptance test, `|got - want| / |want| <= epsilon`
/// (absolute when `want == 0`).
pub fn close(got: f64, want: f64, epsilon: f64) -> bool {
    if want == 0.0 {
        got.abs() <= epsilon
    } else {
        ((got - want) / want).abs() <= epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn close_relative() {
        assert!(close(100.0, 100.0 + 1e-9, 1e-10));
        assert!(!close(100.0, 101.0, 1e-10));
        assert!(close(0.0, 0.0, 1e-10));
        assert!(close(1e-12, 0.0, 1e-10));
    }

    #[test]
    fn status_passed() {
        assert!(VerifyStatus::Verified.passed());
        assert!(VerifyStatus::SelfVerified.passed());
        assert!(!VerifyStatus::Failed.passed());
    }
}
