//! IS — the Integer Sort kernel (NPB `is.c`).
//!
//! Ranks `2^total_keys_log2` uniformly distributed integer keys in
//! `[0, 2^max_key_log2)` ten times with a bucketed counting sort. The
//! memory-access pattern (indirect scatter into buckets, then per-bucket
//! counting) is what pressurises the memory subsystem (§V-C).
//!
//! The paper ports the `rank` function (≈70 % of runtime) to Zig;
//! [`rank_serial`] and [`rank_parallel`] are the Rust equivalents. The
//! parallel version follows the OpenMP reference's bucketed algorithm with
//! per-thread bucket counts and the `static,1` schedule over buckets the
//! paper mentions. Verification: every iteration's rank array must match
//! the serial reference exactly (integers — bitwise), and the final
//! `full_verify` reconstructs the sorted sequence and checks order and
//! multiset preservation, as in `is.c`.

use zomp::prelude::*;
use zomp::workshare::for_loop;

use crate::class::IsParams;
use crate::randlc::{randlc, DEFAULT_MULT, DEFAULT_SEED};
use crate::verify::VerifyStatus;

/// Key type: class C keys fit comfortably in u32.
pub type Key = u32;

/// Generate the key sequence — port of `create_seq(314159265, 1220703125)`:
/// each key is `(max_key/4) * (u1+u2+u3+u4)` over four consecutive
/// deviates.
pub fn create_seq(params: &IsParams) -> Vec<Key> {
    let mut s = DEFAULT_SEED;
    let k = params.max_key() as f64 / 4.0;
    (0..params.num_keys())
        .map(|_| {
            let mut x = randlc(&mut s, DEFAULT_MULT);
            x += randlc(&mut s, DEFAULT_MULT);
            x += randlc(&mut s, DEFAULT_MULT);
            x += randlc(&mut s, DEFAULT_MULT);
            (k * x) as Key
        })
        .collect()
}

/// Apply the per-iteration key mutations from `rank()`:
/// `key[iter] = iter`, `key[iter + MAX_ITERATIONS] = max_key - iter`.
pub fn mutate_keys(keys: &mut [Key], params: &IsParams, iteration: usize) {
    keys[iteration] = iteration as Key;
    keys[iteration + IsParams::MAX_ITERATIONS] = (params.max_key() - iteration) as Key;
}

/// Serial `rank`: plain counting sort. Returns the rank array where
/// `ranks[k]` = number of keys with value `<= k` (the cumulative key
/// population, `key_buff_ptr` in `is.c`).
pub fn rank_serial(keys: &[Key], params: &IsParams) -> Vec<u32> {
    let mut counts = vec![0u32; params.max_key()];
    for &k in keys {
        counts[k as usize] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    counts
}

/// Parallel `rank` over the zomp runtime: the bucketed algorithm of the
/// OpenMP reference.
///
/// 1. each thread counts its (static) slice of keys into private
///    per-bucket counters;
/// 2. every thread derives its scatter offsets from all threads' counters
///    (threads scan the `T × B` count matrix redundantly, as `is.c` does);
/// 3. keys are scattered into `key_buff2` bucket-contiguously;
/// 4. buckets are ranked independently under `schedule(static, 1)`.
pub fn rank_parallel(keys: &[Key], params: &IsParams, threads: usize) -> Vec<u32> {
    let nb = params.num_buckets();
    let shift = params.max_key_log2 - params.num_buckets_log2;
    let nkeys = keys.len();

    let mut ranks = vec![0u32; params.max_key()];
    let mut buff2 = vec![0 as Key; nkeys];

    // Per-thread bucket counts, written disjointly by thread id.
    let mut bucket_counts = vec![0u32; threads * nb];
    // Where each bucket starts in buff2 (filled by thread 0 in a single).
    let mut bucket_starts = vec![0usize; nb + 1];

    {
        let counts = SharedSlice::new(&mut bucket_counts);
        let starts = SharedSlice::new(&mut bucket_starts);
        let out = SharedSlice::new(&mut buff2);
        let ranks_sh = SharedSlice::new(&mut ranks);

        fork_call(Parallel::new().num_threads(threads), |ctx| {
            let tid = ctx.thread_num();
            let nth = ctx.num_threads();

            // Phase 1: private bucket histogram of this thread's key slice.
            let mut local = vec![0u32; nb];
            for_loop(
                ctx,
                Schedule::static_default(),
                0..nkeys as i64,
                true,
                |i| {
                    local[(keys[i as usize] >> shift) as usize] += 1;
                },
            );
            for (b, &c) in local.iter().enumerate() {
                counts.set(tid * nb + b, c);
            }
            ctx.barrier();

            // Phase 2: bucket starts (one thread) and this thread's scatter
            // cursor per bucket (every thread, redundantly — is.c's
            // pattern).
            ctx.single(false, || {
                let mut acc = 0usize;
                for b in 0..nb {
                    starts.set(b, acc);
                    for t in 0..nth {
                        acc += counts.get(t * nb + b) as usize;
                    }
                }
                starts.set(nb, acc);
            });
            let mut cursor = vec![0usize; nb];
            for (b, slot) in cursor.iter_mut().enumerate() {
                let mut at = starts.get(b);
                for t in 0..tid {
                    at += counts.get(t * nb + b) as usize;
                }
                *slot = at;
            }

            // Phase 3: scatter this thread's slice (same static partition as
            // phase 1, so the cursors line up exactly).
            for_loop(
                ctx,
                Schedule::static_default(),
                0..nkeys as i64,
                false,
                |i| {
                    let key = keys[i as usize];
                    let b = (key >> shift) as usize;
                    out.set(cursor[b], key);
                    cursor[b] += 1;
                },
            );

            // Phase 4: rank each bucket independently; schedule(static, 1)
            // cycles buckets over threads to balance skew.
            for_loop(ctx, Schedule::static_chunked(1), 0..nb as i64, true, |b| {
                let b = b as usize;
                let key_lo = b << shift;
                let key_hi = (b + 1) << shift;
                let start = starts.get(b);
                let end = starts.get(b + 1);
                // Zero this bucket's key range.
                for k in key_lo..key_hi {
                    ranks_sh.set(k, 0);
                }
                // Count.
                for i in start..end {
                    let k = out.get(i) as usize;
                    ranks_sh.set(k, ranks_sh.get(k) + 1);
                }
                // Cumulative within the bucket, offset by the keys in
                // all earlier buckets (== start, since buckets partition
                // the key space in order).
                let mut acc = start as u32;
                for k in key_lo..key_hi {
                    acc += ranks_sh.get(k);
                    ranks_sh.set(k, acc);
                }
            });
        });
    }

    ranks
}

/// Reconstruct the sorted key sequence from a rank array and verify it —
/// port of `full_verify`. Checks both sortedness and multiset preservation.
pub fn full_verify(keys: &[Key], ranks: &[u32]) -> bool {
    let mut cursors: Vec<u32> = ranks.to_vec();
    let mut sorted = vec![0 as Key; keys.len()];
    for &k in keys {
        cursors[k as usize] -= 1;
        sorted[cursors[k as usize] as usize] = k;
    }
    // Sorted order.
    if sorted.windows(2).any(|w| w[0] > w[1]) {
        return false;
    }
    // Multiset preservation: counts derived from ranks must match a direct
    // histogram.
    let mut hist = vec![0u32; ranks.len()];
    for &k in keys {
        hist[k as usize] += 1;
    }
    let mut acc = 0u32;
    for (k, &h) in hist.iter().enumerate() {
        acc += h;
        if ranks[k] != acc {
            return false;
        }
    }
    true
}

/// Result of a full IS benchmark run.
#[derive(Debug, Clone)]
pub struct IsResult {
    /// Rank array of the final iteration.
    pub final_ranks: Vec<u32>,
    /// Did every iteration match the serial reference (parallel runs only)?
    pub iterations_consistent: bool,
    /// Did `full_verify` pass?
    pub full_verified: bool,
}

impl IsResult {
    pub fn verify(&self) -> VerifyStatus {
        if self.full_verified && self.iterations_consistent {
            VerifyStatus::SelfVerified
        } else {
            VerifyStatus::Failed
        }
    }
}

/// Execution mode for [`run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Serial,
    Parallel(usize),
}

/// Full benchmark: `MAX_ITERATIONS` ranks (with the per-iteration key
/// mutations) followed by `full_verify`. In parallel mode every iteration is
/// cross-checked against the serial reference.
pub fn run(params: &IsParams, mode: Mode) -> IsResult {
    let mut keys = create_seq(params);
    let mut consistent = true;
    let mut ranks = Vec::new();
    for it in 1..=IsParams::MAX_ITERATIONS {
        mutate_keys(&mut keys, params, it);
        ranks = match mode {
            Mode::Serial => rank_serial(&keys, params),
            Mode::Parallel(t) => {
                let r = rank_parallel(&keys, params, t);
                if r != rank_serial(&keys, params) {
                    consistent = false;
                }
                r
            }
        };
    }
    let full = full_verify(&keys, &ranks);
    IsResult {
        final_ranks: ranks,
        iterations_consistent: consistent,
        full_verified: full,
    }
}

/// Reduced-size parameters for tests and laptop demos.
pub fn custom_params(total_keys_log2: u32, max_key_log2: u32, num_buckets_log2: u32) -> IsParams {
    IsParams {
        class: crate::class::Class::S,
        total_keys_log2,
        max_key_log2,
        num_buckets_log2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::Class;

    #[test]
    fn keys_are_in_range_and_spread() {
        let p = IsParams::for_class(Class::S);
        let keys = create_seq(&p);
        assert_eq!(keys.len(), 1 << 16);
        assert!(keys.iter().all(|&k| (k as usize) < p.max_key()));
        // Sum of 4 uniforms has mean 2 → keys average near max_key/2.
        let mean = keys.iter().map(|&k| k as f64).sum::<f64>() / keys.len() as f64;
        let half = p.max_key() as f64 / 2.0;
        assert!((mean - half).abs() < half * 0.02, "mean {mean} vs {half}");
    }

    #[test]
    fn serial_rank_is_cumulative_histogram() {
        let p = custom_params(10, 6, 3);
        let keys = create_seq(&p);
        let ranks = rank_serial(&keys, &p);
        assert_eq!(*ranks.last().unwrap() as usize, keys.len());
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn parallel_rank_matches_serial_exactly() {
        let p = custom_params(14, 10, 4);
        let mut keys = create_seq(&p);
        mutate_keys(&mut keys, &p, 1);
        let want = rank_serial(&keys, &p);
        for threads in [1, 2, 3, 4] {
            let got = rank_parallel(&keys, &p, threads);
            assert_eq!(got, want, "mismatch at {threads} threads");
        }
    }

    #[test]
    fn full_verify_accepts_correct_ranks() {
        let p = custom_params(12, 8, 3);
        let keys = create_seq(&p);
        let ranks = rank_serial(&keys, &p);
        assert!(full_verify(&keys, &ranks));
    }

    #[test]
    fn full_verify_rejects_corrupted_ranks() {
        let p = custom_params(12, 8, 3);
        let keys = create_seq(&p);
        let mut ranks = rank_serial(&keys, &p);
        // Swap two adjacent cumulative counts: breaks monotone consistency.
        let mid = ranks.len() / 2;
        ranks[mid] = ranks[mid].wrapping_add(1);
        assert!(!full_verify(&keys, &ranks));
    }

    #[test]
    fn full_run_serial_and_parallel() {
        let p = custom_params(13, 9, 4);
        let s = run(&p, Mode::Serial);
        assert!(s.full_verified);
        assert_eq!(s.verify(), VerifyStatus::SelfVerified);
        let par = run(&p, Mode::Parallel(3));
        assert!(par.full_verified);
        assert!(par.iterations_consistent);
        assert_eq!(par.final_ranks, s.final_ranks);
    }

    #[test]
    fn class_s_runs_and_verifies() {
        let p = IsParams::for_class(Class::S);
        let r = run(&p, Mode::Parallel(2));
        assert!(r.verify().passed());
    }
}
