//! Region-level workload models of the three kernels.
//!
//! The paper's evaluation ran on a 128-core ARCHER2 node; this harness may
//! not have 128 cores, so the strong-scaling experiments are reproduced by
//! the `archer-sim` machine model. This module is the interface between the
//! kernels and that model: a [`KernelModel`] describes the *timed section*
//! of a benchmark as the sequence of serial steps and parallel regions the
//! real implementation executes, with per-iteration flop and byte counts
//! derived from the source loops. The simulator replays the description
//! using the **same scheduling code** (`zomp::schedule`) as the live
//! runtime.
//!
//! Flop/byte counts are per *source* loop iteration and count traffic to
//! shared data; private scratch that stays cache-resident is recorded
//! separately (`private_bytes_per_thread`).

use zomp::schedule::Schedule;

use crate::class::{CgParams, EpParams, IsParams};

/// Memory access pattern of a loop body, which determines achievable
/// bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Unit-stride streaming (vector updates).
    Streaming,
    /// Indexed reads (SpMV column gather).
    Gather,
    /// Indexed writes (IS bucket scatter).
    Scatter,
}

/// One worksharing loop inside a parallel region.
#[derive(Debug, Clone)]
pub struct LoopModel {
    pub name: &'static str,
    /// Source-loop trip count.
    pub trip: u64,
    /// Floating point (or equivalent integer) operations per iteration.
    pub flops_per_iter: f64,
    /// Bytes moved to/from shared data per iteration.
    pub bytes_per_iter: f64,
    pub access: Access,
    /// Total shared bytes the loop touches (for cache-fit modelling).
    pub working_set_bytes: f64,
    pub sched: Schedule,
    /// `nowait` clause: no barrier at loop end.
    pub nowait: bool,
    /// Loop carries a reduction (adds one atomic combine per thread).
    pub reduction: bool,
    /// Is the working set re-traversed by later iterations of an enclosing
    /// repeat? Only reused data benefits from cache residency (CG's matrix
    /// and vectors across the 25 CG iterations); single-pass loops (all of
    /// IS) stream from DRAM regardless of slice size.
    pub reused: bool,
}

/// One step inside a parallel region.
#[derive(Debug, Clone)]
pub enum Step {
    Loop(LoopModel),
    /// Explicit barrier.
    Barrier,
    /// Redundant per-thread scalar work (e.g. alpha/beta updates).
    PerThread {
        flops: f64,
    },
    /// Repeat a subsequence (the CG inner iteration).
    Repeat {
        times: u32,
        body: Vec<Step>,
    },
}

/// A parallel region: fork, steps, join.
#[derive(Debug, Clone)]
pub struct RegionModel {
    pub name: &'static str,
    pub steps: Vec<Step>,
    /// Private (per-thread) resident scratch, e.g. EP's deviate buffer.
    pub private_bytes_per_thread: f64,
}

/// A step of the timed section.
#[derive(Debug, Clone)]
pub enum TimedStep {
    /// Master-only serial work between regions.
    Serial {
        flops: f64,
        bytes: f64,
    },
    Region(RegionModel),
    /// Repeat a subsequence (the benchmark outer iteration).
    Repeat {
        times: u32,
        body: Vec<TimedStep>,
    },
}

/// The full timed section of one benchmark.
#[derive(Debug, Clone)]
pub struct KernelModel {
    pub name: String,
    pub timed: Vec<TimedStep>,
}

/// Estimated assembled nonzeros when running `makea` is impractical.
/// Measured ratios (nnz / upper bound) are ≈0.87 across classes; the exact
/// count only shifts absolute times, not scaling shape.
pub fn estimate_nnz(params: &CgParams) -> u64 {
    (params.nz() as f64 * 0.872) as u64
}

/// CG model: `niter ×` (conj_grad region + serial norms).
///
/// Per-loop costs (doubles are 8 bytes, indices 4):
/// * init: writes q, z, r, p; reads x → 5×8 B.
/// * rho: reads r, 2 flops, 8 B.
/// * SpMV row: `nnz/n` entries × (5.0 *effective* ops — the 2 flops plus
///   index arithmetic and the `p[colidx[k]]` gather's latency exposure,
///   calibrated against Table I's 149.4 s serial row — and 12 B of matrix
///   stream (a 8 B + colidx 4 B); the gathered `p` vector itself is only
///   ~1.2 MB and stays cache resident, so it adds ops, not DRAM traffic).
/// * d: reads p, q → 2 flops, 16 B.
/// * z/r/rho fused: 6 flops; reads p,q,z,r writes z,r → 48 B.
/// * p update: 2 flops; reads r,p writes p → 24 B.
pub fn cg_model(params: &CgParams, nnz: u64) -> KernelModel {
    let n = params.na as u64;
    let nnz_per_row = nnz as f64 / n as f64;
    let vec_ws = n as f64 * 8.0;
    let mat_ws = nnz as f64 * 12.0 + vec_ws;
    let sched = Schedule::static_default();

    let vec_loop = |name, flops, bytes, nowait, reduction, nvec: f64| {
        Step::Loop(LoopModel {
            name,
            trip: n,
            flops_per_iter: flops,
            bytes_per_iter: bytes,
            access: Access::Streaming,
            working_set_bytes: vec_ws * nvec,
            sched,
            nowait,
            reduction,
            reused: true,
        })
    };

    let conj_grad = RegionModel {
        name: "conj_grad",
        private_bytes_per_thread: 0.0,
        steps: vec![
            vec_loop("init q z r p", 0.0, 40.0, true, false, 5.0),
            vec_loop("rho = r.r", 2.0, 8.0, false, true, 1.0),
            Step::Repeat {
                times: CgParams::CGITMAX as u32,
                body: vec![
                    Step::Loop(LoopModel {
                        name: "q = A p",
                        trip: n,
                        flops_per_iter: 5.0 * nnz_per_row,
                        bytes_per_iter: nnz_per_row * (8.0 + 4.0) + 8.0,
                        access: Access::Gather,
                        working_set_bytes: mat_ws,
                        sched,
                        nowait: true,
                        reduction: false,
                        reused: true,
                    }),
                    vec_loop("d = p.q", 2.0, 16.0, false, true, 2.0),
                    Step::PerThread { flops: 4.0 },
                    vec_loop("z r rho", 6.0, 48.0, false, true, 4.0),
                    Step::PerThread { flops: 2.0 },
                    vec_loop("p = r + beta p", 2.0, 24.0, false, false, 2.0),
                ],
            },
            Step::Loop(LoopModel {
                name: "r = A z",
                trip: n,
                flops_per_iter: 5.0 * nnz_per_row,
                bytes_per_iter: nnz_per_row * 12.0 + 8.0,
                access: Access::Gather,
                working_set_bytes: mat_ws,
                sched,
                nowait: true,
                reduction: false,
                reused: true,
            }),
            vec_loop("rnorm", 3.0, 16.0, false, true, 2.0),
        ],
    };

    KernelModel {
        name: format!("CG class {}", params.class),
        timed: vec![TimedStep::Repeat {
            times: params.niter as u32,
            body: vec![
                TimedStep::Region(conj_grad),
                // Serial norms + x update: 3 passes over x/z.
                TimedStep::Serial {
                    flops: 5.0 * n as f64,
                    bytes: 5.0 * vec_ws,
                },
            ],
        }],
    }
}

/// EP model: one region over `2^(m-16)` batches.
///
/// Per batch: `2·nk` randlc steps (≈18 flops each: 10 multiplies/adds plus
/// truncations) writing the private deviate buffer, then `nk` pair
/// evaluations (≈9 flops each for the radius test; the accepted ~π/4
/// fraction adds sqrt+log ≈ 40 flops). Shared traffic is negligible — the
/// kernel is pure compute on private data, which is what makes it
/// embarrassingly parallel.
pub fn ep_model(params: &EpParams) -> KernelModel {
    let nk = params.batch_pairs() as f64;
    let flops_per_batch = 2.0 * nk * 18.0 + nk * (9.0 + std::f64::consts::FRAC_PI_4 * 40.0);
    KernelModel {
        name: format!("EP class {}", params.class),
        timed: vec![TimedStep::Region(RegionModel {
            name: "ep batches",
            private_bytes_per_thread: 2.0 * nk * 8.0,
            steps: vec![Step::Loop(LoopModel {
                name: "batch loop",
                trip: params.batches(),
                flops_per_iter: flops_per_batch,
                bytes_per_iter: 0.0,
                access: Access::Streaming,
                working_set_bytes: 0.0,
                sched: Schedule::static_default(),
                nowait: true,
                reduction: true,
                reused: false,
            })],
        })],
    }
}

/// IS model: 10 × the bucketed `rank`.
///
/// Phases over the key array (4 B keys). The `flops_per_iter` numbers are
/// *effective* integer operations including the dependent-chain stalls of
/// counting sort (increment through a just-loaded pointer), calibrated so
/// the serial class-C model lands on Table III's 11.87 s:
/// 1. histogram pass: read key, bump private bucket count → 4 B, ≈6 ops;
/// 2. scatter pass: read key, write it through a bucket cursor → 8 B
///    scatter access, ≈8 ops;
/// 3. per-bucket ranking (`static,1` over buckets): zero + count + prefix
///    over the bucket's key range → ≈6 ops per key plus 2 per count slot.
pub fn is_model(params: &IsParams) -> KernelModel {
    let nkeys = params.num_keys() as u64;
    let nb = params.num_buckets() as u64;
    let keys_per_bucket = nkeys as f64 / nb as f64;
    let counts_per_bucket = params.max_key() as f64 / nb as f64;
    let keys_ws = nkeys as f64 * 4.0;

    let rank = RegionModel {
        name: "rank",
        private_bytes_per_thread: params.num_buckets() as f64 * 4.0,
        steps: vec![
            Step::Loop(LoopModel {
                name: "bucket histogram",
                trip: nkeys,
                flops_per_iter: 6.0,
                bytes_per_iter: 4.0,
                access: Access::Streaming,
                working_set_bytes: keys_ws,
                sched: Schedule::static_default(),
                nowait: false,
                reduction: false,
                reused: false,
            }),
            Step::Loop(LoopModel {
                name: "scatter to buckets",
                trip: nkeys,
                flops_per_iter: 8.0,
                bytes_per_iter: 8.0,
                access: Access::Scatter,
                working_set_bytes: 2.0 * keys_ws,
                sched: Schedule::static_default(),
                nowait: false,
                reduction: false,
                reused: false,
            }),
            Step::Loop(LoopModel {
                name: "rank buckets (static,1)",
                trip: nb,
                flops_per_iter: keys_per_bucket * 6.0 + counts_per_bucket * 2.0,
                bytes_per_iter: keys_per_bucket * 8.0 + counts_per_bucket * 2.0 * 4.0,
                access: Access::Streaming,
                working_set_bytes: keys_ws + params.max_key() as f64 * 4.0,
                sched: Schedule::static_chunked(1),
                nowait: true,
                reduction: false,
                reused: false,
            }),
        ],
    };

    KernelModel {
        name: format!("IS class {}", params.class),
        timed: vec![TimedStep::Repeat {
            times: IsParams::MAX_ITERATIONS as u32,
            body: vec![TimedStep::Region(rank)],
        }],
    }
}

/// Total flops of a model (serial work measure, used for sanity checks and
/// roofline reporting).
pub fn total_flops(model: &KernelModel) -> f64 {
    fn steps(sts: &[Step]) -> f64 {
        sts.iter()
            .map(|s| match s {
                Step::Loop(l) => l.trip as f64 * l.flops_per_iter,
                Step::Barrier => 0.0,
                Step::PerThread { flops } => *flops,
                Step::Repeat { times, body } => *times as f64 * steps(body),
            })
            .sum()
    }
    fn timed(ts: &[TimedStep]) -> f64 {
        ts.iter()
            .map(|t| match t {
                TimedStep::Serial { flops, .. } => *flops,
                TimedStep::Region(r) => steps(&r.steps),
                TimedStep::Repeat { times, body } => *times as f64 * timed(body),
            })
            .sum()
    }
    timed(&model.timed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::Class;

    #[test]
    fn cg_model_flops_scale_with_class() {
        let s = CgParams::for_class(Class::S);
        let a = CgParams::for_class(Class::A);
        let fs = total_flops(&cg_model(&s, estimate_nnz(&s)));
        let fa = total_flops(&cg_model(&a, estimate_nnz(&a)));
        assert!(
            fa > 10.0 * fs,
            "class A ({fa:e}) must dwarf class S ({fs:e})"
        );
    }

    #[test]
    fn ep_model_flops_match_pair_count() {
        let p = EpParams::for_class(Class::A);
        let f = total_flops(&ep_model(&p));
        let per_pair = f / p.pairs() as f64;
        // ~36+40·π/4+9 ≈ 76 flops per pair.
        assert!(per_pair > 40.0 && per_pair < 120.0, "per pair {per_pair}");
    }

    #[test]
    fn is_model_effective_ops_per_key_plausible() {
        let p = IsParams::for_class(Class::C);
        let m = is_model(&p);
        // Counting sort costs ~15-25 effective ops/key (dependent-chain
        // stalls included) — the calibration behind Table III's 11.87 s.
        let flops = total_flops(&m);
        let keys = p.num_keys() as f64 * 10.0;
        let per_key = flops / keys;
        assert!((10.0..30.0).contains(&per_key), "ops/key {per_key}");
    }

    #[test]
    fn estimated_nnz_close_to_measured_class_s() {
        let p = CgParams::for_class(Class::S);
        let measured = crate::cg::makea::makea(&p).nnz() as f64;
        let est = estimate_nnz(&p) as f64;
        assert!(
            (est - measured).abs() / measured < 0.05,
            "est {est} measured {measured}"
        );
    }
}
