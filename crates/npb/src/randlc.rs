//! The NPB pseudorandom number generator.
//!
//! All NPB kernels draw their inputs from the same 46-bit linear
//! congruential generator
//!
//! ```text
//! x_{k+1} = a * x_k  (mod 2^46)
//! ```
//!
//! implemented in double-precision arithmetic by splitting operands into two
//! 23-bit halves (the classic `randlc` routine). We reproduce the double
//! splitting *exactly* — not with `u64` modular arithmetic — because the NPB
//! verification values depend on using the same operation order (the results
//! are identical anyway, but keeping the reference shape makes the port
//! auditable line-by-line against `randlc.f`).

/// 2^-23
const R23: f64 = 1.192_092_895_507_812_5e-7;
/// 2^23
const T23: f64 = 8_388_608.0;
/// 2^-46
const R46: f64 = R23 * R23;
/// 2^46
const T46: f64 = T23 * T23;

/// Default NPB seed.
pub const DEFAULT_SEED: f64 = 314_159_265.0;
/// Default NPB multiplier.
pub const DEFAULT_MULT: f64 = 1_220_703_125.0;

/// One LCG step: updates `x` in place and returns the uniform deviate
/// `x / 2^46 ∈ (0, 1)`. Port of `randlc(x, a)`.
#[inline]
pub fn randlc(x: &mut f64, a: f64) -> f64 {
    // Break A into two parts such that A = 2^23 * A1 + A2.
    let t1 = R23 * a;
    let a1 = t1.trunc();
    let a2 = a - T23 * a1;

    // Break X into two parts such that X = 2^23 * X1 + X2, compute
    // Z = A1 * X2 + A2 * X1 (mod 2^23), and then
    // X = 2^23 * Z + A2 * X2 (mod 2^46).
    let t1 = R23 * *x;
    let x1 = t1.trunc();
    let x2 = *x - T23 * x1;
    let t1 = a1 * x2 + a2 * x1;
    let t2 = (R23 * t1).trunc();
    let z = t1 - T23 * t2;
    let t3 = T23 * z + a2 * x2;
    let t4 = (R46 * t3).trunc();
    *x = t3 - T46 * t4;
    R46 * *x
}

/// Fill `y` with successive deviates; port of `vranlc(n, x, a, y)`.
pub fn vranlc(x: &mut f64, a: f64, y: &mut [f64]) {
    for slot in y.iter_mut() {
        *slot = randlc(x, a);
    }
}

/// Compute `a^n (mod 2^46)` in LCG space by binary exponentiation — the
/// "find starting seed" idiom EP and IS use to jump the stream to an
/// arbitrary offset in O(log n) steps.
pub fn lcg_pow(a: f64, mut n: u64) -> f64 {
    // Square-and-multiply entirely with randlc steps so rounding behaviour
    // matches the Fortran exactly.
    let mut result = 1.0f64; // LCG identity: multiplying a seed by 1
    let mut base = a;
    while n > 0 {
        if n & 1 == 1 {
            randlc(&mut result, base);
        }
        let b = base;
        randlc(&mut base, b);
        n >>= 1;
    }
    result
}

/// Jump a seed forward by `n` steps: `seed * a^n (mod 2^46)`.
pub fn lcg_jump(seed: f64, a: f64, n: u64) -> f64 {
    let mut s = seed;
    randlc(&mut s, lcg_pow(a, n));
    if n == 0 {
        seed
    } else {
        s
    }
}

/// A stateful convenience wrapper over `randlc`.
#[derive(Debug, Clone, Copy)]
pub struct NpbRng {
    x: f64,
    a: f64,
}

impl NpbRng {
    pub fn new(seed: f64, mult: f64) -> Self {
        NpbRng { x: seed, a: mult }
    }

    /// Default NPB stream.
    pub fn npb_default() -> Self {
        Self::new(DEFAULT_SEED, DEFAULT_MULT)
    }

    /// Next uniform deviate in (0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        randlc(&mut self.x, self.a)
    }

    /// Current raw state (the 46-bit value as f64).
    pub fn state(&self) -> f64 {
        self.x
    }

    /// Replace the raw state.
    pub fn set_state(&mut self, x: f64) {
        self.x = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_exact_powers() {
        assert_eq!(R23, 2f64.powi(-23));
        assert_eq!(T23, 2f64.powi(23));
        assert_eq!(R46, 2f64.powi(-46));
        assert_eq!(T46, 2f64.powi(46));
    }

    #[test]
    fn deviates_are_in_unit_interval_and_state_is_integral() {
        let mut x = DEFAULT_SEED;
        for _ in 0..10_000 {
            let u = randlc(&mut x, DEFAULT_MULT);
            assert!(u > 0.0 && u < 1.0);
            assert_eq!(x, x.trunc(), "state must remain an integer < 2^46");
            assert!(x < T46);
        }
    }

    #[test]
    fn matches_integer_lcg() {
        // The double-split arithmetic must agree with exact u64 modular
        // arithmetic: x' = a*x mod 2^46.
        let mut x = DEFAULT_SEED;
        let mut xi: u64 = DEFAULT_SEED as u64;
        const M: u64 = 1 << 46;
        for _ in 0..1000 {
            randlc(&mut x, DEFAULT_MULT);
            xi = ((xi as u128 * DEFAULT_MULT as u128) % M as u128) as u64;
            assert_eq!(x as u64, xi);
        }
    }

    #[test]
    fn vranlc_equals_repeated_randlc() {
        let mut x1 = DEFAULT_SEED;
        let mut x2 = DEFAULT_SEED;
        let mut buf = vec![0.0; 64];
        vranlc(&mut x1, DEFAULT_MULT, &mut buf);
        for v in &buf {
            assert_eq!(*v, randlc(&mut x2, DEFAULT_MULT));
        }
        assert_eq!(x1, x2);
    }

    #[test]
    fn lcg_pow_matches_stepping() {
        for n in [0u64, 1, 2, 3, 7, 100, 65_536] {
            let jumped = lcg_jump(DEFAULT_SEED, DEFAULT_MULT, n);
            let mut stepped = DEFAULT_SEED;
            for _ in 0..n {
                randlc(&mut stepped, DEFAULT_MULT);
            }
            assert_eq!(jumped, stepped, "jump of {n} steps diverged");
        }
    }

    #[test]
    fn jump_is_additive() {
        let a = lcg_jump(DEFAULT_SEED, DEFAULT_MULT, 1000);
        let b = lcg_jump(lcg_jump(DEFAULT_SEED, DEFAULT_MULT, 400), DEFAULT_MULT, 600);
        assert_eq!(a, b);
    }

    #[test]
    fn rng_wrapper_matches_free_functions() {
        let mut rng = NpbRng::npb_default();
        let mut x = DEFAULT_SEED;
        for _ in 0..100 {
            assert_eq!(rng.next_f64(), randlc(&mut x, DEFAULT_MULT));
        }
    }
}
