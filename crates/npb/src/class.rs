//! NPB problem classes and per-kernel parameter tables.
//!
//! Parameters follow NPB 3.x (`npbparams.h` as emitted by `setparams`).
//! Class C is what the paper benchmarks; the smaller classes let the full
//! pipeline run (and be verified) on laptop-scale hosts.

use std::fmt;

/// The NPB problem classes used in this reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Class {
    S,
    W,
    A,
    B,
    C,
}

impl Class {
    pub const ALL: [Class; 5] = [Class::S, Class::W, Class::A, Class::B, Class::C];

    /// Parse a single-letter class name.
    pub fn parse(s: &str) -> Option<Class> {
        match s.trim().to_ascii_uppercase().as_str() {
            "S" => Some(Class::S),
            "W" => Some(Class::W),
            "A" => Some(Class::A),
            "B" => Some(Class::B),
            "C" => Some(Class::C),
            _ => None,
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Class::S => 'S',
            Class::W => 'W',
            Class::A => 'A',
            Class::B => 'B',
            Class::C => 'C',
        };
        write!(f, "{c}")
    }
}

/// CG parameters: matrix order `na`, nonzeros per generated row `nonzer`,
/// outer iterations `niter`, eigenvalue shift, and the official zeta
/// verification value.
#[derive(Debug, Clone, Copy)]
pub struct CgParams {
    pub class: Class,
    pub na: usize,
    pub nonzer: usize,
    pub niter: usize,
    pub shift: f64,
    /// Official NPB verification value for zeta.
    pub zeta_verify: f64,
}

impl CgParams {
    pub fn for_class(class: Class) -> CgParams {
        match class {
            Class::S => CgParams {
                class,
                na: 1400,
                nonzer: 7,
                niter: 15,
                shift: 10.0,
                zeta_verify: 8.597_177_507_864_8,
            },
            Class::W => CgParams {
                class,
                na: 7000,
                nonzer: 8,
                niter: 15,
                shift: 12.0,
                zeta_verify: 10.362_595_087_124,
            },
            Class::A => CgParams {
                class,
                na: 14000,
                nonzer: 11,
                niter: 15,
                shift: 20.0,
                zeta_verify: 17.130_235_054_029,
            },
            Class::B => CgParams {
                class,
                na: 75000,
                nonzer: 13,
                niter: 75,
                shift: 60.0,
                zeta_verify: 22.712_745_482_631,
            },
            Class::C => CgParams {
                class,
                na: 150_000,
                nonzer: 15,
                niter: 75,
                shift: 110.0,
                zeta_verify: 28.973_605_592_845,
            },
        }
    }

    /// CG inner iterations per `conj_grad` call (fixed in NPB).
    pub const CGITMAX: usize = 25;

    /// Storage bound for the assembled matrix, `nz` in the Fortran:
    /// `na * (nonzer + 1) * (nonzer + 1)`.
    pub fn nz(&self) -> usize {
        self.na * (self.nonzer + 1) * (self.nonzer + 1)
    }
}

/// EP parameters: `2^m` random pairs.
#[derive(Debug, Clone, Copy)]
pub struct EpParams {
    pub class: Class,
    /// log2 of the number of pairs.
    pub m: u32,
    /// Official sums for verification (sx, sy).
    pub sx_verify: f64,
    pub sy_verify: f64,
}

impl EpParams {
    pub fn for_class(class: Class) -> EpParams {
        // Verification sums from NPB 3.x ep.f / ep.c.
        match class {
            Class::S => EpParams {
                class,
                m: 24,
                sx_verify: -3.247_834_652_034_74e3,
                sy_verify: -6.958_407_078_382_297e3,
            },
            Class::W => EpParams {
                class,
                m: 25,
                sx_verify: -2.863_319_731_645_753e3,
                sy_verify: -6.320_053_679_109_499e3,
            },
            Class::A => EpParams {
                class,
                m: 28,
                sx_verify: -4.295_875_165_629_892e3,
                sy_verify: -1.580_732_573_678_431e4,
            },
            Class::B => EpParams {
                class,
                m: 30,
                sx_verify: 4.033_815_542_441_498e4,
                sy_verify: -2.660_669_192_809_235e4,
            },
            Class::C => EpParams {
                class,
                m: 32,
                sx_verify: 4.764_367_927_995_374e4,
                sy_verify: -8.084_072_988_043_731e4,
            },
        }
    }

    /// Batch size exponent (`mk` in ep.f): pairs are generated in batches of
    /// `2^MK` so the stream can be jumped per batch.
    pub const MK: u32 = 16;

    /// Number of Gaussian-deviate annuli counted (`nq`).
    pub const NQ: usize = 10;

    /// Total pairs.
    pub fn pairs(&self) -> u64 {
        1u64 << self.m
    }

    /// Number of batches (`nn = 2^(m - mk)`), at least 1.
    pub fn batches(&self) -> u64 {
        1u64 << self.m.saturating_sub(Self::MK)
    }

    /// Pairs per batch (`nk = 2^mk`, capped at the total).
    pub fn batch_pairs(&self) -> u64 {
        self.pairs() / self.batches()
    }
}

/// IS parameters.
#[derive(Debug, Clone, Copy)]
pub struct IsParams {
    pub class: Class,
    /// log2 of the number of keys.
    pub total_keys_log2: u32,
    /// log2 of the key range.
    pub max_key_log2: u32,
    /// log2 of the bucket count.
    pub num_buckets_log2: u32,
}

impl IsParams {
    pub fn for_class(class: Class) -> IsParams {
        match class {
            Class::S => IsParams {
                class,
                total_keys_log2: 16,
                max_key_log2: 11,
                num_buckets_log2: 9,
            },
            Class::W => IsParams {
                class,
                total_keys_log2: 20,
                max_key_log2: 16,
                num_buckets_log2: 10,
            },
            Class::A => IsParams {
                class,
                total_keys_log2: 23,
                max_key_log2: 19,
                num_buckets_log2: 10,
            },
            Class::B => IsParams {
                class,
                total_keys_log2: 25,
                max_key_log2: 21,
                num_buckets_log2: 10,
            },
            Class::C => IsParams {
                class,
                total_keys_log2: 27,
                max_key_log2: 23,
                num_buckets_log2: 10,
            },
        }
    }

    /// Ranking iterations (fixed at 10 in NPB).
    pub const MAX_ITERATIONS: usize = 10;

    pub fn num_keys(&self) -> usize {
        1usize << self.total_keys_log2
    }

    pub fn max_key(&self) -> usize {
        1usize << self.max_key_log2
    }

    pub fn num_buckets(&self) -> usize {
        1usize << self.num_buckets_log2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_parse_roundtrip() {
        for c in Class::ALL {
            assert_eq!(Class::parse(&c.to_string()), Some(c));
        }
        assert_eq!(Class::parse("s"), Some(Class::S));
        assert_eq!(Class::parse("D"), None);
    }

    #[test]
    fn cg_class_c_matches_paper() {
        let p = CgParams::for_class(Class::C);
        assert_eq!(p.na, 150_000);
        assert_eq!(p.nonzer, 15);
        assert_eq!(p.niter, 75);
        assert_eq!(p.shift, 110.0);
    }

    #[test]
    fn ep_batching_is_consistent() {
        for c in Class::ALL {
            let p = EpParams::for_class(c);
            assert_eq!(p.batches() * p.batch_pairs(), p.pairs());
        }
    }

    #[test]
    fn is_sizes_grow_with_class() {
        let mut prev = 0;
        for c in Class::ALL {
            let p = IsParams::for_class(c);
            assert!(p.num_keys() > prev);
            prev = p.num_keys();
            assert!(p.max_key() <= p.num_keys() * 256);
        }
    }
}
