//! EP — the Embarrassingly Parallel kernel (NPB `ep.f`).
//!
//! Generates `2^m` pairs of uniform deviates, maps them to Gaussian
//! deviates with the Marsaglia polar method, and accumulates the sums
//! `sx = Σ X`, `sy = Σ Y` plus counts of deviates per concentric square
//! annulus. The random stream is jumped per batch of `2^16` pairs so
//! batches are independent — which is what makes the kernel
//! embarrassingly parallel.
//!
//! The parallel version mirrors the OpenMP reference (and the paper's Zig
//! port, §V-B): a parallel region over batches with `sx`/`sy` in a region
//! **reduction**, per-thread private deviate buffers (the `threadprivate`
//! arrays of the Fortran), and the annulus counts merged with **atomic**
//! updates.

use zomp::prelude::*;
use zomp::workshare::for_loop;

use crate::class::{Class, EpParams};
use crate::randlc::{randlc, vranlc, DEFAULT_MULT};

/// EP's own stream seed (`s = 271828183` in ep.f — CG and IS use 314159265).
pub const EP_SEED: f64 = 271_828_183.0;
use crate::verify::{close, VerifyStatus};

/// Result of an EP run.
#[derive(Debug, Clone, PartialEq)]
pub struct EpResult {
    /// Sum of Gaussian X deviates.
    pub sx: f64,
    /// Sum of Gaussian Y deviates.
    pub sy: f64,
    /// Deviates per annulus `l = floor(max(|X|, |Y|))`, `l < 10`.
    pub q: [f64; EpParams::NQ],
    /// Total Gaussian pairs produced (`Σ q`).
    pub gc: f64,
    /// Pairs attempted.
    pub pairs: u64,
}

impl EpResult {
    /// Verify against the official NPB sums (1e-8 relative tolerance).
    pub fn verify(&self, params: &EpParams) -> VerifyStatus {
        const EPSILON: f64 = 1e-8;
        if close(self.sx, params.sx_verify, EPSILON) && close(self.sy, params.sy_verify, EPSILON) {
            VerifyStatus::Verified
        } else {
            VerifyStatus::Failed
        }
    }
}

/// Per-batch accumulator.
#[derive(Debug, Clone, Copy, Default)]
struct BatchSums {
    sx: f64,
    sy: f64,
    q: [f64; EpParams::NQ],
}

/// Compute the starting seed for batch `kk` (0-based): `s * an^kk` where
/// `an = a^(2 * nk)`. This is the literal binary-exponentiation loop from
/// `ep.f` (labels 110/130), kept step-for-step for auditability.
fn batch_seed(kk: u64, an: f64) -> f64 {
    // ep.f computes kk = k_offset + k with k_offset = -1 and k from 1, so
    // `kk` here is already the 0-based batch index.
    let mut kk = kk;
    let mut t1 = EP_SEED;
    let mut t2 = an;
    for _ in 0..100 {
        let ik = kk / 2;
        if 2 * ik != kk {
            randlc(&mut t1, t2);
        }
        if ik == 0 {
            break;
        }
        let t = t2;
        randlc(&mut t2, t);
        kk = ik;
    }
    t1
}

/// Precompute `an = a^(2*nk) (mod 2^46)` by `mk + 1` squarings (ep.f label
/// 100 loop).
fn compute_an(mk: u32) -> f64 {
    let mut t1 = DEFAULT_MULT;
    for _ in 0..=mk {
        let t = t1;
        randlc(&mut t1, t);
    }
    t1
}

/// Process one batch of `nk` pairs starting from the jumped seed; `x` is the
/// caller's scratch buffer of `2 * nk` deviates (the threadprivate array).
fn run_batch(kk: u64, an: f64, nk: u64, x: &mut [f64], sums: &mut BatchSums) {
    debug_assert_eq!(x.len() as u64, 2 * nk);
    let mut t1 = batch_seed(kk, an);
    vranlc(&mut t1, DEFAULT_MULT, x);
    for i in 0..nk as usize {
        let x1 = 2.0 * x[2 * i] - 1.0;
        let x2 = 2.0 * x[2 * i + 1] - 1.0;
        let t1 = x1 * x1 + x2 * x2;
        if t1 <= 1.0 {
            let t2 = (-2.0 * t1.ln() / t1).sqrt();
            let t3 = x1 * t2;
            let t4 = x2 * t2;
            let l = t3.abs().max(t4.abs()) as usize;
            sums.q[l] += 1.0;
            sums.sx += t3;
            sums.sy += t4;
        }
    }
}

fn finish(total: BatchSums, pairs: u64) -> EpResult {
    let gc = total.q.iter().sum();
    EpResult {
        sx: total.sx,
        sy: total.sy,
        q: total.q,
        gc,
        pairs,
    }
}

/// Serial reference implementation.
pub fn run_serial(params: &EpParams) -> EpResult {
    let nk = params.batch_pairs();
    let an = compute_an(nk.trailing_zeros());
    let mut x = vec![0.0f64; 2 * nk as usize];
    let mut total = BatchSums::default();
    for kk in 0..params.batches() {
        run_batch(kk, an, nk, &mut x, &mut total);
    }
    finish(total, params.pairs())
}

/// Parallel implementation over the zomp runtime.
///
/// Batches are distributed with the default static schedule; `sx`/`sy` use
/// the region reduction protocol; annulus counts are merged with atomic
/// adds (deterministic because counts are integers stored in f64). The
/// result is bitwise independent of the thread count for `q`/`gc` and
/// differs from serial only in the floating-point summation order of
/// `sx`/`sy` (each batch's partials are exact per batch; cross-batch
/// addition reassociates), which the NPB 1e-8 tolerance absorbs.
pub fn run_parallel(params: &EpParams, threads: usize) -> EpResult {
    let nk = params.batch_pairs();
    let an = compute_an(nk.trailing_zeros());
    let batches = params.batches();

    let sx_cell = RedCell::<f64>::new(RedOp::Add, 0.0);
    let sy_cell = RedCell::<f64>::new(RedOp::Add, 0.0);
    let q_cells: Vec<AtomicF64> = (0..EpParams::NQ).map(|_| AtomicF64::default()).collect();

    fork_call(Parallel::new().num_threads(threads), |ctx| {
        // Private (per-thread) scratch and partials — the threadprivate
        // arrays of the Fortran version.
        let mut x = vec![0.0f64; 2 * nk as usize];
        let mut local = BatchSums::default();
        for_loop(
            ctx,
            Schedule::static_default(),
            0..batches as i64,
            true, // region join is the barrier
            |kk| run_batch(kk as u64, an, nk, &mut x, &mut local),
        );
        sx_cell.combine(local.sx);
        sy_cell.combine(local.sy);
        for (cell, q) in q_cells.iter().zip(local.q) {
            cell.fetch_add(q); // `omp atomic` on each annulus counter
        }
    });

    let mut total = BatchSums {
        sx: sx_cell.get(),
        sy: sy_cell.get(),
        q: [0.0; EpParams::NQ],
    };
    for (slot, cell) in total.q.iter_mut().zip(&q_cells) {
        *slot = cell.load();
    }
    finish(total, params.pairs())
}

/// A reduced-size parameter set for tests and laptop-scale demos
/// (self-verified only — no official sums exist for it).
pub fn custom_params(m: u32) -> EpParams {
    EpParams {
        class: Class::S,
        m,
        sx_verify: f64::NAN,
        sy_verify: f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_seed_zero_is_initial_seed() {
        let an = compute_an(EpParams::MK);
        assert_eq!(batch_seed(0, an), EP_SEED);
    }

    #[test]
    fn batch_seeds_match_sequential_stream() {
        // Seed of batch kk must equal stepping the stream 2*nk*kk times.
        let nk = 1u64 << 6;
        let an = compute_an(6);
        let mut s = EP_SEED;
        for kk in 0..5u64 {
            assert_eq!(batch_seed(kk, an), s, "batch {kk}");
            for _ in 0..2 * nk {
                randlc(&mut s, DEFAULT_MULT);
            }
        }
    }

    #[test]
    fn gaussian_counts_are_plausible() {
        let p = custom_params(16);
        let r = run_serial(&p);
        // Polar method acceptance rate is π/4 ≈ 0.785.
        let rate = r.gc / r.pairs as f64;
        assert!(
            (rate - std::f64::consts::FRAC_PI_4).abs() < 0.01,
            "rate {rate}"
        );
        // Nearly all deviates land in the first few annuli.
        assert!(r.q[0] > r.q[3]);
        assert_eq!(r.gc, r.q.iter().sum::<f64>());
    }

    #[test]
    fn parallel_matches_serial_counts_exactly() {
        let p = custom_params(18);
        let s = run_serial(&p);
        for threads in [1, 2, 4] {
            let par = run_parallel(&p, threads);
            assert_eq!(
                par.q, s.q,
                "annulus counts must be exact at {threads} threads"
            );
            assert_eq!(par.gc, s.gc);
            assert!(close(par.sx, s.sx, 1e-12), "sx {} vs {}", par.sx, s.sx);
            assert!(close(par.sy, s.sy, 1e-12));
        }
    }

    #[test]
    #[ignore = "runs the official class S problem (~2^24 pairs); enable for full verification"]
    fn class_s_official_verification() {
        let p = EpParams::for_class(Class::S);
        let r = run_serial(&p);
        assert_eq!(
            r.verify(&p),
            VerifyStatus::Verified,
            "sx={:e} sy={:e} (expected sx={:e} sy={:e})",
            r.sx,
            r.sy,
            p.sx_verify,
            p.sy_verify
        );
    }
}

#[cfg(test)]
mod class_official_tests {
    use super::*;

    #[test]
    #[ignore = "class W runs 2^25 pairs; run with --release -- --ignored"]
    fn class_w_parallel_verifies_official() {
        let p = EpParams::for_class(Class::W);
        let r = run_parallel(&p, 4);
        assert_eq!(
            r.verify(&p),
            VerifyStatus::Verified,
            "sx={:e} sy={:e} (expected sx={:e} sy={:e})",
            r.sx,
            r.sy,
            p.sx_verify,
            p.sy_verify
        );
    }
}
