//! Sparse matrix generation — port of `makea`/`sprnvc`/`vecset`/`sparse`
//! from NPB `cg.f`.
//!
//! The matrix is a sum of geometrically weighted outer products of random
//! sparse vectors, plus `rcond·I − shift·I` on the diagonal, giving a
//! symmetric positive-definite matrix with condition number ≈ `1/rcond`
//! whose largest eigenvalue the benchmark then estimates. The construction
//! consumes the NPB random stream in a fixed order, so the official zeta
//! verification values pin this port bit-for-bit to the Fortran.
//!
//! Internally the port keeps the Fortran's 1-based indexing (index 0
//! unused) so every line can be audited against `cg.f`; the final
//! [`SparseMatrix`] is normalised to 0-based CSR.

// The ports keep the Fortran loop shapes for line-by-line auditability.
#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

use crate::class::CgParams;
use crate::randlc::{randlc, DEFAULT_MULT, DEFAULT_SEED};

/// A CSR sparse matrix (0-based).
#[derive(Debug, Clone)]
pub struct SparseMatrix {
    pub n: usize,
    /// Row pointers, `len == n + 1`.
    pub rowstr: Vec<usize>,
    /// Column indices, `len == nnz`.
    pub colidx: Vec<usize>,
    /// Values, `len == nnz`.
    pub a: Vec<f64>,
}

impl SparseMatrix {
    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.a.len()
    }

    /// `y = A·x` (serial helper for tests and the serial solver).
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        for j in 0..self.n {
            let mut sum = 0.0;
            for k in self.rowstr[j]..self.rowstr[j + 1] {
                sum += self.a[k] * x[self.colidx[k]];
            }
            y[j] = sum;
        }
    }
}

/// `icnvrt(x, ipwr2) = int(ipwr2 * x)` from cg.f.
#[inline]
fn icnvrt(x: f64, ipwr2: usize) -> usize {
    (ipwr2 as f64 * x) as usize
}

/// Port of `sprnvc`: generate `nz` distinct random (index, value) pairs with
/// indices in `1..=n`. `nn1` is the smallest power of two ≥ n.
fn sprnvc(n: usize, nz: usize, nn1: usize, tran: &mut f64, out: &mut Vec<(usize, f64)>) {
    out.clear();
    while out.len() < nz {
        let vecelt = randlc(tran, DEFAULT_MULT);
        // Generate an integer index uniform on (0, n-1] via the next
        // deviate; indices beyond n or already generated are rejected.
        let vecloc = randlc(tran, DEFAULT_MULT);
        let i = icnvrt(vecloc, nn1) + 1;
        if i > n {
            continue;
        }
        if out.iter().any(|&(idx, _)| idx == i) {
            continue;
        }
        out.push((i, vecelt));
    }
}

/// Port of `vecset`: force element `i` of the sparse vector to `val`,
/// appending it if absent.
fn vecset(v: &mut Vec<(usize, f64)>, i: usize, val: f64) {
    for entry in v.iter_mut() {
        if entry.0 == i {
            entry.1 = val;
            return;
        }
    }
    v.push((i, val));
}

/// Generate the CG matrix for `params`. This consumes the random stream
/// exactly as `cg.f` does, **including** the single `randlc` call the main
/// program makes before `makea` (the initial `zeta = randlc(tran, amult)`).
pub fn makea(params: &CgParams) -> SparseMatrix {
    let n = params.na;
    let nonzer = params.nonzer;
    let nz = params.nz();
    let rcond = 0.1f64;
    let shift = params.shift;

    let mut tran = DEFAULT_SEED;
    // cg.f main: zeta = randlc(tran, amult) precedes the makea call.
    let _zeta0 = randlc(&mut tran, DEFAULT_MULT);

    // nn1: smallest power of two >= n.
    let mut nn1 = 1usize;
    while nn1 < n {
        nn1 *= 2;
    }

    // Generate the n random sparse vectors (the [col, value] triples).
    // arow(i) = length of vector i; acol/aelt its entries.
    let mut arow = vec![0usize; n + 1];
    let mut acol = vec![Vec::new(); n + 1];
    let mut aelt = vec![Vec::new(); n + 1];
    let mut scratch: Vec<(usize, f64)> = Vec::with_capacity(nonzer + 1);
    for iouter in 1..=n {
        sprnvc(n, nonzer, nn1, &mut tran, &mut scratch);
        vecset(&mut scratch, iouter, 0.5);
        arow[iouter] = scratch.len();
        acol[iouter] = scratch.iter().map(|&(i, _)| i).collect();
        aelt[iouter] = scratch.iter().map(|&(_, v)| v).collect();
    }

    sparse(n, nz, nonzer, &arow, &acol, &aelt, rcond, shift)
}

/// Port of `sparse`: assemble the CSR matrix from the outer-product triples.
#[allow(clippy::too_many_arguments)]
fn sparse(
    n: usize,
    nz: usize,
    nonzer: usize,
    arow: &[usize],
    acol: &[Vec<usize>],
    aelt: &[Vec<f64>],
    rcond: f64,
    shift: f64,
) -> SparseMatrix {
    let nrows = n;

    // Count the triples contributing to each row (1-based rowstr, with
    // rowstr[j] meaning "start of row j" after the prefix sum).
    let mut rowstr = vec![0usize; nrows + 2];
    for i in 1..=n {
        for &col in &acol[i] {
            let j = col + 1; // j = acol - firstrow + 2 with firstrow = 1
            rowstr[j] += arow[i];
        }
    }
    rowstr[1] = 1;
    for j in 2..=nrows + 1 {
        rowstr[j] += rowstr[j - 1];
    }
    let nza_total = rowstr[nrows + 1] - 1;
    assert!(
        nza_total <= nz,
        "space for matrix elements exceeded: nza = {nza_total}, nzmax = {nz} (nonzer = {nonzer})"
    );

    // Work arrays (1-based; slot 0 unused).
    let mut v = vec![0.0f64; nz + 1];
    let mut iv = vec![0usize; nz + 1];
    let mut nzloc = vec![0usize; nrows + 1];

    // Assemble, summing duplicates and keeping each row's columns sorted.
    let mut size = 1.0f64;
    let ratio = rcond.powf(1.0 / n as f64);
    for i in 1..=n {
        for nza in 0..arow[i] {
            let j = acol[i][nza];
            let scale = size * aelt[i][nza];
            for nzrow in 0..arow[i] {
                let jcol = acol[i][nzrow];
                let mut va = aelt[i][nzrow] * scale;
                // Add rcond·I − shift·I on the diagonal (bounds the smallest
                // eigenvalue from below by rcond and shifts the spectrum).
                if jcol == j && j == i {
                    va += rcond - shift;
                }
                // Insert (jcol, va) into row j's slot range, ordered by
                // column, accumulating duplicates.
                let mut k = rowstr[j];
                loop {
                    debug_assert!(
                        k < rowstr[j + 1],
                        "internal error in sparse: row {j} overflow at outer {i}"
                    );
                    if iv[k] > jcol {
                        // Shift the tail right one slot to insert here.
                        let mut kk = rowstr[j + 1] - 2;
                        while kk >= k {
                            if iv[kk] > 0 {
                                v[kk + 1] = v[kk];
                                iv[kk + 1] = iv[kk];
                            }
                            if kk == 0 {
                                break;
                            }
                            kk -= 1;
                        }
                        iv[k] = jcol;
                        v[k] = 0.0;
                        break;
                    } else if iv[k] == 0 {
                        iv[k] = jcol;
                        break;
                    } else if iv[k] == jcol {
                        // Duplicate: will be squeezed out in compression.
                        nzloc[j] += 1;
                        break;
                    }
                    k += 1;
                }
                v[k] += va;
            }
        }
        size *= ratio;
    }

    // Compress out the duplicate slots.
    for j in 2..=nrows {
        nzloc[j] += nzloc[j - 1];
    }

    let mut a_out = vec![0.0f64; nza_total + 1];
    let mut col_out = vec![0usize; nza_total + 1];
    for j in 1..=nrows {
        let j1 = if j > 1 { rowstr[j] - nzloc[j - 1] } else { 1 };
        let j2 = rowstr[j + 1] - nzloc[j] - 1;
        let mut nza = rowstr[j];
        for k in j1..=j2 {
            a_out[k] = v[nza];
            col_out[k] = iv[nza];
            nza += 1;
        }
    }
    for j in 2..=nrows + 1 {
        rowstr[j] -= nzloc[j - 1];
    }
    let nnz = rowstr[nrows + 1] - 1;

    // Convert to 0-based CSR.
    let mut rowstr0 = Vec::with_capacity(nrows + 1);
    for j in 1..=nrows + 1 {
        rowstr0.push(rowstr[j] - 1);
    }
    let colidx0: Vec<usize> = col_out[1..=nnz].iter().map(|&c| c - 1).collect();
    let a0: Vec<f64> = a_out[1..=nnz].to_vec();

    SparseMatrix {
        n,
        rowstr: rowstr0,
        colidx: colidx0,
        a: a0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{CgParams, Class};

    fn tiny_params() -> CgParams {
        // A miniature problem reusing the class S recipe.
        CgParams {
            class: Class::S,
            na: 64,
            nonzer: 3,
            niter: 5,
            shift: 5.0,
            zeta_verify: f64::NAN,
        }
    }

    #[test]
    fn csr_is_well_formed() {
        let m = makea(&tiny_params());
        assert_eq!(m.rowstr.len(), m.n + 1);
        assert_eq!(m.rowstr[0], 0);
        assert_eq!(*m.rowstr.last().unwrap(), m.nnz());
        for w in m.rowstr.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for &c in &m.colidx {
            assert!(c < m.n);
        }
    }

    #[test]
    fn columns_sorted_and_unique_within_rows() {
        let m = makea(&tiny_params());
        for j in 0..m.n {
            let cols = &m.colidx[m.rowstr[j]..m.rowstr[j + 1]];
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "row {j} columns not strictly increasing");
            }
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        let m = makea(&tiny_params());
        // Dense check is fine at this size.
        let mut dense = vec![vec![0.0; m.n]; m.n];
        for j in 0..m.n {
            for k in m.rowstr[j]..m.rowstr[j + 1] {
                dense[j][m.colidx[k]] = m.a[k];
            }
        }
        for r in 0..m.n {
            for c in 0..m.n {
                assert!(
                    (dense[r][c] - dense[c][r]).abs() < 1e-12,
                    "asymmetry at ({r},{c}): {} vs {}",
                    dense[r][c],
                    dense[c][r]
                );
            }
        }
    }

    #[test]
    fn diagonal_is_present_and_dominant_sign() {
        let m = makea(&tiny_params());
        for j in 0..m.n {
            let row = m.rowstr[j]..m.rowstr[j + 1];
            let diag = row
                .clone()
                .find(|&k| m.colidx[k] == j)
                .expect("diagonal entry missing");
            // Diagonal carries the -shift: strongly negative for tiny sizes.
            assert!(m.a[diag] < 0.0, "row {j} diagonal {}", m.a[diag]);
        }
    }

    #[test]
    fn class_s_nnz_matches_reference() {
        // NPB class S assembles 78148 nonzeros; this pins the whole random
        // construction (stream order, rejection, duplicate handling).
        let m = makea(&CgParams::for_class(Class::S));
        assert_eq!(m.n, 1400);
        assert_eq!(m.nnz(), 78_148);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = makea(&tiny_params());
        let x: Vec<f64> = (0..m.n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y = vec![0.0; m.n];
        m.spmv(&x, &mut y);
        for j in 0..m.n {
            let mut want = 0.0;
            for k in m.rowstr[j]..m.rowstr[j + 1] {
                want += m.a[k] * x[m.colidx[k]];
            }
            assert_eq!(y[j], want);
        }
    }
}
