//! CG — the Conjugate Gradient kernel (NPB `cg.f`).
//!
//! Estimates the largest eigenvalue of a sparse symmetric positive-definite
//! matrix with the inverse power method: `niter` outer iterations, each
//! solving `A z = x` approximately with 25 unpreconditioned CG iterations,
//! then updating `zeta = shift + 1 / (x·z)` and normalising `x = z/‖z‖`.
//!
//! The paper ports the `conj_grad` subroutine (≈95 % of runtime) to Zig;
//! [`solve::conj_grad_serial`] and [`solve::conj_grad_parallel`] are the
//! corresponding Rust implementations, the latter running one parallel
//! region containing the full CG iteration with worksharing loops,
//! `nowait`, and loop reductions — the same OpenMP surface §V-A lists.

pub mod makea;
pub mod solve;

use crate::class::CgParams;
use crate::verify::{close, VerifyStatus};
use makea::SparseMatrix;
use solve::CgWorkspace;

/// Result of a CG benchmark run.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// Final zeta estimate.
    pub zeta: f64,
    /// Residual norm of the last conj_grad call.
    pub rnorm: f64,
    /// zeta after each timed outer iteration.
    pub zeta_history: Vec<f64>,
}

impl CgResult {
    /// Verify against the official NPB zeta (1e-10 relative tolerance).
    pub fn verify(&self, params: &CgParams) -> VerifyStatus {
        if close(self.zeta, params.zeta_verify, 1e-10) {
            VerifyStatus::Verified
        } else {
            VerifyStatus::Failed
        }
    }
}

/// How to execute the `conj_grad` kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Serial,
    /// Parallel over the zomp runtime with the given team size.
    Parallel(usize),
}

/// Full benchmark driver: generate the matrix, run the warm-up iteration,
/// then `niter` timed iterations. Returns the result together with the
/// generated matrix (reusable across runs).
pub fn run(params: &CgParams, mode: Mode) -> CgResult {
    let mat = makea::makea(params);
    run_with_matrix(params, &mat, mode)
}

/// Benchmark driver over a pre-generated matrix.
pub fn run_with_matrix(params: &CgParams, mat: &SparseMatrix, mode: Mode) -> CgResult {
    let n = params.na;
    let mut x = vec![1.0f64; n];
    let mut ws = CgWorkspace::new(n);

    // Untimed warm-up iteration (cg.f "one iteration for startup").
    let _ = conj_grad(mat, &x, &mut ws, mode);
    let (nt1, nt2) = norms(&x, &ws.z);
    scale_into(&mut x, &ws.z, nt2);
    let _ = nt1;

    // Reset for the timed section.
    x.iter_mut().for_each(|v| *v = 1.0);
    let mut zeta = 0.0;
    let mut rnorm = 0.0;
    let mut history = Vec::with_capacity(params.niter);

    for _it in 0..params.niter {
        rnorm = conj_grad(mat, &x, &mut ws, mode);
        let (nt1, nt2) = norms(&x, &ws.z);
        zeta = params.shift + 1.0 / nt1;
        history.push(zeta);
        scale_into(&mut x, &ws.z, nt2);
    }

    CgResult {
        zeta,
        rnorm,
        zeta_history: history,
    }
}

fn conj_grad(mat: &SparseMatrix, x: &[f64], ws: &mut CgWorkspace, mode: Mode) -> f64 {
    match mode {
        Mode::Serial => solve::conj_grad_serial(mat, x, ws),
        Mode::Parallel(threads) => solve::conj_grad_parallel(mat, x, ws, threads),
    }
}

/// `norm_temp1 = x·z`, `norm_temp2 = 1/‖z‖` — the main-loop norms, kept
/// serial as in the paper's setup where only `conj_grad` was ported.
fn norms(x: &[f64], z: &[f64]) -> (f64, f64) {
    let mut nt1 = 0.0;
    let mut nt2 = 0.0;
    for (xj, zj) in x.iter().zip(z) {
        nt1 += xj * zj;
        nt2 += zj * zj;
    }
    (nt1, 1.0 / nt2.sqrt())
}

/// `x = norm_temp2 * z`.
fn scale_into(x: &mut [f64], z: &[f64], s: f64) {
    for (xj, zj) in x.iter_mut().zip(z) {
        *xj = s * zj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{CgParams, Class};

    #[test]
    fn class_s_serial_verifies_official() {
        let params = CgParams::for_class(Class::S);
        let result = run(&params, Mode::Serial);
        assert_eq!(
            result.verify(&params),
            VerifyStatus::Verified,
            "zeta = {:.13} (expected {:.13}), rnorm = {:e}",
            result.zeta,
            params.zeta_verify,
            result.rnorm
        );
    }

    #[test]
    fn class_s_parallel_verifies_official() {
        let params = CgParams::for_class(Class::S);
        let mat = makea::makea(&params);
        for threads in [2, 4] {
            let result = run_with_matrix(&params, &mat, Mode::Parallel(threads));
            assert_eq!(
                result.verify(&params),
                VerifyStatus::Verified,
                "zeta = {:.13} at {threads} threads",
                result.zeta
            );
        }
    }

    #[test]
    fn zeta_converges_monotonically_to_shift_plus_lambda() {
        let params = CgParams::for_class(Class::S);
        let result = run(&params, Mode::Serial);
        // Power-method estimates settle: last two history entries agree to
        // far tighter than the verification tolerance.
        let h = &result.zeta_history;
        let last = h[h.len() - 1];
        let prev = h[h.len() - 2];
        assert!(
            (last - prev).abs() < 1e-11,
            "zeta history not settled: {prev} -> {last}"
        );
        // The shifted spectrum puts zeta between 0 and the shift.
        assert!(
            last > 0.0 && last < params.shift,
            "zeta {last} outside (0, shift)"
        );
    }

    #[test]
    fn serial_and_parallel_agree_tightly() {
        let params = CgParams::for_class(Class::S);
        let mat = makea::makea(&params);
        let s = run_with_matrix(&params, &mat, Mode::Serial);
        let p = run_with_matrix(&params, &mat, Mode::Parallel(3));
        // Different reduction orders; agreement well inside verification
        // tolerance is required.
        assert!(
            (s.zeta - p.zeta).abs() < 1e-11,
            "serial {} vs parallel {}",
            s.zeta,
            p.zeta
        );
    }
}

#[cfg(test)]
mod class_w_tests {
    use super::*;
    use crate::class::{CgParams, Class};

    #[test]
    #[ignore = "class W takes a few seconds in debug; run with --release -- --ignored"]
    fn class_w_serial_verifies_official() {
        let params = CgParams::for_class(Class::W);
        let result = run(&params, Mode::Serial);
        assert_eq!(
            result.verify(&params),
            crate::verify::VerifyStatus::Verified,
            "zeta = {:.13} (expected {:.13})",
            result.zeta,
            params.zeta_verify
        );
    }

    #[test]
    #[ignore = "class A takes ~10s in debug; run with --release -- --ignored"]
    fn class_a_parallel_verifies_official() {
        let params = CgParams::for_class(Class::A);
        let result = run(&params, Mode::Parallel(4));
        assert_eq!(
            result.verify(&params),
            crate::verify::VerifyStatus::Verified,
            "zeta = {:.13} (expected {:.13})",
            result.zeta,
            params.zeta_verify
        );
    }
}
