//! The `conj_grad` subroutine: serial reference and the zomp-parallel port.
//!
//! 25 iterations of unpreconditioned CG on `A z = x`, returning
//! `rnorm = ‖x − A z‖`. The parallel version is one parallel region
//! containing every loop — the structure of the NPB OpenMP reference and of
//! the paper's Zig port: worksharing loops with the default static schedule,
//! loop reductions for the dot products, `nowait` where a loop's output is
//! not read before the next barrier, and redundant per-thread scalar updates
//! of `alpha`/`beta` (cheaper than broadcasting).

// The ports keep the Fortran loop shapes for line-by-line auditability.
#![allow(clippy::needless_range_loop)]

use zomp::prelude::*;
use zomp::reduction::RedCell;
use zomp::workshare::{for_loop, for_reduce};

use super::makea::SparseMatrix;
use crate::class::CgParams;

/// Scratch vectors reused across `conj_grad` calls (the Fortran work
/// arrays). `z` holds the solution estimate after each call.
#[derive(Debug, Clone)]
pub struct CgWorkspace {
    pub z: Vec<f64>,
    pub p: Vec<f64>,
    pub q: Vec<f64>,
    pub r: Vec<f64>,
}

impl CgWorkspace {
    pub fn new(n: usize) -> Self {
        CgWorkspace {
            z: vec![0.0; n],
            p: vec![0.0; n],
            q: vec![0.0; n],
            r: vec![0.0; n],
        }
    }
}

/// Serial `conj_grad`, line-for-line with `cg.f`.
pub fn conj_grad_serial(mat: &SparseMatrix, x: &[f64], ws: &mut CgWorkspace) -> f64 {
    let n = mat.n;
    let (z, p, q, r) = (&mut ws.z, &mut ws.p, &mut ws.q, &mut ws.r);

    // Initialise: q = z = 0, r = p = x.
    let mut rho = 0.0;
    for j in 0..n {
        q[j] = 0.0;
        z[j] = 0.0;
        r[j] = x[j];
        p[j] = r[j];
    }
    // rho = r·r.
    for j in 0..n {
        rho += r[j] * r[j];
    }

    for _cgit in 0..CgParams::CGITMAX {
        // q = A p.
        for j in 0..n {
            let mut sum = 0.0;
            for k in mat.rowstr[j]..mat.rowstr[j + 1] {
                sum += mat.a[k] * p[mat.colidx[k]];
            }
            q[j] = sum;
        }
        // d = p·q.
        let mut d = 0.0;
        for j in 0..n {
            d += p[j] * q[j];
        }
        let alpha = rho / d;
        let rho0 = rho;
        // z += alpha p ; r -= alpha q ; rho = r·r (fused, as in the OpenMP
        // reference).
        rho = 0.0;
        for j in 0..n {
            z[j] += alpha * p[j];
            r[j] -= alpha * q[j];
            rho += r[j] * r[j];
        }
        let beta = rho / rho0;
        // p = r + beta p.
        for j in 0..n {
            p[j] = r[j] + beta * p[j];
        }
    }

    // rnorm = ‖x − A z‖ (r reused for A z).
    for j in 0..n {
        let mut sum = 0.0;
        for k in mat.rowstr[j]..mat.rowstr[j + 1] {
            sum += mat.a[k] * z[mat.colidx[k]];
        }
        r[j] = sum;
    }
    let mut sum = 0.0;
    for j in 0..n {
        let d = x[j] - r[j];
        sum += d * d;
    }
    sum.sqrt()
}

/// Parallel `conj_grad` over the zomp runtime.
///
/// One `fork_call` region spans the whole solve. Scalar reduction results
/// (`rho` per iteration, `d` per iteration, the final `rnorm` sum) live in
/// pre-allocated [`RedCell`]s — one per reduction instance — so every thread
/// reads a fully-combined value after the loop's implicit barrier with no
/// shared-scalar reset races.
pub fn conj_grad_parallel(
    mat: &SparseMatrix,
    x: &[f64],
    ws: &mut CgWorkspace,
    threads: usize,
) -> f64 {
    let n = mat.n as i64;

    // Shared vectors: written disjointly by the worksharing loops.
    let z = SharedSlice::new(&mut ws.z);
    let p = SharedSlice::new(&mut ws.p);
    let q = SharedSlice::new(&mut ws.q);
    let r = SharedSlice::new(&mut ws.r);

    // One reduction cell per instance: rho at init + per CG iteration,
    // d per iteration, and the final norm.
    let rho_init = RedCell::<f64>::new(RedOp::Add, 0.0);
    let rho_iter: Vec<RedCell<f64>> = (0..CgParams::CGITMAX)
        .map(|_| RedCell::new(RedOp::Add, 0.0))
        .collect();
    let d_iter: Vec<RedCell<f64>> = (0..CgParams::CGITMAX)
        .map(|_| RedCell::new(RedOp::Add, 0.0))
        .collect();
    let norm_cell = RedCell::<f64>::new(RedOp::Add, 0.0);

    fork_call(Parallel::new().num_threads(threads), |ctx| {
        // Initialise q = z = 0, r = p = x (nowait: the next loop reads the
        // same rows this thread just wrote — same static partition — but
        // `rho` must see every r element only after its own loop, and the
        // static block for this thread covers exactly the r entries it
        // reads, so no barrier is needed between them).
        for_loop(ctx, Schedule::static_default(), 0..n, true, |j| {
            let j = j as usize;
            q.set(j, 0.0);
            z.set(j, 0.0);
            r.set(j, x[j]);
            p.set(j, x[j]);
        });
        // rho = r·r. Same static partition reads only this thread's rows;
        // the barrier after it publishes both r/p and rho.
        for_reduce(
            ctx,
            Schedule::static_default(),
            0..n,
            false,
            &rho_init,
            |j, acc| {
                let rj = r.get(j as usize);
                *acc += rj * rj;
            },
        );
        let mut rho = rho_init.get();

        for cgit in 0..CgParams::CGITMAX {
            // q = A p (reads p everywhere: the preceding barrier ordered
            // it). nowait: d's loop reads only this thread's q rows.
            for_loop(ctx, Schedule::static_default(), 0..n, true, |j| {
                let j = j as usize;
                let mut sum = 0.0;
                for k in mat.rowstr[j]..mat.rowstr[j + 1] {
                    sum += mat.a[k] * p.get(mat.colidx[k]);
                }
                q.set(j, sum);
            });
            // d = p·q with its implicit barrier.
            for_reduce(
                ctx,
                Schedule::static_default(),
                0..n,
                false,
                &d_iter[cgit],
                |j, acc| {
                    let j = j as usize;
                    *acc += p.get(j) * q.get(j);
                },
            );
            // Every thread computes alpha redundantly (private scalar).
            let d = d_iter[cgit].get();
            let alpha = rho / d;
            let rho0 = rho;
            // z += alpha p ; r -= alpha q ; rho = r·r, fused.
            for_reduce(
                ctx,
                Schedule::static_default(),
                0..n,
                false,
                &rho_iter[cgit],
                |j, acc| {
                    let j = j as usize;
                    z.set(j, z.get(j) + alpha * p.get(j));
                    let rj = r.get(j) - alpha * q.get(j);
                    r.set(j, rj);
                    *acc += rj * rj;
                },
            );
            rho = rho_iter[cgit].get();
            let beta = rho / rho0;
            // p = r + beta p. The barrier here publishes p for the next
            // iteration's q = A p, which reads p at arbitrary columns.
            for_loop(ctx, Schedule::static_default(), 0..n, false, |j| {
                let j = j as usize;
                p.set(j, r.get(j) + beta * p.get(j));
            });
        }

        // rnorm: r = A z (needs whole z: published by the last loop's
        // barrier), then sum (x - r)^2.
        for_loop(ctx, Schedule::static_default(), 0..n, true, |j| {
            let j = j as usize;
            let mut sum = 0.0;
            for k in mat.rowstr[j]..mat.rowstr[j + 1] {
                sum += mat.a[k] * z.get(mat.colidx[k]);
            }
            r.set(j, sum);
        });
        for_reduce(
            ctx,
            Schedule::static_default(),
            0..n,
            false,
            &norm_cell,
            |j, acc| {
                let j = j as usize;
                let d = x[j] - r.get(j);
                *acc += d * d;
            },
        );
    });

    norm_cell.get().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::makea::makea;
    use crate::class::{CgParams, Class};

    fn tiny() -> (CgParams, SparseMatrix) {
        let p = CgParams {
            class: Class::S,
            na: 200,
            nonzer: 4,
            niter: 3,
            shift: 8.0,
            zeta_verify: f64::NAN,
        };
        let m = makea(&p);
        (p, m)
    }

    #[test]
    fn cg_reduces_residual() {
        let (_p, m) = tiny();
        let x = vec![1.0; m.n];
        let mut ws = CgWorkspace::new(m.n);
        let rnorm = conj_grad_serial(&m, &x, &mut ws);
        // ‖x‖ = sqrt(200) ≈ 14; CG on a well-conditioned SPD system must
        // shrink the residual by many orders of magnitude.
        assert!(rnorm < 1e-8, "rnorm = {rnorm}");
    }

    #[test]
    fn solution_satisfies_system() {
        let (_p, m) = tiny();
        let x = vec![1.0; m.n];
        let mut ws = CgWorkspace::new(m.n);
        conj_grad_serial(&m, &x, &mut ws);
        let mut az = vec![0.0; m.n];
        m.spmv(&ws.z, &mut az);
        for j in 0..m.n {
            assert!(
                (az[j] - x[j]).abs() < 1e-7,
                "row {j}: {} vs {}",
                az[j],
                x[j]
            );
        }
    }

    #[test]
    fn parallel_matches_serial_closely() {
        let (_p, m) = tiny();
        let x = vec![1.0; m.n];
        let mut ws_s = CgWorkspace::new(m.n);
        let rnorm_s = conj_grad_serial(&m, &x, &mut ws_s);
        for threads in [1, 2, 4] {
            let mut ws_p = CgWorkspace::new(m.n);
            let rnorm_p = conj_grad_parallel(&m, &x, &mut ws_p, threads);
            assert!(
                (rnorm_s - rnorm_p).abs() < 1e-10,
                "rnorm serial {rnorm_s} vs parallel {rnorm_p} at {threads} threads"
            );
            for j in 0..m.n {
                assert!(
                    (ws_s.z[j] - ws_p.z[j]).abs() < 1e-9,
                    "z[{j}] serial {} vs parallel {}",
                    ws_s.z[j],
                    ws_p.z[j]
                );
            }
        }
    }

    #[test]
    fn one_thread_parallel_is_bitwise_serial() {
        // With one thread the loop partitions and reduction order are
        // identical to serial, so results must match exactly.
        let (_p, m) = tiny();
        let x = vec![1.0; m.n];
        let mut ws_s = CgWorkspace::new(m.n);
        let mut ws_p = CgWorkspace::new(m.n);
        let rs = conj_grad_serial(&m, &x, &mut ws_s);
        let rp = conj_grad_parallel(&m, &x, &mut ws_p, 1);
        assert_eq!(rs, rp);
        assert_eq!(ws_s.z, ws_p.z);
    }
}
