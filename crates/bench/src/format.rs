//! Terminal rendering of tables and ASCII speedup figures.

use crate::experiments::Experiment;

/// Render the paper-style runtime table with model-vs-paper columns.
pub fn render_table(e: &Experiment) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} — Runtime of Zig and {} NPB {} benchmark (class C), modelled vs paper\n",
        e.table_id, e.reference_lang, e.kernel
    ));
    out.push_str(&format!(
        "{:>8} | {:>13} {:>13} | {:>13} {:>13}\n",
        "Threads",
        "Zig model(s)",
        "Zig paper(s)",
        format!("{} model(s)", e.reference_lang),
        format!("{} paper(s)", e.reference_lang),
    ));
    out.push_str(&"-".repeat(72));
    out.push('\n');
    for (i, &t) in e.threads.iter().enumerate() {
        out.push_str(&format!(
            "{:>8} | {:>13.2} {:>13.2} | {:>13.2} {:>13.2}\n",
            t,
            e.zig_model.points[i].seconds,
            e.zig_paper[i],
            e.reference_model.points[i].seconds,
            e.reference_paper[i],
        ));
    }
    out
}

/// Render the speedup figure (Fig. 3/4/5) as an ASCII chart: both modelled
/// curves plus the paper's published speedups for reference.
pub fn render_figure(e: &Experiment) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} — Speedup against number of threads, NPB {} class C (Zig vs {})\n",
        e.figure_id, e.kernel, e.reference_lang
    ));
    let zig_paper_s: Vec<f64> = e.zig_paper.iter().map(|s| e.zig_paper[0] / s).collect();
    let ref_paper_s: Vec<f64> = e
        .reference_paper
        .iter()
        .map(|s| e.reference_paper[0] / s)
        .collect();
    let max = e
        .zig_model
        .points
        .iter()
        .map(|p| p.speedup)
        .chain(zig_paper_s.iter().copied())
        .chain(ref_paper_s.iter().copied())
        .fold(1.0f64, f64::max);
    const WIDTH: f64 = 56.0;
    let bar = |s: f64| "#".repeat(((s / max) * WIDTH).round().max(1.0) as usize);
    for (i, &t) in e.threads.iter().enumerate() {
        let zm = e.zig_model.points[i].speedup;
        let rm = e.reference_model.points[i].speedup;
        out.push_str(&format!("{t:>4} Zig model {:>6.1}x |{}\n", zm, bar(zm)));
        out.push_str(&format!(
            "{:>4} {:<3} model {:>6.1}x |{}\n",
            "",
            short(&e.reference_lang),
            rm,
            bar(rm)
        ));
        out.push_str(&format!(
            "     (paper: Zig {:.1}x, {} {:.1}x)\n",
            zig_paper_s[i],
            short(&e.reference_lang),
            ref_paper_s[i]
        ));
    }
    out
}

fn short(lang: &str) -> &str {
    match lang {
        "Fortran" => "Ftn",
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ep_experiment;

    #[test]
    fn table_renders_all_rows() {
        let e = ep_experiment();
        let t = render_table(&e);
        for threads in [1, 2, 16, 32, 64, 96, 128] {
            assert!(
                t.contains(&format!("\n{threads:>8} |"))
                    || t.starts_with(&format!("{threads:>8} |")),
                "missing row {threads} in:\n{t}"
            );
        }
    }

    #[test]
    fn figure_renders_bars() {
        let e = ep_experiment();
        let f = render_figure(&e);
        assert!(f.contains("Figure 4"));
        assert!(f.contains('#'));
        assert!(f.contains("paper:"));
    }
}
