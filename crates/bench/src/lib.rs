//! # zomp-bench — regenerating the paper's evaluation
//!
//! Two complementary harnesses:
//!
//! * The **`paper-figures` binary** regenerates every evaluation artefact of
//!   the paper — Tables I–III and Figures 3–5 — from the ARCHER2 machine
//!   model (`archer-sim`), printing modelled values side by side with the
//!   paper's published numbers. See `cargo run -p zomp-bench --bin
//!   paper-figures -- --help`.
//! * The **Criterion benches** (`benches/`) measure the *real* runtime and
//!   kernels on the host at laptop-scale classes: runtime primitive costs
//!   (fork, barrier, schedules, reductions — the ablations DESIGN.md calls
//!   out) and serial-vs-parallel kernel runs.
//!
//! The [`paper`] module is the transcription of the paper's published
//! numbers; [`experiments`] runs the model and pairs each artefact with its
//! reference.

pub mod experiments;
pub mod format;
pub mod meta;
pub mod paper;
pub mod ports;
