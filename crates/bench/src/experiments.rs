//! Run the modelled experiments and pair them with the paper's numbers.

use archer_sim::lang::{profile, Kernel, Lang};
use archer_sim::{Machine, ScalingCurve};
use npb::class::{CgParams, EpParams, IsParams};
use npb::model::{cg_model, ep_model, estimate_nnz, is_model, KernelModel};
use npb::Class;
use serde::Serialize;

use crate::paper::{PaperTable, THREADS};

/// One evaluation artefact: a modelled table/figure next to its published
/// reference.
#[derive(Debug, Clone, Serialize)]
pub struct Experiment {
    pub table_id: String,
    pub figure_id: String,
    pub kernel: String,
    pub reference_lang: String,
    pub threads: Vec<usize>,
    pub zig_model: ScalingCurve,
    pub reference_model: ScalingCurve,
    pub zig_paper: Vec<f64>,
    pub reference_paper: Vec<f64>,
}

impl Experiment {
    /// Largest relative error of the modelled Zig runtimes against the
    /// paper's, across all thread counts.
    pub fn max_rel_error_zig(&self) -> f64 {
        self.zig_model
            .points
            .iter()
            .zip(&self.zig_paper)
            .map(|(p, &want)| ((p.seconds - want) / want).abs())
            .fold(0.0, f64::max)
    }

    /// Do the headline claims hold in the model?
    /// (who wins serially, and the approximate factor)
    pub fn serial_winner_matches(&self) -> bool {
        let model_ratio = self.reference_model.points[0].seconds / self.zig_model.points[0].seconds;
        let paper_ratio = self.reference_paper[0] / self.zig_paper[0];
        (model_ratio > 1.0) == (paper_ratio > 1.0)
    }
}

fn build(kernel: Kernel, table: PaperTable, fig: &str, model: &KernelModel) -> Experiment {
    let machine = Machine::archer2();
    let ref_lang = match table.reference_lang {
        "Fortran" => Lang::Fortran,
        _ => Lang::C,
    };
    let zig_model = ScalingCurve::run(
        format!("{} / Zig (model)", table.kernel),
        model,
        &machine,
        &profile(Lang::Zig, kernel),
        &THREADS,
    );
    let reference_model = ScalingCurve::run(
        format!("{} / {} (model)", table.kernel, table.reference_lang),
        model,
        &machine,
        &profile(ref_lang, kernel),
        &THREADS,
    );
    Experiment {
        table_id: table.id.to_string(),
        figure_id: fig.to_string(),
        kernel: table.kernel.to_string(),
        reference_lang: table.reference_lang.to_string(),
        threads: THREADS.to_vec(),
        zig_model,
        reference_model,
        zig_paper: table.zig_seconds.to_vec(),
        reference_paper: table.reference_seconds.to_vec(),
    }
}

/// Table I / Figure 3: CG class C.
pub fn cg_experiment() -> Experiment {
    let p = CgParams::for_class(Class::C);
    let model = cg_model(&p, estimate_nnz(&p));
    build(Kernel::Cg, crate::paper::table1(), "Figure 3", &model)
}

/// Table II / Figure 4: EP class C.
pub fn ep_experiment() -> Experiment {
    let p = EpParams::for_class(Class::C);
    let model = ep_model(&p);
    build(Kernel::Ep, crate::paper::table2(), "Figure 4", &model)
}

/// Table III / Figure 5: IS class C.
pub fn is_experiment() -> Experiment {
    let p = IsParams::for_class(Class::C);
    let model = is_model(&p);
    build(Kernel::Is, crate::paper::table3(), "Figure 5", &model)
}

/// All three experiments.
pub fn all_experiments() -> Vec<Experiment> {
    vec![cg_experiment(), ep_experiment(), is_experiment()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_winners_match_everywhere() {
        for e in all_experiments() {
            assert!(
                e.serial_winner_matches(),
                "{}: serial winner differs from paper",
                e.table_id
            );
        }
    }

    #[test]
    fn modelled_serial_times_within_35_percent() {
        for e in all_experiments() {
            let model = e.zig_model.points[0].seconds;
            let paper = e.zig_paper[0];
            let err = ((model - paper) / paper).abs();
            assert!(
                err < 0.35,
                "{}: serial model {model:.1}s vs paper {paper:.1}s",
                e.table_id
            );
        }
    }

    #[test]
    fn scaling_shapes_match_paper() {
        // CG: large jump between 64 and 128 in both model and paper.
        let cg = cg_experiment();
        let s64 = cg.zig_model.at(64).unwrap().speedup;
        let s128 = cg.zig_model.at(128).unwrap().speedup;
        assert!(s128 / s64 > 2.0, "CG model jump: {s64:.1} -> {s128:.1}");

        // EP: near-linear at 128.
        let ep = ep_experiment();
        assert!(ep.zig_model.at(128).unwrap().speedup > 100.0);

        // IS: saturation — speedup at 128 less than half of linear.
        let is = is_experiment();
        let s = is.zig_model.at(128).unwrap().speedup;
        assert!(s < 64.0 && s > 20.0, "IS model speedup at 128: {s:.1}");
    }
}
