//! The three NPB kernel ports in the Zag mini-language, shared by the
//! measurement binaries (`vm-bench` for throughput, `tier-bench` for
//! execution-tier residency). Each port exposes an entry function
//! (`matvec` / `ep` / `rank`) invoked host-side with prebuilt arrays,
//! exactly as the integration tests drive them.

pub const ZAG_MATVEC: &str = r#"
fn matvec(n: i64, rowstr: []i64, colidx: []i64, a: []f64, p: []f64, q: []f64,
          reps: i64, nthreads: i64) void {
    //$omp parallel num_threads(nthreads) shared(rowstr, colidx, a, p, q) firstprivate(n, reps)
    {
        var rep: i64 = 0;
        while (rep < reps) : (rep += 1) {
            var j: i64 = 0;
            //$omp while schedule(dynamic, 64) private(k, s)
            while (j < n) : (j += 1) {
                s = 0.0;
                k = rowstr[j];
                while (k < rowstr[j + 1]) : (k += 1) {
                    s = s + a[k] * p[colidx[k]];
                }
                q[j] = s;
            }
        }
    }
}
"#;

pub const ZAG_EP: &str = r#"
fn randlc(x: *f64, a: f64) f64 {
    var r23: f64 = 0.00000011920928955078125;
    var t23: f64 = 8388608.0;
    var r46: f64 = r23 * r23;
    var t46: f64 = t23 * t23;

    var t1: f64 = r23 * a;
    var a1: f64 = @intToFloat(@floatToInt(t1));
    var a2: f64 = a - t23 * a1;

    t1 = r23 * x.*;
    var x1: f64 = @intToFloat(@floatToInt(t1));
    var x2: f64 = x.* - t23 * x1;
    t1 = a1 * x2 + a2 * x1;
    var t2: f64 = @intToFloat(@floatToInt(r23 * t1));
    var zz: f64 = t1 - t23 * t2;
    var t3: f64 = t23 * zz + a2 * x2;
    var t4: f64 = @intToFloat(@floatToInt(r46 * t3));
    x.* = t3 - t46 * t4;
    return r46 * x.*;
}

fn compute_an(a: f64, mk: i64) f64 {
    var t1: f64 = a;
    var i: i64 = 0;
    while (i < mk + 1) : (i += 1) {
        var t: f64 = t1;
        _ = randlc(&t1, t);
    }
    return t1;
}

fn batch_seed(s: f64, an: f64, kk0: i64) f64 {
    var t1: f64 = s;
    var t2: f64 = an;
    var kk: i64 = kk0;
    var i: i64 = 0;
    while (i < 100) : (i += 1) {
        var ik: i64 = kk / 2;
        if (2 * ik != kk) {
            _ = randlc(&t1, t2);
        }
        if (ik == 0) {
            break;
        }
        var t: f64 = t2;
        _ = randlc(&t2, t);
        kk = ik;
    }
    return t1;
}

fn ep(m: i64, mk: i64, nthreads: i64, q: []f64) f64 {
    var a: f64 = 1220703125.0;
    var s: f64 = 271828183.0;
    var nk: i64 = 1;
    var i0: i64 = 0;
    while (i0 < mk) : (i0 += 1) {
        nk = nk * 2;
    }
    var batches: i64 = 1;
    var i1: i64 = 0;
    while (i1 < m - mk) : (i1 += 1) {
        batches = batches * 2;
    }
    var an: f64 = compute_an(a, mk);

    var sx: f64 = 0.0;
    var sy: f64 = 0.0;

    //$omp parallel num_threads(nthreads) shared(q) firstprivate(a, s, an, nk, batches) reduction(+: sx, sy)
    {
        var x: []f64 = @allocF(2 * nk);
        var qq: []f64 = @allocF(10);

        var k: i64 = 0;
        //$omp while schedule(static)
        while (k < batches) : (k += 1) {
            var t1: f64 = batch_seed(s, an, k);
            var j: i64 = 0;
            while (j < 2 * nk) : (j += 1) {
                x[j] = randlc(&t1, a);
            }
            var i: i64 = 0;
            while (i < nk) : (i += 1) {
                var x1: f64 = 2.0 * x[2 * i] - 1.0;
                var x2: f64 = 2.0 * x[2 * i + 1] - 1.0;
                var tt: f64 = x1 * x1 + x2 * x2;
                if (tt <= 1.0) {
                    var t2: f64 = @sqrt(-2.0 * @log(tt) / tt);
                    var t3: f64 = x1 * t2;
                    var t4: f64 = x2 * t2;
                    var l: i64 = @floatToInt(@max(@abs(t3), @abs(t4)));
                    qq[l] = qq[l] + 1.0;
                    sx = sx + t3;
                    sy = sy + t4;
                }
            }
        }

        var b: i64 = 0;
        while (b < 10) : (b += 1) {
            //$omp atomic
            q[b] += qq[b];
        }
    }
    return sx * 1000000.0 + sy;
}
"#;

pub const ZAG_RANK: &str = r#"
fn rank(keys: []i64, nkeys: i64, maxlog: i64, nblog: i64,
        counts: []i64, starts: []i64, buff2: []i64, ranks: []i64,
        nthreads: i64) void {
    var nb: i64 = 1;
    var b0: i64 = 0;
    while (b0 < nblog) : (b0 += 1) {
        nb = nb * 2;
    }
    var shiftbits: i64 = maxlog - nblog;
    var shiftdiv: i64 = 1;
    var s0: i64 = 0;
    while (s0 < shiftbits) : (s0 += 1) {
        shiftdiv = shiftdiv * 2;
    }

    //$omp parallel num_threads(nthreads) shared(keys, counts, starts, buff2, ranks) firstprivate(nkeys, nb, shiftdiv)
    {
        var tid: i64 = omp.get_thread_num();
        var nth: i64 = omp.get_num_threads();

        var local: []i64 = @allocI(nb);
        var i: i64 = 0;
        //$omp while schedule(static) nowait
        while (i < nkeys) : (i += 1) {
            var b: i64 = keys[i] / shiftdiv;
            local[b] = local[b] + 1;
        }
        var c: i64 = 0;
        while (c < nb) : (c += 1) {
            counts[tid * nb + c] = local[c];
        }
        //$omp barrier

        //$omp single
        {
            var acc: i64 = 0;
            var b1: i64 = 0;
            while (b1 < nb) : (b1 += 1) {
                starts[b1] = acc;
                var t: i64 = 0;
                while (t < nth) : (t += 1) {
                    acc = acc + counts[t * nb + b1];
                }
            }
            starts[nb] = acc;
        }
        var cursor: []i64 = @allocI(nb);
        var b2: i64 = 0;
        while (b2 < nb) : (b2 += 1) {
            var at: i64 = starts[b2];
            var t2: i64 = 0;
            while (t2 < tid) : (t2 += 1) {
                at = at + counts[t2 * nb + b2];
            }
            cursor[b2] = at;
        }

        var i2: i64 = 0;
        //$omp while schedule(static)
        while (i2 < nkeys) : (i2 += 1) {
            var key: i64 = keys[i2];
            var b3: i64 = key / shiftdiv;
            buff2[cursor[b3]] = key;
            cursor[b3] = cursor[b3] + 1;
        }

        var b4: i64 = 0;
        //$omp while schedule(static, 1) nowait
        while (b4 < nb) : (b4 += 1) {
            var keylo: i64 = b4 * shiftdiv;
            var keyhi: i64 = (b4 + 1) * shiftdiv;
            var st: i64 = starts[b4];
            var en: i64 = starts[b4 + 1];
            var k: i64 = keylo;
            while (k < keyhi) : (k += 1) {
                ranks[k] = 0;
            }
            var p: i64 = st;
            while (p < en) : (p += 1) {
                ranks[buff2[p]] = ranks[buff2[p]] + 1;
            }
            var acc2: i64 = st;
            var k2: i64 = keylo;
            while (k2 < keyhi) : (k2 += 1) {
                acc2 = acc2 + ranks[k2];
                ranks[k2] = acc2;
            }
        }
    }
}
"#;

/// Template-tier fixture: two typed loops whose shapes miss every fixed
/// bulk kernel (a 3-point float stencil and a squared-sum int reduction)
/// at a trip count large enough to measure the template speedup over the
/// `--opt=2` bytecode. The real shape-missed loops in the NPB ports (EP's
/// `nk`/`batches` setup doublings) run a handful of iterations, so the
/// smoke gate measures here instead.
pub const ZAG_TEMPLATE: &str = r#"
fn smooth(u: []f64, v: []f64, n: i64, reps: i64) f64 {
    var m: i64 = n - 1;
    var r: i64 = 0;
    while (r < reps) : (r += 1) {
        var i: i64 = 1;
        while (i < m) : (i += 1) {
            v[i] = 0.25 * u[i - 1] + 0.5 * u[i] + 0.25 * u[i + 1];
        }
    }
    return v[n / 2];
}

fn sumsq(x: []i64, n: i64, reps: i64) i64 {
    var acc: i64 = 0;
    var r: i64 = 0;
    while (r < reps) : (r += 1) {
        var i: i64 = 0;
        while (i < n) : (i += 1) {
            acc = acc + x[i] * x[i];
        }
    }
    return acc;
}
"#;
