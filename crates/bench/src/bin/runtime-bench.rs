//! Emit `BENCH_runtime.json`: median nanoseconds per runtime-primitive
//! operation on the host machine, for trajectory tracking across commits.
//!
//! Covers the four hot paths the contention-aware refactor touched —
//! region fork/join, barrier cycles, dynamic-dispatch chunk claims (both
//! the work-stealing decks and the legacy shared cursor, so the speedup is
//! recorded), and reduction merges (padded combining tree vs flat atomic).
//!
//! Usage: `cargo run --release -p zomp-bench --bin runtime-bench [-- OUT]`
//! (default output path `BENCH_runtime.json` in the current directory).

use std::hint::black_box;
use std::time::Instant;

use zomp::prelude::*;
use zomp::reduction::ReduceTree;
use zomp::schedule::{legacy::SharedCursorDispatch, DynamicDispatch};

/// Contending threads for every multi-thread measurement (the acceptance
/// configuration for the dispatch speedup).
const THREADS: usize = 4;
/// Samples per metric; the median damps scheduler noise on small hosts.
const SAMPLES: usize = 15;

/// Median ns/op over `SAMPLES` runs of `f`, where each run performs `ops`
/// operations.
fn median_ns_per_op(ops: u64, mut f: impl FnMut()) -> f64 {
    // One untimed warmup to populate caches and the hot team.
    f();
    let mut ns: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64 / ops as f64
        })
        .collect();
    ns.sort_by(|a, b| a.total_cmp(b));
    ns[ns.len() / 2]
}

fn bench_fork() -> f64 {
    const FORKS: u64 = 200;
    median_ns_per_op(FORKS, || {
        for _ in 0..FORKS {
            fork_call(Parallel::new().num_threads(THREADS), |ctx| {
                black_box(ctx.thread_num());
            });
        }
    })
}

fn bench_barrier() -> f64 {
    const CYCLES: u64 = 2000;
    median_ns_per_op(CYCLES, || {
        fork_call(Parallel::new().num_threads(THREADS), |ctx| {
            for _ in 0..CYCLES {
                ctx.barrier();
            }
        });
    })
}

/// ns per chunk claim, draining `trip` chunk-1 iterations with `THREADS`
/// std threads (no team machinery — isolates the dispatcher itself).
fn bench_dispatch_steal(trip: u64) -> f64 {
    median_ns_per_op(trip, || {
        let d = DynamicDispatch::new(trip, THREADS, Some(1));
        std::thread::scope(|s| {
            for tid in 0..THREADS {
                let d = &d;
                s.spawn(move || {
                    while let Some(r) = d.next(tid) {
                        black_box(r);
                    }
                });
            }
        });
    })
}

fn bench_dispatch_legacy(trip: u64) -> f64 {
    median_ns_per_op(trip, || {
        let d = SharedCursorDispatch::new(trip, 1);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let d = &d;
                s.spawn(move || {
                    while let Some(r) = d.next() {
                        black_box(r);
                    }
                });
            }
        });
    })
}

/// ns per reduction construct (tree build + `THREADS` merges + root
/// combine, plus the round barrier both variants share). Threads persist
/// across rounds so spawn cost stays out of the measurement.
fn bench_reduction_tree() -> f64 {
    const ROUNDS: usize = 200;
    median_ns_per_op(ROUNDS as u64, || {
        let cells: Vec<RedCell<f64>> = (0..ROUNDS).map(|_| RedCell::new(RedOp::Add, 0.0)).collect();
        let trees: Vec<ReduceTree<f64>> = (0..ROUNDS)
            .map(|_| ReduceTree::new(RedOp::Add, THREADS))
            .collect();
        let bar = std::sync::Barrier::new(THREADS);
        std::thread::scope(|s| {
            for tid in 0..THREADS {
                let (cells, trees, bar) = (&cells, &trees, &bar);
                s.spawn(move || {
                    for (tree, cell) in trees.iter().zip(cells.iter()) {
                        tree.merge(tid, tid as f64, cell);
                        bar.wait();
                    }
                });
            }
        });
        black_box(cells.last().map(|c| c.get()));
    })
}

/// Old flat path: every thread CASes the one reduction cell directly.
fn bench_reduction_flat() -> f64 {
    const ROUNDS: usize = 200;
    median_ns_per_op(ROUNDS as u64, || {
        let cells: Vec<RedCell<f64>> = (0..ROUNDS).map(|_| RedCell::new(RedOp::Add, 0.0)).collect();
        let bar = std::sync::Barrier::new(THREADS);
        std::thread::scope(|s| {
            for tid in 0..THREADS {
                let (cells, bar) = (&cells, &bar);
                s.spawn(move || {
                    for cell in cells.iter() {
                        cell.combine(tid as f64);
                        bar.wait();
                    }
                });
            }
        });
        black_box(cells.last().map(|c| c.get()));
    })
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_runtime.json".into());

    const TRIP: u64 = 1 << 17;
    eprintln!("measuring fork/join ({THREADS} threads)...");
    let fork_ns = bench_fork();
    eprintln!("measuring barrier cycle ({THREADS} threads)...");
    let barrier_ns = bench_barrier();
    eprintln!("measuring dispatch-next, work-stealing decks...");
    let steal_ns = bench_dispatch_steal(TRIP);
    eprintln!("measuring dispatch-next, legacy shared cursor...");
    let legacy_ns = bench_dispatch_legacy(TRIP);
    eprintln!("measuring reduction merge, combining tree...");
    let tree_ns = bench_reduction_tree();
    eprintln!("measuring reduction merge, flat atomic...");
    let flat_ns = bench_reduction_flat();

    // Chunk throughput ratio at the acceptance configuration: how many
    // times more chunk claims per second the decks sustain over the
    // shared cursor at 4 contending threads.
    let speedup = legacy_ns / steal_ns;

    let meta = zomp_bench::meta::json_object();
    let json = format!(
        "{{\n  \
         \"meta\": {meta},\n  \
         \"threads\": {THREADS},\n  \
         \"samples\": {SAMPLES},\n  \
         \"median_ns\": {{\n    \
         \"fork_join\": {fork_ns:.1},\n    \
         \"barrier_cycle\": {barrier_ns:.1},\n    \
         \"dispatch_next_steal\": {steal_ns:.2},\n    \
         \"dispatch_next_legacy\": {legacy_ns:.2},\n    \
         \"reduction_merge_tree\": {tree_ns:.1},\n    \
         \"reduction_merge_flat\": {flat_ns:.1}\n  \
         }},\n  \
         \"dispatch_chunk_throughput_ratio\": {speedup:.2}\n}}\n"
    );
    std::fs::write(&out, &json).expect("write BENCH_runtime.json");
    print!("{json}");
    eprintln!(
        "dispatch chunk throughput at {THREADS} threads: {speedup:.2}x the shared cursor -> {out}"
    );
}
