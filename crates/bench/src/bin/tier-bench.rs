//! Emit `BENCH_tiers.json`: execution-tier residency for the three NPB
//! kernel ports at the native tier (`--opt=3`) — per pragma loop, how
//! many iterations ran inside native bulk kernels vs through the
//! interpreter, with kernel-bail / deopt / quicken counts, plus the
//! machine-readable `kernel-missed` reasons for every compute loop the
//! matcher left interpreted, so a 0%-native loop self-explains in the
//! artefact. Since cross-call matching landed, EP's `randlc` fill and
//! pairs loops are native too (`lcg-fill` / `ep-pairs`); the residual
//! missed loops are serial setup code.
//!
//! Usage: `cargo run --release -p zomp-bench --bin tier-bench [-- OUT]`
//! (default output path `BENCH_tiers.json`), or `-- --smoke` for the CI
//! guard: run the CG and EP ports and exit nonzero unless each has a
//! majority-native pragma loop.

use std::sync::Arc;

use npb::cg::makea::makea;
use npb::class::{CgParams, Class};
use zomp::profile::{self, LoopTier};
use zomp_bench::ports::{ZAG_EP, ZAG_MATVEC, ZAG_RANK};
use zomp_vm::value::{ArrF, ArrI, Value};
use zomp_vm::{Backend, OptLevel, Vm};

const THREADS: i64 = 4;

fn to_arr_f(v: &[f64]) -> Arc<ArrF> {
    let a = Arc::new(ArrF::new(v.len()));
    for (i, &x) in v.iter().enumerate() {
        a.set(i as i64, x).unwrap();
    }
    a
}

fn to_arr_i(v: &[i64]) -> Arc<ArrI> {
    let a = Arc::new(ArrI::new(v.len()));
    for (i, &x) in v.iter().enumerate() {
        a.set(i as i64, x).unwrap();
    }
    a
}

/// Run `f` once with profiling on and fold the event stream into
/// per-loop tier rows (iteration-count descending, like `--profile`).
fn profiled(f: impl FnOnce()) -> Vec<LoopTier> {
    profile::reset();
    profile::enable();
    f();
    profile::disable();
    profile::tier_report()
}

fn run_cg() -> Vec<LoopTier> {
    let params = CgParams {
        class: Class::S,
        na: 1400,
        nonzer: 7,
        niter: 1,
        shift: 7.0,
        zeta_verify: f64::NAN,
    };
    let mat = makea(&params);
    let n = mat.n;
    let rowstr = to_arr_i(&mat.rowstr.iter().map(|&v| v as i64).collect::<Vec<_>>());
    let colidx = to_arr_i(&mat.colidx.iter().map(|&v| v as i64).collect::<Vec<_>>());
    let a = to_arr_f(&mat.a);
    let p = to_arr_f(&vec![1.0f64; n]);
    let q = Arc::new(ArrF::new(n));
    let vm = Vm::build(ZAG_MATVEC, Some("cg.zag"), Backend::Native, OptLevel::O3)
        .expect("compile matvec");
    profiled(|| {
        vm.call_function(
            "matvec",
            vec![
                Value::Int(n as i64),
                Value::ArrI(rowstr),
                Value::ArrI(colidx),
                Value::ArrF(a),
                Value::ArrF(p),
                Value::ArrF(q),
                Value::Int(3),
                Value::Int(THREADS),
            ],
        )
        .expect("run matvec");
    })
}

fn run_ep() -> Vec<LoopTier> {
    let vm = Vm::build(ZAG_EP, Some("ep.zag"), Backend::Native, OptLevel::O3).expect("compile ep");
    let q = Arc::new(ArrF::new(10));
    profiled(|| {
        vm.call_function(
            "ep",
            vec![
                Value::Int(13),
                Value::Int(10),
                Value::Int(THREADS),
                Value::ArrF(q),
            ],
        )
        .expect("run ep");
    })
}

fn run_is() -> Vec<LoopTier> {
    let maxlog = 11u32;
    let nblog = 5u32;
    let params = npb::is::custom_params(14, maxlog, nblog);
    let keys: Vec<i64> = npb::is::create_seq(&params)
        .iter()
        .map(|&k| k as i64)
        .collect();
    let nkeys = keys.len();
    let nb = 1usize << nblog;
    let keys_arr = to_arr_i(&keys);
    let counts = Arc::new(ArrI::new(THREADS as usize * nb));
    let starts = Arc::new(ArrI::new(nb + 1));
    let buff2 = Arc::new(ArrI::new(nkeys));
    let ranks = Arc::new(ArrI::new(1usize << maxlog));
    let vm =
        Vm::build(ZAG_RANK, Some("is.zag"), Backend::Native, OptLevel::O3).expect("compile rank");
    profiled(|| {
        vm.call_function(
            "rank",
            vec![
                Value::ArrI(keys_arr),
                Value::Int(nkeys as i64),
                Value::Int(maxlog as i64),
                Value::Int(nblog as i64),
                Value::ArrI(counts),
                Value::ArrI(starts),
                Value::ArrI(buff2),
                Value::ArrI(ranks),
                Value::Int(THREADS),
            ],
        )
        .expect("run rank");
    })
}

/// JSON-escape for the strings embedded below (labels, notes).
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The port's `kernel-missed` rows (machine-readable reason slugs from
/// `zomp_vm::remarks`), rendered as a JSON array.
fn missed_json(source: &str, unit: &str) -> String {
    let rows = zomp_vm::remarks::kernel_misses(source, unit).expect("remarks recompile");
    if rows.is_empty() {
        return "[]".into();
    }
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "        {{\"fn\": \"{}\", \"loop\": \"{}\", \"pc\": {}, \"reason\": \"{}\", \
                 \"note\": \"{}\"}}",
                esc(&r.func),
                esc(&r.label),
                r.head,
                r.reason,
                esc(&r.note),
            )
        })
        .collect();
    format!("[\n{}\n      ]", items.join(",\n"))
}

fn port_json(name: &str, tiers: &[LoopTier], missed: &str) -> String {
    let total: u64 = tiers.iter().map(|t| t.total_iters).sum();
    let native: u64 = tiers.iter().map(|t| t.native_iters).sum();
    let bails: u64 = tiers.iter().map(|t| t.bails).sum();
    let deopts: u64 = tiers.iter().map(|t| t.deopts).sum();
    let quickens: u64 = tiers.iter().map(|t| t.quickens).sum();
    let loops: Vec<String> = tiers
        .iter()
        .map(|t| {
            format!(
                "      {{\"loop\": \"{}\", \"spans\": {}, \"iters\": {}, \"native_iters\": {}, \
                 \"native_frac\": {:.4}, \"bails\": {}, \"deopts\": {}, \"quickens\": {}}}",
                t.label,
                t.dispatches,
                t.total_iters,
                t.native_iters,
                t.native_frac(),
                t.bails,
                t.deopts,
                t.quickens,
            )
        })
        .collect();
    format!(
        "    \"{name}\": {{\n      \"native_frac\": {:.4},\n      \"bails\": {bails},\n      \
         \"deopts\": {deopts},\n      \"quickens\": {quickens},\n      \"loops\": [\n{}\n      ],\n      \
         \"kernel_missed\": {missed}\n    }}",
        if total == 0 {
            0.0
        } else {
            native as f64 / total as f64
        },
        loops.join(",\n"),
    )
}

/// CI guard: the CG port's dynamic matvec loop, the EP port's batch
/// loop, AND the IS port's rank phases must be majority-native at
/// `--opt=3` — the bulk-kernel tier actually carrying the iterations is
/// the whole point of the tier (EP's loops only became claimable with
/// cross-call `randlc` matching, IS's with the fused rank pipeline); a
/// silent fall-back to the interpreter would still pass every
/// correctness test.
fn smoke() -> ! {
    let mut failed = false;
    for (name, tiers) in [("CG", run_cg()), ("EP", run_ep()), ("IS", run_is())] {
        for t in &tiers {
            eprintln!(
                "  [{name}] {} iters={} native={} ({:.1}%) bails={} deopts={}",
                t.label,
                t.total_iters,
                t.native_iters,
                100.0 * t.native_frac(),
                t.bails,
                t.deopts
            );
        }
        let ok = tiers
            .iter()
            .any(|t| t.total_iters > 0 && t.native_frac() > 0.5);
        if !ok {
            eprintln!("tier-bench --smoke: no {name} pragma loop is majority-native at --opt=3");
            failed = true;
        }
        // IS additionally gates the aggregate: every rank phase has a
        // fixed kernel now (histogram, scatter, the fused rank
        // pipeline), so a single majority-native loop is not enough —
        // the port as a whole must run mostly native.
        if name == "IS" {
            let total: u64 = tiers.iter().map(|t| t.total_iters).sum();
            let native: u64 = tiers.iter().map(|t| t.native_iters).sum();
            if total == 0 || (native as f64) / (total as f64) <= 0.5 {
                eprintln!(
                    "tier-bench --smoke: IS aggregate native residency {:.1}% is not a majority",
                    if total == 0 {
                        0.0
                    } else {
                        100.0 * native as f64 / total as f64
                    }
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!("tier-bench --smoke: ok");
    std::process::exit(0);
}

fn main() {
    // Shared execution flags (`--threads`, `--schedule`, `--trace`,
    // `--metrics`, `--safety`) go through the common builder; what is
    // left is `--smoke` or the output path.
    let mut cfg = zomp::ExecConfig::new();
    let mut arg: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match cfg.parse_flag(&a, &mut it) {
            Ok(true) => continue,
            Ok(false) => arg = Some(a),
            Err(e) => {
                eprintln!("tier-bench: {e}");
                std::process::exit(2);
            }
        }
    }
    cfg.apply_global();
    if arg.as_deref() == Some("--smoke") {
        smoke();
    }
    let out = arg.unwrap_or_else(|| "BENCH_tiers.json".into());

    eprintln!("cg matvec tier residency ({THREADS} threads, --opt=3)...");
    let cg = run_cg();
    eprintln!("ep batch tier residency...");
    let ep = run_ep();
    eprintln!("is rank tier residency...");
    let is = run_is();

    let meta = zomp_bench::meta::json_object();
    let json = format!(
        "{{\n  \"meta\": {meta},\n  \"threads\": {THREADS},\n  \"ports\": {{\n{},\n{},\n{}\n  }}\n}}\n",
        port_json("cg", &cg, &missed_json(ZAG_MATVEC, "cg.zag")),
        port_json("ep", &ep, &missed_json(ZAG_EP, "ep.zag")),
        port_json("is", &is, &missed_json(ZAG_RANK, "is.zag")),
    );
    std::fs::write(&out, &json).expect("write BENCH_tiers.json");
    print!("{json}");
    let frac = |tiers: &[LoopTier]| {
        let total: u64 = tiers.iter().map(|t| t.total_iters).sum();
        let native: u64 = tiers.iter().map(|t| t.native_iters).sum();
        if total == 0 {
            0.0
        } else {
            100.0 * native as f64 / total as f64
        }
    };
    eprintln!(
        "native iteration share: cg {:.1}%, ep {:.1}%, is {:.1}% -> {out}",
        frac(&cg),
        frac(&ep),
        frac(&is)
    );
}
