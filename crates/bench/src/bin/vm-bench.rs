//! Emit `BENCH_vm.json`: median nanoseconds per kernel iteration for the
//! three NPB-derived Zag kernels, run through both execution backends at
//! 1 and 4 threads — the `ast` tree-walker oracle plus the register VM at
//! every optimization level (`bytecode_o0` raw, `bytecode_o1`
//! fold/copy-prop/DSE + frame arena, `bytecode_o2` + superinstruction
//! fusion, static type specialization and quickening, `native` the
//! `--opt=3` bulk-kernel tier) — and, as the reference ceiling, the
//! hand-written Rust kernels from `crates/npb` (`npb_ns_per_op`, with
//! each tier's fraction of that throughput in `npb_throughput_frac_1t`).
//!
//! Kernels (the same ports the integration suite validates bit-for-bit):
//!   - `cg_matvec_dynamic` — CSR sparse matvec over an NPB `makea` matrix
//!     with `schedule(dynamic, 64)`; ops = nonzeros touched.
//!   - `ep_batch` — the 46-bit LCG Gaussian-pair batches with a `static`
//!     worksharing loop and region reductions; ops = pairs generated.
//!   - `is_histogram` — the bucketed counting rank (private histograms,
//!     `single` prefix sum, scatter, `static,1` bucket ranking); ops = keys.
//!
//! Usage: `cargo run --release -p zomp-bench --bin vm-bench [-- OUT]`
//! (default output path `BENCH_vm.json` in the current directory), or
//! `-- --smoke` for the CI guard: a fast single-thread CG matvec run that
//! exits nonzero unless `--opt=2` bytecode is at least 2x the tree-walker,
//! at least 2x the unoptimized (`--opt=0`, PR 3) bytecode, *and* the
//! native tier is at least 1.5x the `--opt=2` bytecode.

use std::sync::Arc;
use std::time::Instant;

use npb::cg::makea::makea;
use npb::class::{CgParams, Class};
use zomp_vm::value::{ArrF, ArrI, Value};
use zomp_vm::{Backend, OptLevel, Vm};

/// Samples per configuration; the median damps scheduler noise.
const SAMPLES: usize = 7;
/// Execution configurations measured for every kernel: the tree-walking
/// oracle, then the bytecode VM at each optimization level.
const CONFIGS: [(&str, Backend, OptLevel); 5] = [
    ("ast", Backend::Ast, OptLevel::O0),
    ("bytecode_o0", Backend::Bytecode, OptLevel::O0),
    ("bytecode_o1", Backend::Bytecode, OptLevel::O1),
    ("bytecode_o2", Backend::Bytecode, OptLevel::O2),
    ("native", Backend::Native, OptLevel::O3),
];
/// Team sizes measured for every kernel/backend pair.
const THREADS: [i64; 2] = [1, 4];

/// Repeated matvec sweeps inside one parallel region, so the fork cost is
/// amortised and the dynamic worksharing loop dominates the measurement.
const MATVEC_REPS: i64 = 3;

use zomp_bench::ports::{ZAG_EP, ZAG_MATVEC, ZAG_RANK, ZAG_TEMPLATE};

fn to_arr_f(v: &[f64]) -> Arc<ArrF> {
    let a = Arc::new(ArrF::new(v.len()));
    for (i, &x) in v.iter().enumerate() {
        a.set(i as i64, x).unwrap();
    }
    a
}

fn to_arr_i(v: &[i64]) -> Arc<ArrI> {
    let a = Arc::new(ArrI::new(v.len()));
    for (i, &x) in v.iter().enumerate() {
        a.set(i as i64, x).unwrap();
    }
    a
}

/// ns/op over `samples` runs of `f`, where each run performs `ops`
/// operations. One untimed warmup populates the hot team and caches.
/// `use_min` picks the estimator: the median is the honest reporting
/// statistic for `BENCH_vm.json`; the CI ratio gates use the minimum,
/// because interference on a loaded 1-core host only ever *adds* time —
/// best-observed keeps a gate ratio stable where a ratio of medians
/// wobbles ±30% run to run.
fn ns_per_op(samples: usize, ops: u64, use_min: bool, mut f: impl FnMut()) -> f64 {
    f();
    let mut ns: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64 / ops as f64
        })
        .collect();
    if use_min {
        return ns.iter().copied().fold(f64::INFINITY, f64::min);
    }
    ns.sort_by(|a, b| a.total_cmp(b));
    ns[ns.len() / 2]
}

fn median_ns_per_op(samples: usize, ops: u64, f: impl FnMut()) -> f64 {
    ns_per_op(samples, ops, false, f)
}

/// Per-kernel results: `ns[config][thread_config]`, `CONFIGS` x `THREADS`
/// order, plus the single-thread `crates/npb` hand-written Rust reference.
struct KernelResult {
    name: &'static str,
    ops_per_call: u64,
    ns: Vec<Vec<f64>>,
    /// Single-thread ns/op of the corresponding `crates/npb` Rust kernel
    /// — the throughput ceiling the VM tiers are measured against.
    npb_ns: f64,
}

impl KernelResult {
    fn config_ns(&self, label: &str) -> &[f64] {
        let i = CONFIGS.iter().position(|(l, _, _)| *l == label).unwrap();
        &self.ns[i]
    }
    /// Default-level bytecode speedup over the tree-walker, single thread.
    fn speedup_1t(&self) -> f64 {
        self.config_ns("ast")[0] / self.config_ns("bytecode_o2")[0]
    }
    /// `--opt=2` speedup over the raw (PR 3) bytecode, single thread.
    fn opt_speedup_1t(&self) -> f64 {
        self.config_ns("bytecode_o0")[0] / self.config_ns("bytecode_o2")[0]
    }
    /// Native-tier speedup over the `--opt=2` bytecode, single thread.
    fn native_speedup_1t(&self) -> f64 {
        self.config_ns("bytecode_o2")[0] / self.config_ns("native")[0]
    }
    /// Fraction of the `crates/npb` Rust kernel's throughput a tier
    /// reaches single-thread (1.0 = parity with hand-written Rust).
    fn npb_frac(&self, label: &str) -> f64 {
        self.npb_ns / self.config_ns(label)[0]
    }
    /// Thread-scaling ratio t(1)/t(4) per configuration (higher is better).
    fn scaling(&self, ns: &[f64]) -> f64 {
        ns[0] / ns[ns.len() - 1]
    }
}

/// The NPB matrix used for the matvec measurements (and the smoke guard).
fn bench_matrix(na: usize, nonzer: usize) -> npb::cg::makea::SparseMatrix {
    let params = CgParams {
        class: Class::S,
        na,
        nonzer,
        niter: 1,
        shift: 7.0,
        zeta_verify: f64::NAN,
    };
    makea(&params)
}

/// Single-thread ns/nonzero of the hand-written CSR matvec — the same
/// inner loop `crates/npb`'s `conj_grad_serial` runs (solve.rs), timed in
/// isolation so the VM tiers compare against exactly the work they do.
fn npb_matvec_ns(mat: &npb::cg::makea::SparseMatrix, samples: usize) -> f64 {
    let n = mat.n;
    let p = vec![1.0f64; n];
    let mut q = vec![0.0f64; n];
    let nnz = mat.rowstr[n] as u64;
    median_ns_per_op(samples, MATVEC_REPS as u64 * nnz, || {
        for _ in 0..MATVEC_REPS {
            for (j, qj) in q.iter_mut().enumerate().take(n) {
                let mut s = 0.0;
                for k in mat.rowstr[j]..mat.rowstr[j + 1] {
                    s += mat.a[k] * p[mat.colidx[k]];
                }
                *qj = s;
            }
        }
        std::hint::black_box(&mut q);
    })
}

fn run_matvec(
    mat: &npb::cg::makea::SparseMatrix,
    samples: usize,
    use_min: bool,
    threads: &[i64],
) -> KernelResult {
    let n = mat.n;
    let nnz = mat.rowstr[n] as u64;
    let rowstr = to_arr_i(&mat.rowstr.iter().map(|&v| v as i64).collect::<Vec<_>>());
    let colidx = to_arr_i(&mat.colidx.iter().map(|&v| v as i64).collect::<Vec<_>>());
    let a = to_arr_f(&mat.a);
    let p = to_arr_f(&vec![1.0f64; n]);
    let q = Arc::new(ArrF::new(n));

    let mut result = KernelResult {
        name: "cg_matvec_dynamic",
        ops_per_call: MATVEC_REPS as u64 * nnz,
        ns: Vec::new(),
        npb_ns: npb_matvec_ns(mat, samples),
    };
    for (label, backend, opt) in CONFIGS {
        let vm = Vm::build(ZAG_MATVEC, None, backend, opt).expect("compile matvec");
        let mut cfg = Vec::new();
        for &nth in threads {
            eprintln!("  matvec {label} x{nth}...");
            let ns = ns_per_op(samples, result.ops_per_call, use_min, || {
                vm.call_function(
                    "matvec",
                    vec![
                        Value::Int(n as i64),
                        Value::ArrI(Arc::clone(&rowstr)),
                        Value::ArrI(Arc::clone(&colidx)),
                        Value::ArrF(Arc::clone(&a)),
                        Value::ArrF(Arc::clone(&p)),
                        Value::ArrF(Arc::clone(&q)),
                        Value::Int(MATVEC_REPS),
                        Value::Int(nth),
                    ],
                )
                .expect("run matvec");
            });
            cfg.push(ns);
        }
        result.ns.push(cfg);
    }
    result
}

/// The batched-`vranlc` hand-written EP reference: `run_serial`'s batch
/// loop with the deviate scratch buffer and the `a^(2nk)` stream-jump
/// constant hoisted out of the timed region (`run_serial` reallocates
/// and recomputes them per call), so `npb_throughput_frac_1t` measures
/// the VM tiers against the honest ceiling — the batched LCG fill plus
/// the sqrt/log acceptance tail and nothing else.
fn npb_ep_ns(samples: usize, m: u32, mk: u32) -> f64 {
    use npb::randlc::{lcg_jump, lcg_pow, vranlc, DEFAULT_MULT, DEFAULT_SEED};
    let nk = 1u64 << mk;
    let batches = 1u64 << (m - mk);
    let pairs = 1u64 << m;
    // a^(2nk): one batch's worth of LCG steps, bit-identical to the NPB
    // `compute_an` squaring ladder (LCG states are exact integers).
    let an = lcg_pow(DEFAULT_MULT, 2 * nk);
    let mut x = vec![0.0f64; 2 * nk as usize];
    let mut q = [0.0f64; 10];
    let mut sx = 0.0f64;
    let mut sy = 0.0f64;
    median_ns_per_op(samples, pairs, || {
        for kk in 0..batches {
            let mut t = lcg_jump(DEFAULT_SEED, an, kk);
            vranlc(&mut t, DEFAULT_MULT, &mut x);
            for i in 0..nk as usize {
                let x1 = 2.0 * x[2 * i] - 1.0;
                let x2 = 2.0 * x[2 * i + 1] - 1.0;
                let t1 = x1 * x1 + x2 * x2;
                if t1 <= 1.0 {
                    let t2 = (-2.0 * t1.ln() / t1).sqrt();
                    let t3 = x1 * t2;
                    let t4 = x2 * t2;
                    let l = t3.abs().max(t4.abs()) as usize;
                    q[l] += 1.0;
                    sx += t3;
                    sy += t4;
                }
            }
        }
        std::hint::black_box((&q, sx, sy));
    })
}

fn run_ep(samples: usize, use_min: bool, threads: &[i64]) -> KernelResult {
    // 2^13 Gaussian-candidate pairs in 8 batches of 2^10.
    let m = 13i64;
    let mk = 10i64;
    let pairs = 1u64 << m;
    let mut result = KernelResult {
        name: "ep_batch",
        ops_per_call: pairs,
        ns: Vec::new(),
        npb_ns: npb_ep_ns(samples, m as u32, mk as u32),
    };
    for (label, backend, opt) in CONFIGS {
        let vm = Vm::build(ZAG_EP, None, backend, opt).expect("compile ep");
        let mut cfg = Vec::new();
        for &nth in threads {
            eprintln!("  ep {label} x{nth}...");
            let q = Arc::new(ArrF::new(10));
            let ns = ns_per_op(samples, pairs, use_min, || {
                vm.call_function(
                    "ep",
                    vec![
                        Value::Int(m),
                        Value::Int(mk),
                        Value::Int(nth),
                        Value::ArrF(Arc::clone(&q)),
                    ],
                )
                .expect("run ep");
            });
            cfg.push(ns);
        }
        result.ns.push(cfg);
    }
    result
}

fn run_is(samples: usize, use_min: bool, threads: &[i64]) -> KernelResult {
    // 2^14 keys in [0, 2^11), 2^5 buckets.
    let maxlog = 11u32;
    let nblog = 5u32;
    let params = npb::is::custom_params(14, maxlog, nblog);
    let keys: Vec<i64> = npb::is::create_seq(&params)
        .iter()
        .map(|&k| k as i64)
        .collect();
    let nkeys = keys.len();
    let nb = 1usize << nblog;
    let keys_arr = to_arr_i(&keys);

    let mut result = KernelResult {
        name: "is_histogram",
        ops_per_call: nkeys as u64,
        ns: Vec::new(),
        npb_ns: {
            // Like-for-like reference: the hand-written bucketed rank
            // (`rank_parallel` at one thread), which runs the same
            // 4-phase algorithm over the same runtime the Zag program
            // does. The 2-pass serial counting sort (`rank_serial`)
            // solves a strictly smaller problem — no bucket scatter,
            // no partially-sorted key array, ~3x fewer memory ops —
            // and a frac against it conflates VM overhead with the
            // NPB algorithm's own cost (the bucketed scatter alone
            // costs more than 60% of the counting sort's total on a
            // 1-core host).
            let ref_keys: Vec<npb::is::Key> = npb::is::create_seq(&params);
            median_ns_per_op(samples, nkeys as u64, || {
                std::hint::black_box(npb::is::rank_parallel(&ref_keys, &params, 1));
            })
        },
    };
    for (label, backend, opt) in CONFIGS {
        let vm = Vm::build(ZAG_RANK, None, backend, opt).expect("compile rank");
        let mut cfg = Vec::new();
        for &nth in threads {
            eprintln!("  is {label} x{nth}...");
            let counts = Arc::new(ArrI::new(nth as usize * nb));
            let starts = Arc::new(ArrI::new(nb + 1));
            let buff2 = Arc::new(ArrI::new(nkeys));
            let ranks = Arc::new(ArrI::new(1usize << maxlog));
            let ns = ns_per_op(samples, nkeys as u64, use_min, || {
                vm.call_function(
                    "rank",
                    vec![
                        Value::ArrI(Arc::clone(&keys_arr)),
                        Value::Int(nkeys as i64),
                        Value::Int(maxlog as i64),
                        Value::Int(nblog as i64),
                        Value::ArrI(Arc::clone(&counts)),
                        Value::ArrI(Arc::clone(&starts)),
                        Value::ArrI(Arc::clone(&buff2)),
                        Value::ArrI(Arc::clone(&ranks)),
                        Value::Int(nth),
                    ],
                )
                .expect("run rank");
            });
            cfg.push(ns);
        }
        result.ns.push(cfg);
    }
    result
}

/// CI guard: single-thread CG matvec on a small matrix; fail unless
/// `--opt=2` bytecode is at least `MIN_SPEEDUP`x the tree-walker *and* at
/// least `MIN_OPT_SPEEDUP`x the raw `--opt=0` (PR 3 baseline) bytecode.
/// A second, EP-specific gate holds the cross-call kernels to
/// `MIN_EP_NATIVE_SPEEDUP`x over `--opt=2`: the batched `lcg-fill` /
/// `ep-pairs` tier is worth far more than generic specialization there,
/// and a regression to chunk-interpreted `randlc` calls must fail CI.
fn smoke() -> ! {
    const MIN_SPEEDUP: f64 = 2.0;
    const MIN_OPT_SPEEDUP: f64 = 2.0;
    const MIN_NATIVE_SPEEDUP: f64 = 1.5;
    const MIN_EP_NATIVE_SPEEDUP: f64 = 3.0;
    const MIN_IS_NATIVE_SPEEDUP: f64 = 3.0;
    const MIN_SCALING_4C: f64 = 1.5;
    const MIN_SCALING_1C: f64 = 0.35;
    let mat = bench_matrix(400, 5);
    let r = run_matvec(&mat, 3, true, &[1]);
    let speedup = r.speedup_1t();
    let opt_speedup = r.opt_speedup_1t();
    let native_speedup = r.native_speedup_1t();
    eprintln!(
        "smoke: cg_matvec 1 thread: ast {:.1} ns/nz, bytecode o0 {:.1} ns/nz, o2 {:.1} ns/nz, \
         native {:.1} ns/nz, npb {:.1} ns/nz -> {speedup:.2}x over ast, {opt_speedup:.2}x over \
         o0, native {native_speedup:.2}x over o2 ({:.0}% of npb)",
        r.config_ns("ast")[0],
        r.config_ns("bytecode_o0")[0],
        r.config_ns("bytecode_o2")[0],
        r.config_ns("native")[0],
        r.npb_ns,
        100.0 * r.npb_frac("native"),
    );
    if speedup < MIN_SPEEDUP {
        eprintln!("FAIL: --opt=2 bytecode under {MIN_SPEEDUP}x the tree-walker on CG matvec");
        std::process::exit(1);
    }
    if opt_speedup < MIN_OPT_SPEEDUP {
        eprintln!("FAIL: --opt=2 under {MIN_OPT_SPEEDUP}x the --opt=0 baseline on CG matvec");
        std::process::exit(1);
    }
    if native_speedup < MIN_NATIVE_SPEEDUP {
        eprintln!(
            "FAIL: native tier under {MIN_NATIVE_SPEEDUP}x the --opt=2 bytecode on CG matvec"
        );
        std::process::exit(1);
    }
    let ep = run_ep(3, true, &[1]);
    let ep_native_speedup = ep.native_speedup_1t();
    eprintln!(
        "smoke: ep_batch 1 thread: o2 {:.1} ns/pair, native {:.1} ns/pair, npb {:.1} ns/pair \
         -> native {ep_native_speedup:.2}x over o2 ({:.0}% of npb)",
        ep.config_ns("bytecode_o2")[0],
        ep.config_ns("native")[0],
        ep.npb_ns,
        100.0 * ep.npb_frac("native"),
    );
    if ep_native_speedup < MIN_EP_NATIVE_SPEEDUP {
        eprintln!("FAIL: native tier under {MIN_EP_NATIVE_SPEEDUP}x the --opt=2 bytecode on EP");
        std::process::exit(1);
    }
    let is = run_is(3, true, &[1, 4]);
    let is_native_speedup = is.native_speedup_1t();
    eprintln!(
        "smoke: is_histogram 1 thread: o2 {:.1} ns/key, native {:.1} ns/key, npb {:.1} ns/key \
         -> native {is_native_speedup:.2}x over o2 ({:.0}% of npb)",
        is.config_ns("bytecode_o2")[0],
        is.config_ns("native")[0],
        is.npb_ns,
        100.0 * is.npb_frac("native"),
    );
    if is_native_speedup < MIN_IS_NATIVE_SPEEDUP {
        eprintln!("FAIL: native tier under {MIN_IS_NATIVE_SPEEDUP}x the --opt=2 bytecode on IS");
        std::process::exit(1);
    }
    // Thread-scaling guard. The ratio t(1)/t(4) only means speedup on a
    // host with cores to scale onto; CI containers here report one core,
    // where four workers can only add scheduling overhead. So the gate
    // adapts: on >= 4 cores the native tier must actually scale, on a
    // starved host it must merely keep the oversubscription tax bounded
    // (a collapse below the floor means a serialization bug — e.g. a
    // shared lock in the worksharing path — not just a slow box).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let is_scaling = is.scaling(is.config_ns("native"));
    let (scaling_floor, what) = if cores >= 4 {
        (MIN_SCALING_4C, "parallel speedup")
    } else {
        (MIN_SCALING_1C, "oversubscription floor")
    };
    eprintln!(
        "smoke: is_histogram native t(1)/t(4) = {is_scaling:.2} on {cores}-core host \
         (floor {scaling_floor} as {what})"
    );
    if is_scaling < scaling_floor {
        eprintln!(
            "FAIL: native IS 4-thread scaling {is_scaling:.2} under the {scaling_floor} \
             {what} on a {cores}-core host"
        );
        std::process::exit(1);
    }
    template_smoke();
    eprintln!(
        "PASS (thresholds {MIN_SPEEDUP}x over ast, {MIN_OPT_SPEEDUP}x over o0, \
         {MIN_NATIVE_SPEEDUP}x native over o2, {MIN_EP_NATIVE_SPEEDUP}x native over o2 on EP, \
         {MIN_IS_NATIVE_SPEEDUP}x native over o2 on IS, \
         {MIN_TEMPLATE_SPEEDUP}x template tier over o2)"
    );
    std::process::exit(0);
}

/// Template-tier floor, shared by `template_smoke` and the PASS banner.
/// Measured typical is 3.4-3.8x, but the o2 baseline wobbles ±30% on a
/// loaded 1-core container while the template ns/op stays flat, so the
/// CI floor sits below typical: it guards against the tier regressing,
/// not against baseline noise.
const MIN_TEMPLATE_SPEEDUP: f64 = 2.5;

/// Template-tier gate: the typed-template fixture (`ZAG_TEMPLATE`) must
/// install at least one template at `--opt=3`, return bit-identical
/// results to the `--opt=2` bytecode, and run both shape-missed loops at
/// least `MIN_TEMPLATE_SPEEDUP`x faster than that bytecode. The fixture
/// stands in for the real shape-missed loops (EP's setup doublings, the
/// stencil example) whose trip counts are too small to time.
fn template_smoke() {
    for r in measure_templates(5) {
        eprintln!(
            "smoke: template `{}`: o2 {:.1} ns/op, template {:.1} ns/op \
             -> {:.2}x over o2 ({} templates installed)",
            r.func, r.o2_ns, r.tmpl_ns, r.speedup, r.installed
        );
        if r.speedup < MIN_TEMPLATE_SPEEDUP {
            eprintln!(
                "FAIL: template tier under {MIN_TEMPLATE_SPEEDUP}x the --opt=2 bytecode \
                 on `{}`",
                r.func
            );
            std::process::exit(1);
        }
    }
}

struct TemplateRow {
    func: &'static str,
    installed: usize,
    o2_ns: f64,
    tmpl_ns: f64,
    speedup: f64,
}

/// Measure the template fixture: assert at least one `template-installed`
/// remark and bit-identical `--opt=2` vs `--opt=3` results, then time
/// both shape-missed loops (best-observed, see `ns_per_op`). Shared by
/// the smoke gate and the `BENCH_vm.json` `templates` section.
fn measure_templates(samples: usize) -> Vec<TemplateRow> {
    let remarks = zomp_vm::remarks::collect(ZAG_TEMPLATE, "template.zag", OptLevel::O3)
        .expect("template remarks");
    let installed = remarks
        .iter()
        .filter(|d| d.code == "template-installed")
        .count();
    if installed == 0 {
        eprintln!("FAIL: no template-installed remark on the template fixture at --opt=3");
        std::process::exit(1);
    }
    let o2 = Vm::build(ZAG_TEMPLATE, None, Backend::Bytecode, OptLevel::O2).expect("compile o2");
    let o3 = Vm::build(ZAG_TEMPLATE, None, Backend::Native, OptLevel::O3).expect("compile o3");
    let n = 65536usize;
    let reps = 8i64;
    let mk_args = |kind: &str| -> Vec<Value> {
        match kind {
            "smooth" => {
                let u = Arc::new(ArrF::new(n));
                for i in 0..n {
                    u.set(i as i64, (i % 17) as f64 * 0.25).unwrap();
                }
                let v = Arc::new(ArrF::new(n));
                vec![
                    Value::ArrF(u),
                    Value::ArrF(v),
                    Value::Int(n as i64),
                    Value::Int(reps),
                ]
            }
            _ => {
                let x = Arc::new(ArrI::new(n));
                for i in 0..n {
                    x.set(i as i64, (i % 31) as i64 - 15).unwrap();
                }
                vec![Value::ArrI(x), Value::Int(n as i64), Value::Int(reps)]
            }
        }
    };
    let mut rows = Vec::new();
    for func in ["smooth", "sumsq"] {
        let r2 = o2.call_function(func, mk_args(func)).expect("run o2");
        let r3 = o3.call_function(func, mk_args(func)).expect("run o3");
        let same = match (&r2, &r3) {
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Int(a), Value::Int(b)) => a == b,
            _ => false,
        };
        if !same {
            eprintln!("FAIL: template fixture `{func}` differs between --opt=2 and --opt=3");
            std::process::exit(1);
        }
        let ops = n as u64 * reps as u64;
        let args2 = mk_args(func);
        let t2 = ns_per_op(samples, ops, true, || {
            o2.call_function(func, args2.clone()).expect("run o2");
        });
        let args3 = mk_args(func);
        let t3 = ns_per_op(samples, ops, true, || {
            o3.call_function(func, args3.clone()).expect("run o3");
        });
        rows.push(TemplateRow {
            func,
            installed,
            o2_ns: t2,
            tmpl_ns: t3,
            speedup: t2 / t3,
        });
    }
    rows
}

fn json_list(ns: &[f64]) -> String {
    let items: Vec<String> = ns.iter().map(|v| format!("{v:.1}")).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    // Shared execution flags (`--threads`, `--schedule`, `--trace`,
    // `--metrics`, `--safety`) go through the common builder; what is
    // left is `--smoke` or the output path.
    let mut cfg = zomp::ExecConfig::new();
    let mut arg: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match cfg.parse_flag(&a, &mut it) {
            Ok(true) => continue,
            Ok(false) => arg = Some(a),
            Err(e) => {
                eprintln!("vm-bench: {e}");
                std::process::exit(2);
            }
        }
    }
    cfg.apply_global();
    if arg.as_deref() == Some("--smoke") {
        smoke();
    }
    let out = arg.unwrap_or_else(|| "BENCH_vm.json".into());

    eprintln!("cg_matvec_dynamic (NPB makea CSR, schedule(dynamic, 64))...");
    let mat = bench_matrix(1400, 7);
    let cg = run_matvec(&mat, SAMPLES, false, &THREADS);
    eprintln!("ep_batch (LCG Gaussian pairs, schedule(static) + reductions)...");
    let ep = run_ep(SAMPLES, false, &THREADS);
    eprintln!("is_histogram (bucketed rank, static/static,1 phases)...");
    let is = run_is(SAMPLES, false, &THREADS);

    let mut kernels = String::new();
    for (i, k) in [&cg, &ep, &is].iter().enumerate() {
        let sep = if i == 0 { "" } else { ",\n" };
        let ns_fields: Vec<String> = CONFIGS
            .iter()
            .zip(&k.ns)
            .map(|((label, _, _), ns)| format!("\"{label}\": {}", json_list(ns)))
            .collect();
        let scaling_fields: Vec<String> = CONFIGS
            .iter()
            .zip(&k.ns)
            .map(|((label, _, _), ns)| format!("\"{label}\": {:.2}", k.scaling(ns)))
            .collect();
        // Fraction of the crates/npb Rust kernel's single-thread
        // throughput each tier reaches — the npb-relative gap.
        let npb_fields: Vec<String> = CONFIGS
            .iter()
            .map(|(label, _, _)| format!("\"{label}\": {:.3}", k.npb_frac(label)))
            .collect();
        kernels.push_str(&format!(
            "{sep}    \"{}\": {{\n      \
             \"ops_per_call\": {},\n      \
             \"ns_per_op\": {{{}}},\n      \
             \"npb_ns_per_op\": {:.1},\n      \
             \"npb_throughput_frac_1t\": {{{}}},\n      \
             \"bytecode_speedup_1t\": {:.2},\n      \
             \"opt_speedup_1t\": {:.2},\n      \
             \"native_speedup_1t\": {:.2},\n      \
             \"scaling_4t_over_1t\": {{{}}}\n    }}",
            k.name,
            k.ops_per_call,
            ns_fields.join(", "),
            k.npb_ns,
            npb_fields.join(", "),
            k.speedup_1t(),
            k.opt_speedup_1t(),
            k.native_speedup_1t(),
            scaling_fields.join(", "),
        ));
    }
    // The typed-template tier on the two shape-missed fixture loops
    // (single thread, best-observed ns/op — see `ns_per_op`).
    let tmpl_rows: Vec<String> = measure_templates(SAMPLES)
        .iter()
        .map(|r| {
            format!(
                "    \"{}\": {{ \"o2_ns_per_op\": {:.1}, \"template_ns_per_op\": {:.1}, \
                 \"speedup\": {:.2}, \"templates_installed\": {} }}",
                r.func, r.o2_ns, r.tmpl_ns, r.speedup, r.installed
            )
        })
        .collect();
    let templates = tmpl_rows.join(",\n");
    // Thread-scaling ratios only mean something relative to the host's
    // core count (on a one-core box both backends pin near 1.0).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let meta = zomp_bench::meta::json_object();
    let json = format!(
        "{{\n  \"meta\": {meta},\n  \"threads\": [1, 4],\n  \"samples\": {SAMPLES},\n  \
         \"host_cores\": {cores},\n  \"kernels\": {{\n{kernels}\n  }},\n  \
         \"templates\": {{\n{templates}\n  }}\n}}\n"
    );
    std::fs::write(&out, &json).expect("write BENCH_vm.json");
    print!("{json}");
    eprintln!(
        "single-thread speedups over ast: cg {:.2}x, ep {:.2}x, is {:.2}x; \
         --opt=2 over --opt=0: cg {:.2}x, ep {:.2}x, is {:.2}x; \
         native over --opt=2: cg {:.2}x, ep {:.2}x, is {:.2}x; \
         fraction of npb: cg {:.0}%, ep {:.0}%, is {:.0}% -> {out}",
        cg.speedup_1t(),
        ep.speedup_1t(),
        is.speedup_1t(),
        cg.opt_speedup_1t(),
        ep.opt_speedup_1t(),
        is.opt_speedup_1t(),
        cg.native_speedup_1t(),
        ep.native_speedup_1t(),
        is.native_speedup_1t(),
        100.0 * cg.npb_frac("native"),
        100.0 * ep.npb_frac("native"),
        100.0 * is.npb_frac("native"),
    );
}
