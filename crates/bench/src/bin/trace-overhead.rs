//! Emit `BENCH_trace_overhead.json`: cost of the observability layer at
//! its three settings — fully disabled (the default; must stay within
//! noise of the pre-observability baseline), counters only
//! (`ZOMP_METRICS`), and full event tracing (`ZOMP_TRACE`).
//!
//! Three workloads bracket the instrumented hot paths:
//!
//! - `dispatch_claim_ns`: raw work-stealing chunk claims under contention
//!   (the PR 1 acceptance metric — the disabled number is directly
//!   comparable to `dispatch_next_steal` in `BENCH_runtime.json`);
//! - `loop_iter_ns`: end-to-end `parallel_for` dynamic loop, per
//!   iteration (this path crosses the chunk/dispatch instrumentation);
//! - `fork_join_ns`: region enter/exit (region spans + join wait);
//! - `kernel_probe_ns`: the `--opt=3` bulk-kernel telemetry probe pair
//!   (`kernel_begin_ts` + `kernel_end`) plus a quicken mark — the hooks
//!   the tiered VM crosses on every kernel entry and rewrite.
//!
//! Usage: `cargo run --release -p zomp-bench --bin trace-overhead [-- OUT]`
//! (default output path `BENCH_trace_overhead.json`).

use std::hint::black_box;
use std::time::Instant;

use zomp::prelude::*;
use zomp::schedule::{DynamicDispatch, Schedule};
use zomp::trace;
use zomp::workshare::parallel_for;

const THREADS: usize = 4;
const SAMPLES: usize = 15;

fn median_ns_per_op(ops: u64, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut ns: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            // Full rings degrade event pushes to drop-counting; reset so
            // every sample measures the recording path, not the drop path.
            trace::reset();
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64 / ops as f64
        })
        .collect();
    ns.sort_by(|a, b| a.total_cmp(b));
    ns[ns.len() / 2]
}

fn bench_dispatch_claim(trip: u64) -> f64 {
    median_ns_per_op(trip, || {
        let d = DynamicDispatch::new(trip, THREADS, Some(1));
        std::thread::scope(|s| {
            for tid in 0..THREADS {
                let d = &d;
                s.spawn(move || {
                    while let Some(r) = d.next(tid) {
                        black_box(r);
                    }
                });
            }
        });
    })
}

fn bench_loop_iter(trip: i64) -> f64 {
    median_ns_per_op(trip as u64, || {
        parallel_for(
            Parallel::new().num_threads(THREADS).label("bench-loop"),
            Schedule::dynamic(Some(64)),
            0..trip,
            |i| {
                black_box(i);
            },
        );
    })
}

fn bench_fork_join() -> f64 {
    const FORKS: u64 = 200;
    median_ns_per_op(FORKS, || {
        for _ in 0..FORKS {
            fork_call(
                Parallel::new().num_threads(THREADS).label("bench-fork"),
                |ctx| {
                    black_box(ctx.thread_num());
                },
            );
        }
    })
}

/// The kernel-telemetry probe pair the VM's `BulkLoop` arm executes per
/// native kernel run, plus a quickening mark — measured bare so the
/// disabled number bounds what `--opt=3` pays with tracing off.
fn bench_kernel_probe() -> f64 {
    const CALLS: u64 = 1 << 17;
    median_ns_per_op(CALLS, || {
        for i in 0..CALLS {
            let t0 = trace::kernel_begin_ts();
            trace::kernel_end("bench-kernel", 7, 64, None, t0);
            if i & 0xfff == 0 {
                trace::quicken("index->index.f", 11);
            }
            black_box(t0);
        }
    })
}

struct Tier {
    dispatch_claim_ns: f64,
    loop_iter_ns: f64,
    fork_join_ns: f64,
    kernel_probe_ns: f64,
}

fn measure_tier() -> Tier {
    const TRIP: u64 = 1 << 17;
    Tier {
        dispatch_claim_ns: bench_dispatch_claim(TRIP),
        loop_iter_ns: bench_loop_iter(1 << 17),
        fork_join_ns: bench_fork_join(),
        kernel_probe_ns: bench_kernel_probe(),
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_trace_overhead.json".into());

    eprintln!("tier 1/3: instrumentation disabled...");
    trace::disable_all();
    let off = measure_tier();

    eprintln!("tier 2/3: counters only (ZOMP_METRICS path)...");
    trace::enable_counters();
    let counters = measure_tier();

    eprintln!("tier 3/3: full event tracing (ZOMP_TRACE path)...");
    trace::enable_events();
    let events = measure_tier();
    trace::disable_all();
    trace::reset();

    let tier_json = |t: &Tier| {
        format!(
            "{{\n      \"dispatch_claim\": {:.2},\n      \"loop_iter\": {:.2},\n      \
             \"fork_join\": {:.1},\n      \"kernel_probe\": {:.2}\n    }}",
            t.dispatch_claim_ns, t.loop_iter_ns, t.fork_join_ns, t.kernel_probe_ns
        )
    };
    let meta = zomp_bench::meta::json_object();
    let json = format!(
        "{{\n  \"meta\": {meta},\n  \"threads\": {THREADS},\n  \"samples\": {SAMPLES},\n  \"median_ns\": {{\n    \
         \"disabled\": {},\n    \"counters\": {},\n    \"events\": {}\n  }},\n  \
         \"loop_iter_overhead_ratio\": {{\n    \"counters\": {:.3},\n    \"events\": {:.3}\n  }}\n}}\n",
        tier_json(&off),
        tier_json(&counters),
        tier_json(&events),
        counters.loop_iter_ns / off.loop_iter_ns,
        events.loop_iter_ns / off.loop_iter_ns,
    );
    std::fs::write(&out, &json).expect("write BENCH_trace_overhead.json");
    print!("{json}");
    eprintln!(
        "loop overhead vs disabled: counters {:.2}x, events {:.2}x -> {out}",
        counters.loop_iter_ns / off.loop_iter_ns,
        events.loop_iter_ns / off.loop_iter_ns
    );
}
