//! Regenerate every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p zomp-bench --bin paper-figures -- all
//! cargo run --release -p zomp-bench --bin paper-figures -- table1 fig3
//! cargo run --release -p zomp-bench --bin paper-figures -- all --json out.json
//! cargo run --release -p zomp-bench --bin paper-figures -- breakdown cg 128
//! ```
//!
//! The class C numbers come from the calibrated ARCHER2 machine model (see
//! `archer-sim` and DESIGN.md); the paper's published values are printed
//! next to the modelled ones so shape agreement (who wins, by what factor,
//! where the curves bend) can be read off directly.

use zomp_bench::experiments::{
    all_experiments, cg_experiment, ep_experiment, is_experiment, Experiment,
};
use zomp_bench::format::{render_figure, render_table};

fn usage() -> ! {
    eprintln!(
        "usage: paper-figures [table1|table2|table3|fig3|fig4|fig5|all]... [--json FILE]\n\
       or: paper-figures breakdown <cg|ep|is> <threads>\n\
         \n\
         table1/fig3  CG  class C strong scaling (Zig vs Fortran)\n\
         table2/fig4  EP  class C strong scaling (Zig vs Fortran)\n\
         table3/fig5  IS  class C strong scaling (Zig vs C)\n\
         all          everything, tables then figures\n\
         breakdown    per-loop time attribution at one thread count"
    );
    std::process::exit(2);
}

fn run_breakdown(kernel: &str, threads: usize) {
    use archer_sim::breakdown::simulate_breakdown;
    use archer_sim::lang::{profile, Kernel, Lang};
    use archer_sim::Machine;
    use npb::class::{CgParams, EpParams, IsParams};
    use npb::model::{cg_model, ep_model, estimate_nnz, is_model};
    use npb::Class;

    let (model, k) = match kernel {
        "cg" => {
            let p = CgParams::for_class(Class::C);
            (cg_model(&p, estimate_nnz(&p)), Kernel::Cg)
        }
        "ep" => (ep_model(&EpParams::for_class(Class::C)), Kernel::Ep),
        "is" => (is_model(&IsParams::for_class(Class::C)), Kernel::Is),
        _ => usage(),
    };
    let bd = simulate_breakdown(&model, &Machine::archer2(), &profile(Lang::Zig, k), threads);
    println!(
        "{} — modelled Zig time attribution at {threads} threads (class C)\n{}",
        model.name,
        bd.render()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        usage();
    }

    if args[0] == "breakdown" {
        let kernel = args
            .get(1)
            .map(|s| s.to_ascii_lowercase())
            .unwrap_or_else(|| usage());
        let threads: usize = args
            .get(2)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage());
        run_breakdown(&kernel, threads);
        return;
    }

    let mut json_path: Option<String> = None;
    let mut wants: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--json" {
            json_path = Some(it.next().unwrap_or_else(|| usage()));
        } else {
            wants.push(a.to_ascii_lowercase());
        }
    }

    let mut printed = Vec::new();
    let emit = |e: Experiment, table: bool, figure: bool, printed: &mut Vec<Experiment>| {
        if table {
            println!("{}", render_table(&e));
        }
        if figure {
            println!("{}", render_figure(&e));
        }
        printed.push(e);
    };

    for w in &wants {
        match w.as_str() {
            "all" => {
                for e in all_experiments() {
                    println!("{}", render_table(&e));
                    println!("{}", render_figure(&e));
                    printed.push(e);
                }
            }
            "table1" => emit(cg_experiment(), true, false, &mut printed),
            "fig3" | "figure3" => emit(cg_experiment(), false, true, &mut printed),
            "table2" => emit(ep_experiment(), true, false, &mut printed),
            "fig4" | "figure4" => emit(ep_experiment(), false, true, &mut printed),
            "table3" => emit(is_experiment(), true, false, &mut printed),
            "fig5" | "figure5" => emit(is_experiment(), false, true, &mut printed),
            _ => usage(),
        }
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&printed).expect("serialise experiments");
        std::fs::write(&path, json).expect("write JSON output");
        eprintln!("wrote {path}");
    }
}
