//! Shared provenance stamp for every `BENCH_*.json` artefact.
//!
//! Benchmark JSON lives long after the run: it gets committed, diffed
//! across machines, and quoted in regression reports. Every writer
//! embeds the same `"meta"` object so a number can always be traced to
//! the schema revision, source commit, host width and date that
//! produced it — with no external dependencies (commit via `git
//! rev-parse`, date from the unix epoch with the days-from-civil
//! inverse algorithm).

/// Bump when any `BENCH_*.json` writer changes field layout.
pub const SCHEMA_VERSION: u32 = 2;

/// The `"meta"` JSON object all `BENCH_*.json` files share:
/// `{"schema_version", "commit", "host_cores", "date"}`.
pub fn json_object() -> String {
    format!(
        "{{\"schema_version\": {SCHEMA_VERSION}, \"commit\": \"{}\", \
         \"host_cores\": {}, \"date\": \"{}\"}}",
        commit(),
        host_cores(),
        iso_date_utc(),
    )
}

/// Short git commit of the working tree, `"unknown"` outside a checkout.
pub fn commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Logical cores on the host (thread-scaling ratios are meaningless
/// without it).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Today's UTC date as `YYYY-MM-DD`, from `SystemTime` alone.
pub fn iso_date_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Proleptic-Gregorian date for a day count since 1970-01-01 (Howard
/// Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_epoch_and_leap_days() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        // 2024 is a leap year: day 59 from Jan 1 is Feb 29.
        assert_eq!(civil_from_days(19_723 + 59), (2024, 2, 29));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn stamp_is_valid_json_shape() {
        let s = json_object();
        assert!(s.starts_with('{') && s.ends_with('}'), "{s}");
        for key in ["schema_version", "commit", "host_cores", "date"] {
            assert!(s.contains(&format!("\"{key}\"")), "{s}");
        }
        // Date must be the fixed-width ISO form.
        let date = s.split("\"date\": \"").nth(1).unwrap();
        assert_eq!(date.as_bytes()[4], b'-');
        assert_eq!(date.as_bytes()[7], b'-');
    }
}
