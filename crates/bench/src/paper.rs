//! The paper's published evaluation numbers (Tables I–III; Figures 3–5 are
//! the speedup views of the same data).
//!
//! Note: the paper's Table III misprints its last row's thread count as
//! "64"; from the monotone runtimes and the surrounding text it is plainly
//! the 128-thread row and is transcribed as such.

/// Thread counts of every table.
pub const THREADS: [usize; 7] = [1, 2, 16, 32, 64, 96, 128];

/// One published table: Zig runtimes vs the reference language's.
#[derive(Debug, Clone, Copy)]
pub struct PaperTable {
    pub id: &'static str,
    pub caption: &'static str,
    pub kernel: &'static str,
    /// The comparison language ("Fortran" or "C").
    pub reference_lang: &'static str,
    pub zig_seconds: [f64; 7],
    pub reference_seconds: [f64; 7],
}

impl PaperTable {
    /// Speedups relative to each language's own single-thread time —
    /// the series plotted in Figures 3–5.
    pub fn zig_speedups(&self) -> [f64; 7] {
        self.zig_seconds.map(|s| self.zig_seconds[0] / s)
    }

    pub fn reference_speedups(&self) -> [f64; 7] {
        self.reference_seconds
            .map(|s| self.reference_seconds[0] / s)
    }
}

/// Table I: CG class C runtimes, Zig vs Fortran.
pub fn table1() -> PaperTable {
    PaperTable {
        id: "Table I",
        caption: "Runtime of Zig and Fortran NPB CG benchmark (class C)",
        kernel: "CG",
        reference_lang: "Fortran",
        zig_seconds: [149.40, 82.34, 21.85, 11.26, 5.83, 2.80, 1.81],
        reference_seconds: [170.17, 83.35, 21.80, 11.28, 5.98, 2.98, 2.07],
    }
}

/// Table II: EP class C runtimes, Zig vs Fortran.
pub fn table2() -> PaperTable {
    PaperTable {
        id: "Table II",
        caption: "Runtime of Zig and Fortran NPB EP benchmark (class C)",
        kernel: "EP",
        reference_lang: "Fortran",
        zig_seconds: [147.66, 76.17, 9.84, 4.72, 2.29, 1.57, 1.36],
        reference_seconds: [185.26, 94.90, 11.83, 5.92, 2.84, 1.97, 1.42],
    }
}

/// Table III: IS class C runtimes, Zig vs C.
pub fn table3() -> PaperTable {
    PaperTable {
        id: "Table III",
        caption: "Runtime of Zig and C NPB IS benchmark (class C)",
        kernel: "IS",
        reference_lang: "C",
        zig_seconds: [11.87, 6.12, 1.05, 0.55, 0.33, 0.29, 0.27],
        reference_seconds: [9.29, 4.76, 0.93, 0.54, 0.31, 0.28, 0.24],
    }
}

/// All three tables (Figures 3–5 reuse the same data as speedups).
pub fn all_tables() -> [PaperTable; 3] {
    [table1(), table2(), table3()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_claims_hold_in_transcription() {
        // "Zig is 1.15x faster than Fortran on a single core" (CG).
        let t1 = table1();
        let r = t1.reference_seconds[0] / t1.zig_seconds[0];
        assert!((1.10..1.20).contains(&r), "CG serial ratio {r}");
        // "on average 1.2 times faster" (EP) — serial ratio 1.25.
        let t2 = table2();
        let r = t2.reference_seconds[0] / t2.zig_seconds[0];
        assert!((1.20..1.30).contains(&r), "EP serial ratio {r}");
        // IS: C is faster serially.
        let t3 = table3();
        assert!(t3.reference_seconds[0] < t3.zig_seconds[0]);
    }

    #[test]
    fn runtimes_monotonically_decrease() {
        for t in all_tables() {
            for w in t.zig_seconds.windows(2) {
                assert!(w[1] < w[0]);
            }
            for w in t.reference_seconds.windows(2) {
                assert!(w[1] < w[0]);
            }
        }
    }

    #[test]
    fn cg_speedup_jump_is_in_the_published_data() {
        // The Fig. 3 anomaly: both languages jump far past Amdahl between
        // 64 and 128 threads.
        let t = table1();
        let s = t.zig_speedups();
        assert!(s[4] < 30.0, "64-thread speedup {s:?}");
        assert!(s[6] > 75.0, "128-thread speedup {s:?}");
    }
}
