//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **safety modes** — Zig's debug/production duality on shared-array
//!   access (bounds checks on vs off vs race-tagging);
//! * **dynamic chunk size** — the dispatch-overhead / load-balance
//!   trade-off behind the `schedule` clause;
//! * **CAS loop vs mutex** — the Listing 6 reduction strategy against the
//!   naive lock-based alternative;
//! * **pragma pipeline stages** — tokenise / parse / full preprocess cost
//!   of the front-end on a representative annotated program.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zomp::atomic::AtomicF64;
use zomp::prelude::*;
use zomp::safety::{with_safety_mode, SafetyMode};

fn team_size() -> usize {
    zomp::omp::get_num_procs().clamp(1, 4)
}

fn bench_safety_modes(c: &mut Criterion) {
    const N: usize = 1 << 14;
    let mut g = c.benchmark_group("safety_mode_shared_access");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    for (name, mode) in [
        ("production_unchecked", SafetyMode::Production),
        ("debug_bounds_checked", SafetyMode::Debug),
        ("paranoid_race_tagged", SafetyMode::Paranoid),
    ] {
        g.bench_function(name, |b| {
            with_safety_mode(mode, || {
                let mut data = vec![0.0f64; N];
                let s = SharedSlice::new(&mut data);
                b.iter(|| {
                    s.reset_tags();
                    for i in 0..N {
                        s.set(i, black_box(i as f64));
                    }
                    black_box(s.get(N - 1))
                });
            });
        });
    }
    g.finish();
}

fn bench_dynamic_chunks(c: &mut Criterion) {
    const N: i64 = 1 << 13;
    let mut g = c.benchmark_group("dynamic_chunk_size");
    g.sample_size(15).measurement_time(Duration::from_secs(2));
    for chunk in [1i64, 8, 64, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter(|| {
                parallel_reduce(
                    Parallel::new().num_threads(team_size()),
                    Schedule::dynamic(Some(chunk)),
                    0..N,
                    0i64,
                    RedOp::Add,
                    |i, acc| *acc += i,
                )
            });
        });
    }
    g.finish();
}

fn bench_cas_vs_mutex(c: &mut Criterion) {
    let mut g = c.benchmark_group("float_accumulate");
    g.sample_size(30).measurement_time(Duration::from_secs(2));
    g.bench_function("cas_loop_atomic_f64", |b| {
        let cell = AtomicF64::new(0.0);
        b.iter(|| {
            for i in 0..1000 {
                cell.fetch_add(black_box(i as f64));
            }
            cell.load()
        });
    });
    g.bench_function("parking_lot_mutex_f64", |b| {
        let cell = parking_lot::Mutex::new(0.0f64);
        b.iter(|| {
            for i in 0..1000 {
                *cell.lock() += black_box(i as f64);
            }
            *cell.lock()
        });
    });
    g.finish();
}

const ANNOTATED: &str = r#"
fn main() void {
    var rho: f64 = 0.0;
    var n: i64 = 1000;
    //$omp parallel num_threads(4) shared(rho) firstprivate(n)
    {
        var j: i64 = 0;
        //$omp while schedule(guided) reduction(+: rho)
        while (j < n) : (j += 1) {
            rho = rho + 1.0;
        }
        //$omp single
        {
            rho = rho * 1.0;
        }
    }
    //$omp barrier
    _ = rho;
}
"#;

fn bench_frontend_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("pragma_pipeline");
    g.sample_size(50).measurement_time(Duration::from_secs(2));
    g.bench_function("tokenize", |b| {
        b.iter(|| black_box(zomp_front::token::tokenize(ANNOTATED).unwrap().len()));
    });
    g.bench_function("parse", |b| {
        b.iter(|| black_box(zomp_front::parse(ANNOTATED).unwrap().nodes.len()));
    });
    g.bench_function("preprocess_all_passes", |b| {
        b.iter(|| black_box(zomp_front::preprocess(ANNOTATED).unwrap().len()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_safety_modes,
    bench_dynamic_chunks,
    bench_cas_vs_mutex,
    bench_frontend_stages
);
criterion_main!(benches);
