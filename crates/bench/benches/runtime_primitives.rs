//! Microbenchmarks of the runtime primitives the paper's compiler lowers
//! to: region fork/join, barriers, the worksharing schedules, and the
//! reduction paths (native atomic RMW vs the Listing 6 CAS loop).
//!
//! These are host-machine measurements (the class C tables come from the
//! `paper-figures` model harness); sample sizes are kept small so the suite
//! stays quick on small hosts.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zomp::prelude::*;
use zomp::workshare::for_loop;

fn team_size() -> usize {
    // Oversubscription past the core count only adds scheduler noise.
    zomp::omp::get_num_procs().clamp(1, 4)
}

fn bench_fork(c: &mut Criterion) {
    let mut g = c.benchmark_group("fork_join");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut sizes = vec![1usize, 2, team_size()];
    sizes.sort_unstable();
    sizes.dedup();
    for threads in sizes {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                fork_call(Parallel::new().num_threads(t), |ctx| {
                    black_box(ctx.thread_num());
                });
            });
        });
    }
    g.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut sizes = vec![2usize, team_size().max(2)];
    sizes.sort_unstable();
    sizes.dedup();
    for threads in sizes {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                fork_call(Parallel::new().num_threads(t), |ctx| {
                    for _ in 0..16 {
                        ctx.barrier();
                    }
                });
            });
        });
    }
    g.finish();
}

fn bench_schedules(c: &mut Criterion) {
    const N: i64 = 1 << 14;
    let data: Vec<f64> = (0..N).map(|i| i as f64).collect();
    let mut g = c.benchmark_group("schedule");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let schedules = [
        ("static", Schedule::static_default()),
        ("static_16", Schedule::static_chunked(16)),
        ("dynamic_16", Schedule::dynamic(Some(16))),
        ("guided", Schedule::guided(None)),
    ];
    for (name, sched) in schedules {
        g.bench_function(name, |b| {
            b.iter(|| {
                let s = parallel_reduce(
                    Parallel::new().num_threads(team_size()),
                    sched,
                    0..N,
                    0.0f64,
                    RedOp::Add,
                    |i, acc| *acc += data[i as usize],
                );
                black_box(s)
            });
        });
    }
    g.finish();
}

fn bench_reductions(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction_combine");
    g.sample_size(30).measurement_time(Duration::from_secs(2));
    // Native atomic path (fetch_add) vs the CAS loop (multiply, Listing 6).
    g.bench_function("i64_add_native", |b| {
        let cell = RedCell::<i64>::new(RedOp::Add, 0);
        b.iter(|| {
            for _ in 0..1000 {
                cell.combine(black_box(1));
            }
        });
    });
    g.bench_function("i64_mul_cas_loop", |b| {
        let cell = RedCell::<i64>::new(RedOp::Mul, 1);
        b.iter(|| {
            for _ in 0..1000 {
                cell.combine(black_box(1));
            }
        });
    });
    g.bench_function("f64_add_cas_loop", |b| {
        let cell = RedCell::<f64>::new(RedOp::Add, 0.0);
        b.iter(|| {
            for _ in 0..1000 {
                cell.combine(black_box(1.0));
            }
        });
    });
    g.finish();
}

/// Work-stealing decks vs the legacy shared cursor: drain the same loop
/// through both dispatchers, solo and with 4 contending threads.
fn bench_dispatch_impls(c: &mut Criterion) {
    use zomp::schedule::{legacy::SharedCursorDispatch, DynamicDispatch};
    const N: u64 = 1 << 15;
    let mut g = c.benchmark_group("dispatch_next");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("steal_deck_solo", |b| {
        b.iter(|| {
            let d = DynamicDispatch::new(N, 1, Some(1));
            while let Some(r) = d.next(0) {
                black_box(r);
            }
        });
    });
    g.bench_function("shared_cursor_solo", |b| {
        b.iter(|| {
            let d = SharedCursorDispatch::new(N, 1);
            while let Some(r) = d.next() {
                black_box(r);
            }
        });
    });
    g.bench_function("steal_deck_4way", |b| {
        b.iter(|| {
            let d = DynamicDispatch::new(N, 4, Some(1));
            std::thread::scope(|s| {
                for tid in 0..4 {
                    let d = &d;
                    s.spawn(move || {
                        while let Some(r) = d.next(tid) {
                            black_box(r);
                        }
                    });
                }
            });
        });
    });
    g.bench_function("shared_cursor_4way", |b| {
        b.iter(|| {
            let d = SharedCursorDispatch::new(N, 1);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let d = &d;
                    s.spawn(move || {
                        while let Some(r) = d.next() {
                            black_box(r);
                        }
                    });
                }
            });
        });
    });
    g.finish();
}

/// Central vs combining-tree barrier at the same team size (the production
/// selector switches at 8; this pins each implementation explicitly).
fn bench_barrier_impls(c: &mut Criterion) {
    use zomp::barrier::Barrier;
    const CYCLES: usize = 64;
    let mut g = c.benchmark_group("barrier_impl");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for (name, make) in [
        ("central_8", Barrier::new_central as fn(usize) -> Barrier),
        ("tree_8", Barrier::new_tree),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let bar = make(8);
                std::thread::scope(|s| {
                    for tid in 0..8 {
                        let bar = &bar;
                        s.spawn(move || {
                            for _ in 0..CYCLES {
                                black_box(bar.wait_as(tid));
                            }
                        });
                    }
                });
            });
        });
    }
    g.finish();
}

/// Flat atomic combine (every thread CASes one cell) vs the padded combining
/// tree (one CAS total, log-depth folds).
fn bench_reduction_impls(c: &mut Criterion) {
    use zomp::reduction::ReduceTree;
    const NTH: usize = 4;
    let mut g = c.benchmark_group("reduction_impl");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    g.bench_function("flat_atomic_4way", |b| {
        b.iter(|| {
            let cell = RedCell::<f64>::new(RedOp::Add, 0.0);
            std::thread::scope(|s| {
                for tid in 0..NTH {
                    let cell = &cell;
                    s.spawn(move || cell.combine(tid as f64));
                }
            });
            black_box(cell.get())
        });
    });
    g.bench_function("tree_4way", |b| {
        b.iter(|| {
            let cell = RedCell::<f64>::new(RedOp::Add, 0.0);
            let tree = ReduceTree::<f64>::new(RedOp::Add, NTH);
            std::thread::scope(|s| {
                for tid in 0..NTH {
                    let cell = &cell;
                    let tree = &tree;
                    s.spawn(move || tree.merge(tid, tid as f64, cell));
                }
            });
            black_box(cell.get())
        });
    });
    g.finish();
}

fn bench_worksharing_nowait(c: &mut Criterion) {
    const N: i64 = 1 << 12;
    let mut g = c.benchmark_group("nowait_vs_barrier");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    for (name, nowait) in [("with_barrier", false), ("nowait", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                fork_call(Parallel::new().num_threads(team_size()), |ctx| {
                    for _ in 0..8 {
                        for_loop(ctx, Schedule::static_default(), 0..N, nowait, |i| {
                            black_box(i);
                        });
                    }
                    ctx.barrier();
                });
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fork,
    bench_barrier,
    bench_schedules,
    bench_reductions,
    bench_dispatch_impls,
    bench_barrier_impls,
    bench_reduction_impls,
    bench_worksharing_nowait
);
criterion_main!(benches);
