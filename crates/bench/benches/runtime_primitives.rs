//! Microbenchmarks of the runtime primitives the paper's compiler lowers
//! to: region fork/join, barriers, the worksharing schedules, and the
//! reduction paths (native atomic RMW vs the Listing 6 CAS loop).
//!
//! These are host-machine measurements (the class C tables come from the
//! `paper-figures` model harness); sample sizes are kept small so the suite
//! stays quick on small hosts.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zomp::prelude::*;
use zomp::workshare::for_loop;

fn team_size() -> usize {
    // Oversubscription past the core count only adds scheduler noise.
    zomp::api::get_num_procs().clamp(1, 4)
}

fn bench_fork(c: &mut Criterion) {
    let mut g = c.benchmark_group("fork_join");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut sizes = vec![1usize, 2, team_size()];
    sizes.sort_unstable();
    sizes.dedup();
    for threads in sizes {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                fork_call(Parallel::new().num_threads(t), |ctx| {
                    black_box(ctx.thread_num());
                });
            });
        });
    }
    g.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut sizes = vec![2usize, team_size().max(2)];
    sizes.sort_unstable();
    sizes.dedup();
    for threads in sizes {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                fork_call(Parallel::new().num_threads(t), |ctx| {
                    for _ in 0..16 {
                        ctx.barrier();
                    }
                });
            });
        });
    }
    g.finish();
}

fn bench_schedules(c: &mut Criterion) {
    const N: i64 = 1 << 14;
    let data: Vec<f64> = (0..N).map(|i| i as f64).collect();
    let mut g = c.benchmark_group("schedule");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let schedules = [
        ("static", Schedule::static_default()),
        ("static_16", Schedule::static_chunked(16)),
        ("dynamic_16", Schedule::dynamic(Some(16))),
        ("guided", Schedule::guided(None)),
    ];
    for (name, sched) in schedules {
        g.bench_function(name, |b| {
            b.iter(|| {
                let s = parallel_reduce(
                    Parallel::new().num_threads(team_size()),
                    sched,
                    0..N,
                    0.0f64,
                    RedOp::Add,
                    |i, acc| *acc += data[i as usize],
                );
                black_box(s)
            });
        });
    }
    g.finish();
}

fn bench_reductions(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction_combine");
    g.sample_size(30).measurement_time(Duration::from_secs(2));
    // Native atomic path (fetch_add) vs the CAS loop (multiply, Listing 6).
    g.bench_function("i64_add_native", |b| {
        let cell = RedCell::<i64>::new(RedOp::Add, 0);
        b.iter(|| {
            for _ in 0..1000 {
                cell.combine(black_box(1));
            }
        });
    });
    g.bench_function("i64_mul_cas_loop", |b| {
        let cell = RedCell::<i64>::new(RedOp::Mul, 1);
        b.iter(|| {
            for _ in 0..1000 {
                cell.combine(black_box(1));
            }
        });
    });
    g.bench_function("f64_add_cas_loop", |b| {
        let cell = RedCell::<f64>::new(RedOp::Add, 0.0);
        b.iter(|| {
            for _ in 0..1000 {
                cell.combine(black_box(1.0));
            }
        });
    });
    g.finish();
}

fn bench_worksharing_nowait(c: &mut Criterion) {
    const N: i64 = 1 << 12;
    let mut g = c.benchmark_group("nowait_vs_barrier");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    for (name, nowait) in [("with_barrier", false), ("nowait", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                fork_call(Parallel::new().num_threads(team_size()), |ctx| {
                    for _ in 0..8 {
                        for_loop(ctx, Schedule::static_default(), 0..N, nowait, |i| {
                            black_box(i);
                        });
                    }
                    ctx.barrier();
                });
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fork,
    bench_barrier,
    bench_schedules,
    bench_reductions,
    bench_worksharing_nowait
);
criterion_main!(benches);
